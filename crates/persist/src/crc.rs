//! CRC-32 (IEEE 802.3 polynomial), the integrity check on every
//! superblock, metadata body, WAL page, and WAL record.

/// Reflected polynomial of CRC-32/IEEE.
const POLY: u32 = 0xEDB8_8320;

/// Compute the CRC-32 of `bytes` (init `!0`, final xor `!0` — the same
/// parameters zlib uses, so values are recognizable in hex dumps).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_bit_flips() {
        let base = crc32(b"ghostdb image body");
        let mut flipped = b"ghostdb image body".to_vec();
        flipped[3] ^= 0x40;
        assert_ne!(crc32(&flipped), base);
    }
}
