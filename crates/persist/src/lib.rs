//! Durable device images: what makes the USB key actually pluggable.
//!
//! The paper's whole premise is a NAND key that *carries* the hidden
//! database, yet every layer below this one is rebuilt from a plaintext
//! `Dataset` on each run. This crate closes the loop: it serializes the
//! complete device state onto the flash part and mounts it back with no
//! dataset in sight.
//!
//! # On-flash layout
//!
//! The part's head is a **reserved region** the log-structured
//! [`Volume`](ghostdb_flash::Volume) never touches (see
//! [`FlashConfig::reserved_blocks`](ghostdb_types::FlashConfig::reserved_blocks)):
//!
//! ```text
//! blocks [0, M)        metadata slot A ┐ written alternately, so a power
//! blocks [M, 2M)       metadata slot B ┘ cut mid-seal leaves one intact
//! blocks [2M, 2M + W)  write-ahead log (one record per insert batch)
//! blocks [2M + W, ..)  the log-structured volume (everything else)
//! ```
//!
//! A **seal** writes one [`DeviceImage`] — superblock header page, then
//! CRC-checked metadata encoded with the existing
//! [`Wire`](ghostdb_types::Wire) codec: the bound schema, catalog
//! statistics, hidden-column segment manifests (dictionary layouts
//! included), climbing-index directories and SKT layouts, the PC's
//! visible snapshot, and the volume's logical→physical translation
//! table — into the slot `epoch % 2`. Mount reads both slots and trusts
//! the CRC-valid image with the highest epoch, so the transition is
//! atomic at every program/erase boundary.
//!
//! # Crash-consistency invariants
//!
//! 1. **A sealed image is immutable until superseded.** The volume pins
//!    every page the image references: the GC will not migrate them
//!    (their physical addresses are recorded in the sealed l2p) and
//!    frees against them are deferred until
//!    [`Volume::commit_seal`](ghostdb_flash::Volume::commit_seal) runs —
//!    which the facade only calls after the *next* image is durable.
//! 2. **Post-seal inserts are WAL-only.** Their deltas live in RAM plus
//!    one [`Wal`] record per batch; nothing else on flash moves, so a
//!    cut at any boundary mounts the sealed image and replays a prefix
//!    of whole batches (records are CRC-framed; a torn tail drops the
//!    interrupted batch, never a committed one).
//! 3. **A delta flush re-seals.** The merge writes new segments first
//!    (old ones only *deferred*-freed), seals an image describing them,
//!    then commits the deferred frees and truncates the WAL. A cut
//!    before the new superblock completes mounts the old image + full
//!    WAL; after, the new image.
//!
//! Like the secure bulk load, seal and mount are maintenance operations
//! performed on the device outside query processing; their working
//! memory is host-side in this simulation and nothing they touch ever
//! crosses the spied PC ↔ device link (`tests/leak_freedom.rs` checks).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crc;
mod image;
mod wal;

pub use crc::crc32;
pub use image::{read_latest_image, write_image, DeviceImage, LoadedImage, IMAGE_VERSION};
pub use wal::{Wal, WalOpen};

use ghostdb_types::FlashConfig;

/// First WAL block (right after the two metadata slots).
pub fn wal_first_block(cfg: &FlashConfig) -> usize {
    2 * cfg.meta_slot_blocks
}

/// True when the configuration reserves space for durability (both the
/// metadata slots and the WAL region are non-empty).
pub fn durability_enabled(cfg: &FlashConfig) -> bool {
    cfg.reserved_blocks() > 0 && cfg.reserved_blocks() < cfg.num_blocks
}
