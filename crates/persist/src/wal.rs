//! The flash-resident write-ahead log.
//!
//! One record per `insert_rows` batch, appended *before* the batch
//! mutates any RAM state, so replay-after-power-loss is batch-atomic:
//! a record either decodes completely (whole batch re-applied) or its
//! tail is torn (whole batch dropped — it never committed).
//!
//! Layout: records are packed into self-describing pages inside the
//! reserved WAL blocks. Every record starts on a fresh page (the resync
//! points replay needs after a torn tail); large records continue onto
//! following pages. Page header:
//!
//! ```text
//! magic (4) | epoch (8) | seq (4) | used (4) | start (1) | crc (4)
//! ```
//!
//! `seq` is the page's position in the region (self-describing), `used`
//! the payload bytes carried, `start` whether a record begins at payload
//! offset 0, and `crc` covers epoch..payload. Pages whose epoch differs
//! from the mounted image's are stale leftovers of an interrupted
//! truncation and are ignored. Records carry their own length, sequence
//! number, and CRC on top, so a record spanning pages is only replayed
//! if every page of it survived — and a record that *rotted away* in
//! the middle of the log ends replay at the last good record (the
//! sequence gap proves later records depend on lost state).
//!
//! Reliability: when ECC is enabled each WAL page also carries the
//! volume's out-of-band codeword ([`ghostdb_flash::ecc`]), repairing
//! single-bit rot on replay; worse rot makes the page parse as torn.
//! WAL blocks that grow bad during an append are skipped — the record
//! retries past the bad block, and replay resyncs over the partial
//! pages the failed attempt left behind.

use ghostdb_flash::{ecc, BlockId, Nand, PageAddr, PageState};
use ghostdb_types::{GhostError, Result};

use crate::crc::crc32;

/// WAL page magic ("GWAL").
const MAGIC: u32 = 0x4757_414C;

/// Per-page header size.
const PAGE_HEADER: usize = 25;

/// Per-record header size (len + record seq + crc).
const REC_HEADER: usize = 12;

/// Append cursor over the reserved WAL region.
#[derive(Debug)]
pub struct Wal {
    nand: Nand,
    first_block: usize,
    blocks: usize,
    epoch: u64,
    /// Next page index within the region.
    next_page: usize,
    /// Payload bytes appended since the last truncation.
    appended_bytes: u64,
    /// Records appended since the last truncation.
    records: u64,
}

/// Result of [`Wal::open`]: the cursor plus the batch records to replay.
#[derive(Debug)]
pub struct WalOpen {
    /// The append cursor, positioned after everything on flash.
    pub wal: Wal,
    /// Fully-committed records of the mounted epoch, in append order.
    pub records: Vec<Vec<u8>>,
    /// True when replay stopped early: a record in the middle of the
    /// log was lost (rotted past the ECC budget, or its pages torn) and
    /// everything after it was discarded as dependent on lost state.
    /// The caller must re-seal so the stale tail dies with its epoch.
    pub truncated: bool,
}

impl Wal {
    fn region_pages(&self) -> usize {
        self.blocks * self.nand.config().pages_per_block
    }

    fn page_addr(&self, idx: usize) -> PageAddr {
        PageAddr((self.first_block * self.nand.config().pages_per_block + idx) as u32)
    }

    /// Payload bytes per WAL page (codeword tail reserved when ECC is
    /// on).
    fn per_page(&self) -> usize {
        let cfg = self.nand.config();
        let tail = if cfg.ecc_enabled { ecc::TAIL_BYTES } else { 0 };
        cfg.page_size - PAGE_HEADER - tail
    }

    /// A fresh cursor at the head of the region (used right after a
    /// truncation sealed the region erased).
    pub fn new(nand: Nand, epoch: u64) -> Wal {
        let cfg = nand.config();
        Wal {
            first_block: crate::wal_first_block(cfg),
            blocks: cfg.wal_blocks,
            nand,
            epoch,
            next_page: 0,
            appended_bytes: 0,
            records: 0,
        }
    }

    /// Scan the region after a mount: collect the committed records of
    /// `epoch` (in order, resyncing at record-start pages past any torn
    /// tail) and position the cursor after the last *programmed* page —
    /// torn or stale pages can never be reprogrammed without an erase,
    /// so they are skipped, not reused.
    ///
    /// Replay ends at the last good record: a sequence gap (a committed
    /// record lost to rot) discards everything after it and reports
    /// [`WalOpen::truncated`].
    pub fn open(nand: Nand, epoch: u64) -> Result<WalOpen> {
        let mut wal = Wal::new(nand, epoch);
        let cfg = wal.nand.config().clone();
        let ps = cfg.page_size;
        let mut records: Vec<Vec<u8>> = Vec::new();
        let mut pending: Vec<u8> = Vec::new();
        let mut in_record = false;
        let mut halted = false;
        let mut last_programmed: Option<usize> = None;
        let mut bytes = 0u64;
        for idx in 0..wal.region_pages() {
            let addr = wal.page_addr(idx);
            if wal.nand.page_state(addr)? != PageState::Programmed {
                continue;
            }
            last_programmed = Some(idx);
            if halted {
                continue;
            }
            let mut page = vec![0u8; ps];
            wal.nand.read_into(addr, 0, &mut page)?;
            let usable = if cfg.ecc_enabled {
                wal.nand.clock().advance(cfg.ecc_cost_ns(ps));
                if ecc::verify_page(&mut page) == ecc::Verdict::Uncorrectable {
                    // Rotted past the budget: treat as torn.
                    in_record = false;
                    pending.clear();
                    continue;
                }
                &page[..ps - ecc::TAIL_BYTES]
            } else {
                &page[..]
            };
            let Some((start, payload)) = parse_page(usable, epoch, idx as u32) else {
                // Torn or stale page: any record running through it died.
                in_record = false;
                pending.clear();
                continue;
            };
            if start {
                // Resync point: drop a partial predecessor.
                pending.clear();
                in_record = true;
            }
            if !in_record {
                continue;
            }
            pending.extend_from_slice(payload);
            // Drain every complete record in the pending stream (one
            // append = one record, but stay defensive about the shape).
            if pending.len() >= REC_HEADER {
                let len = u32::from_le_bytes(pending[..4].try_into().expect("4B")) as usize;
                let rec_seq = u32::from_le_bytes(pending[4..8].try_into().expect("4B"));
                let crc = u32::from_le_bytes(pending[8..12].try_into().expect("4B"));
                if pending.len() >= REC_HEADER + len {
                    let body = pending[REC_HEADER..REC_HEADER + len].to_vec();
                    if crc32(&body) == crc {
                        if rec_seq as usize == records.len() {
                            bytes += body.len() as u64;
                            records.push(body);
                        } else {
                            // A committed predecessor rotted away; this
                            // record (and everything after) depends on
                            // lost state. End replay here.
                            halted = true;
                        }
                    }
                    pending.clear();
                    in_record = false;
                }
            }
        }
        wal.next_page = last_programmed.map(|p| p + 1).unwrap_or(0);
        wal.records = records.len() as u64;
        wal.appended_bytes = bytes;
        Ok(WalOpen {
            wal,
            records,
            truncated: halted,
        })
    }

    /// Would a record of `payload_len` bytes fit in the remaining
    /// region? Callers check this *before* committing RAM state, so
    /// "full WAL" is handled by flushing (which truncates) rather than
    /// by dissecting an append error after the fact.
    pub fn fits(&self, payload_len: usize) -> bool {
        let pages_needed = (REC_HEADER + payload_len).div_ceil(self.per_page());
        self.next_page + pages_needed <= self.region_pages()
    }

    /// Append one record (the encoded insert batch). Errors — without
    /// writing anything the replay path would trust — when the region
    /// cannot hold it (see [`fits`](Self::fits)); the caller's answer
    /// to a full WAL is a delta flush, which re-seals and truncates.
    ///
    /// A WAL block that grows bad mid-append is skipped and the whole
    /// record retried past it (replay resyncs over the abandoned
    /// partial pages); the cursor only ever moves forward, so the retry
    /// loop terminates at the region-full error in the worst case.
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        let cfg = self.nand.config().clone();
        let per_page = self.per_page();
        let total = REC_HEADER + payload.len();
        let mut stream = Vec::with_capacity(total);
        (payload.len() as u32).encode_into(&mut stream);
        (self.records as u32).encode_into(&mut stream);
        crc32(payload).encode_into(&mut stream);
        stream.extend_from_slice(payload);
        'attempt: loop {
            if !self.fits(payload.len()) {
                return Err(GhostError::flash(format!(
                    "WAL region full ({} of {} pages used); flush the deltas to truncate it",
                    self.next_page,
                    self.region_pages()
                )));
            }
            for (i, chunk) in stream.chunks(per_page).enumerate() {
                let idx = self.next_page;
                let rel_block = idx / cfg.pages_per_block;
                let block = BlockId((self.first_block + rel_block) as u32);
                let skip_block = |wal: &mut Wal| {
                    wal.next_page = (rel_block + 1) * cfg.pages_per_block;
                };
                if self.nand.is_grown_bad(block) {
                    skip_block(self);
                    continue 'attempt;
                }
                if idx.is_multiple_of(cfg.pages_per_block) {
                    // Entering a block: erase it if a stale page lingers
                    // from before an interrupted truncation.
                    let first = (self.first_block + rel_block) * cfg.pages_per_block;
                    let dirty = (first..first + cfg.pages_per_block).any(|p| {
                        !matches!(
                            self.nand.page_state(PageAddr(p as u32)),
                            Ok(PageState::Erased)
                        )
                    });
                    if dirty {
                        match self.nand.erase(block) {
                            Ok(()) => {}
                            Err(_) if self.nand.is_grown_bad(block) => {
                                skip_block(self);
                                continue 'attempt;
                            }
                            Err(e) => return Err(e),
                        }
                    }
                }
                let mut page = Vec::with_capacity(PAGE_HEADER + chunk.len());
                MAGIC.encode_into(&mut page);
                self.epoch.encode_into(&mut page);
                (idx as u32).encode_into(&mut page);
                (chunk.len() as u32).encode_into(&mut page);
                page.push((i == 0) as u8);
                let crc = crc32(&[&page[4..], chunk].concat());
                crc.encode_into(&mut page);
                page.extend_from_slice(chunk);
                if cfg.ecc_enabled {
                    page.resize(cfg.page_size - ecc::TAIL_BYTES, 0xFF);
                    page.resize(cfg.page_size, 0);
                    ecc::seal_page(&mut page);
                    self.nand.clock().advance(cfg.ecc_cost_ns(cfg.page_size));
                }
                match self.nand.program(self.page_addr(idx), &page) {
                    Ok(()) => self.next_page += 1,
                    Err(_) if self.nand.is_grown_bad(block) => {
                        skip_block(self);
                        continue 'attempt;
                    }
                    Err(e) => return Err(e),
                }
            }
            self.appended_bytes += payload.len() as u64;
            self.records += 1;
            return Ok(());
        }
    }

    /// Restart the log under `new_epoch` and erase every dirty block
    /// (called after the epoch's image is durable). The cursor state
    /// resets *before* the erases so a failure mid-erase leaves a
    /// coherent log: replay ignores the stale-epoch pages, and the next
    /// [`append`](Self::append) erases its block on entry anyway. A
    /// block that grows bad here is simply left behind — appends skip
    /// grown-bad blocks.
    pub fn truncate(&mut self, new_epoch: u64) -> Result<()> {
        self.epoch = new_epoch;
        self.next_page = 0;
        self.appended_bytes = 0;
        self.records = 0;
        let cfg = self.nand.config().clone();
        for b in self.first_block..self.first_block + self.blocks {
            let block = BlockId(b as u32);
            if self.nand.is_grown_bad(block) {
                continue;
            }
            let first = b * cfg.pages_per_block;
            let dirty = (first..first + cfg.pages_per_block).any(|p| {
                !matches!(
                    self.nand.page_state(PageAddr(p as u32)),
                    Ok(PageState::Erased)
                )
            });
            if dirty {
                match self.nand.erase(block) {
                    Ok(()) => {}
                    Err(_) if self.nand.is_grown_bad(block) => continue,
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(())
    }

    /// Payload bytes appended since the last truncation.
    pub fn bytes(&self) -> u64 {
        self.appended_bytes
    }

    /// Records appended since the last truncation.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The epoch this log extends.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// Little-endian encode helper (avoids pulling `Wire` into scope for
/// plain integers).
trait EncodeInto {
    fn encode_into(&self, out: &mut Vec<u8>);
}

macro_rules! encode_into {
    ($($t:ty),*) => {$(
        impl EncodeInto for $t {
            fn encode_into(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }
    )*};
}

encode_into!(u32, u64);

/// Validate one page against the mounted epoch and its own position;
/// returns `(starts_record, payload)` for valid pages. `page` excludes
/// the codeword tail (already verified by the caller).
fn parse_page(page: &[u8], epoch: u64, seq: u32) -> Option<(bool, &[u8])> {
    if page.len() < PAGE_HEADER {
        return None;
    }
    let magic = u32::from_le_bytes(page[..4].try_into().expect("4B"));
    let page_epoch = u64::from_le_bytes(page[4..12].try_into().expect("8B"));
    let page_seq = u32::from_le_bytes(page[12..16].try_into().expect("4B"));
    let used = u32::from_le_bytes(page[16..20].try_into().expect("4B")) as usize;
    let start = page[20];
    let crc = u32::from_le_bytes(page[21..25].try_into().expect("4B"));
    if magic != MAGIC || page_epoch != epoch || page_seq != seq || start > 1 {
        return None;
    }
    if used > page.len() - PAGE_HEADER {
        return None;
    }
    let payload = &page[PAGE_HEADER..PAGE_HEADER + used];
    let mut covered = page[4..21].to_vec();
    covered.extend_from_slice(payload);
    if crc32(&covered) != crc {
        return None;
    }
    Some((start == 1, payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_types::{FlashConfig, SimClock};

    fn nand() -> Nand {
        let cfg = FlashConfig {
            page_size: 64,
            pages_per_block: 4,
            num_blocks: 32,
            meta_slot_blocks: 2,
            wal_blocks: 4,
            ..FlashConfig::default_2007()
        };
        Nand::new(cfg, SimClock::new())
    }

    #[test]
    fn append_then_open_replays_in_order() {
        let n = nand();
        let mut wal = Wal::new(n.clone(), 7);
        wal.append(b"alpha").unwrap();
        wal.append(&[0xAB; 200]).unwrap(); // spans pages
        wal.append(b"omega").unwrap();
        assert_eq!(wal.records(), 3);

        let opened = Wal::open(n, 7).unwrap();
        assert_eq!(opened.records.len(), 3);
        assert_eq!(opened.records[0], b"alpha");
        assert_eq!(opened.records[1], [0xAB; 200]);
        assert_eq!(opened.records[2], b"omega");
        assert_eq!(opened.wal.bytes(), 5 + 200 + 5);
        assert!(!opened.truncated);
    }

    #[test]
    fn torn_tail_drops_only_the_interrupted_batch() {
        let n = nand();
        let mut wal = Wal::new(n.clone(), 1);
        wal.append(b"committed").unwrap();
        // Cut power on the second page of a two-page record.
        n.arm_power_cut(1, true);
        assert!(wal.append(&[7u8; 90]).is_err());
        n.disarm_power_cut();

        let opened = Wal::open(n.clone(), 1).unwrap();
        assert_eq!(opened.records.len(), 1);
        assert_eq!(opened.records[0], b"committed");
        // Appends after recovery land past the torn page and replay.
        let mut wal = opened.wal;
        wal.append(b"after-crash").unwrap();
        let reopened = Wal::open(n, 1).unwrap();
        assert_eq!(reopened.records.len(), 2);
        assert_eq!(reopened.records[1], b"after-crash");
    }

    #[test]
    fn truncate_filters_by_epoch_even_half_done() {
        let n = nand();
        let mut wal = Wal::new(n.clone(), 1);
        wal.append(b"old-epoch").unwrap();
        // Interrupt the truncation after it erased nothing.
        n.arm_power_cut(0, false);
        assert!(wal.truncate(2).is_err());
        n.disarm_power_cut();
        // The stale epoch-1 pages are ignored under epoch 2...
        let opened = Wal::open(n.clone(), 2).unwrap();
        assert!(opened.records.is_empty());
        // ...and new epoch-2 appends (which erase on demand) replay.
        let mut wal = opened.wal;
        wal.append(b"new-epoch").unwrap();
        let reopened = Wal::open(n, 2).unwrap();
        assert_eq!(reopened.records, vec![b"new-epoch".to_vec()]);
    }

    #[test]
    fn full_region_is_a_clean_error() {
        let n = nand();
        let mut wal = Wal::new(n, 3);
        // 16 pages of 31 B payload capacity each (64 B page minus the
        // 25 B header and the 8 B codeword tail).
        for _ in 0..16 {
            wal.append(b"x").unwrap();
        }
        let err = wal.append(b"overflow").unwrap_err();
        assert!(err.to_string().contains("WAL region full"), "{err}");
        // Truncation recovers the space.
        wal.truncate(4).unwrap();
        wal.append(b"fits again").unwrap();
    }

    #[test]
    fn single_bit_rot_in_a_wal_page_is_repaired_on_replay() {
        let n = nand();
        let mut wal = Wal::new(n.clone(), 9);
        wal.append(b"precious bytes").unwrap();
        // Flip one stored bit in the record's page.
        let first = crate::wal_first_block(n.config()) * n.config().pages_per_block;
        n.corrupt_page(PageAddr(first as u32), 61).unwrap();

        let opened = Wal::open(n, 9).unwrap();
        assert_eq!(opened.records, vec![b"precious bytes".to_vec()]);
        assert!(!opened.truncated);
    }

    #[test]
    fn rotted_record_mid_log_ends_replay_at_last_good_record() {
        let n = nand();
        let mut wal = Wal::new(n.clone(), 5);
        wal.append(b"first").unwrap();
        wal.append(b"second").unwrap();
        wal.append(b"third").unwrap();
        // Rot the *second* record's page past the single-bit budget.
        let first = crate::wal_first_block(n.config()) * n.config().pages_per_block;
        n.corrupt_page(PageAddr((first + 1) as u32), 200).unwrap();
        n.corrupt_page(PageAddr((first + 1) as u32), 311).unwrap();

        let opened = Wal::open(n, 5).unwrap();
        // "third" committed, but it depends on state that included
        // "second" — replay must stop at the last good record.
        assert_eq!(opened.records, vec![b"first".to_vec()]);
        assert!(opened.truncated);
    }

    #[test]
    fn grown_bad_wal_block_is_skipped_and_the_record_lands() {
        let n = nand();
        let mut wal = Wal::new(n.clone(), 11);
        wal.append(b"before").unwrap();
        // Every program attempt fails until disarmed: the current block
        // grows bad and the append must relocate past it.
        n.arm_program_failures(99, 1.0);
        let err = wal.append(b"doomed-while-armed").unwrap_err();
        assert!(
            err.to_string().contains("WAL region full"),
            "exhausting every block must surface the clean full error, got: {err}"
        );
        n.disarm_block_failures();

        // Now grow exactly ONE block bad (a single armed erase) and
        // check the append relocates past it while the bad block's
        // already-programmed pages stay readable.
        let n2 = nand();
        let mut wal2 = Wal::new(n2.clone(), 11);
        wal2.append(b"before").unwrap();
        let wb = crate::wal_first_block(n2.config()) as u32;
        n2.arm_erase_failures(42, 1.0);
        assert!(n2.erase(BlockId(wb)).is_err());
        n2.disarm_block_failures();
        assert!(n2.is_grown_bad(BlockId(wb)));

        wal2.append(b"after-the-bad-block").unwrap();
        let opened = Wal::open(n2, 11).unwrap();
        assert_eq!(
            opened.records,
            vec![b"before".to_vec(), b"after-the-bad-block".to_vec()]
        );
        assert!(!opened.truncated);
    }
}
