//! The sealed device image: superblock header + Wire-encoded metadata
//! body, ping-ponged between the two reserved slots.

use ghostdb_catalog::{Schema, SchemaStats};
use ghostdb_flash::{Nand, PageAddr, PageState};
use ghostdb_index::IndexSetManifest;
use ghostdb_storage::{HiddenManifest, VisibleStore};
use ghostdb_types::{decode_all, GhostError, LiveSet, Result, Wire};

use crate::crc::crc32;

/// Superblock magic ("GHSB").
const MAGIC: u32 = 0x4748_5342;

/// On-flash image format version. Version 2 added the per-table
/// tombstone sets (and, in the same release, the WAL's record-kind
/// tag); version-1 images are rejected cleanly rather than misdecoded.
pub const IMAGE_VERSION: u32 = 2;

/// Fixed size of the superblock header at the head of a slot: magic +
/// version (4+4), epoch (8), body length (8), body CRC (4), five
/// geometry echoes (20), header CRC (4).
const HEADER_BYTES: usize = 52;

/// Everything a mount needs, beyond the NAND itself. The tree schema is
/// *not* stored — `TreeSchema::analyze` re-derives it from the schema,
/// so the two can never disagree.
#[derive(Debug, Clone)]
pub struct DeviceImage {
    /// The bound schema.
    pub schema: Schema,
    /// Catalog statistics (histograms included).
    pub stats: SchemaStats,
    /// Hidden-column segment manifests.
    pub hidden: HiddenManifest,
    /// Climbing-index directories and SKT layouts.
    pub indexes: IndexSetManifest,
    /// Snapshot of the PC's visible store (public data; co-located on
    /// the key so the whole system remounts from the NAND alone).
    pub visible: VisibleStore,
    /// Per-table tombstone sets over the sealed segments' row spaces.
    /// A seal flushes first — and a flush compacts — so these are
    /// all-live in practice; the format carries them so the image is
    /// self-describing about liveness rather than assuming it.
    pub tombstones: Vec<LiveSet>,
    /// The volume's logical→physical translation table at seal time.
    pub l2p: Vec<u32>,
}

impl Wire for DeviceImage {
    fn encode(&self, out: &mut Vec<u8>) {
        self.schema.encode(out);
        self.stats.encode(out);
        self.hidden.encode(out);
        self.indexes.encode(out);
        self.visible.encode(out);
        self.tombstones.encode(out);
        self.l2p.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok(DeviceImage {
            schema: Schema::decode(buf)?,
            stats: SchemaStats::decode(buf)?,
            hidden: HiddenManifest::decode(buf)?,
            indexes: IndexSetManifest::decode(buf)?,
            visible: VisibleStore::decode(buf)?,
            tombstones: Vec::<LiveSet>::decode(buf)?,
            l2p: Vec::<u32>::decode(buf)?,
        })
    }
}

impl DeviceImage {
    /// Number of metadata segments the image references (hidden-column
    /// segments plus index segments) — reported by `device_report`.
    pub fn metadata_segment_count(&self) -> usize {
        let hidden: usize = self
            .hidden
            .tables
            .iter()
            .flat_map(|t| t.columns.iter())
            .filter_map(|c| c.as_ref())
            .map(|c| match c {
                ghostdb_storage::ColumnManifest::Fixed { .. } => 1,
                ghostdb_storage::ColumnManifest::Dict { .. } => 3,
            })
            .sum();
        hidden + self.indexes.segment_count()
    }
}

fn header_bytes(nand: &Nand, epoch: u64, body: &[u8]) -> Vec<u8> {
    let cfg = nand.config();
    let mut h = Vec::with_capacity(HEADER_BYTES);
    MAGIC.encode(&mut h);
    IMAGE_VERSION.encode(&mut h);
    epoch.encode(&mut h);
    (body.len() as u64).encode(&mut h);
    crc32(body).encode(&mut h);
    (cfg.page_size as u32).encode(&mut h);
    (cfg.pages_per_block as u32).encode(&mut h);
    (cfg.num_blocks as u32).encode(&mut h);
    (cfg.meta_slot_blocks as u32).encode(&mut h);
    (cfg.wal_blocks as u32).encode(&mut h);
    crc32(&h).encode(&mut h);
    debug_assert_eq!(h.len(), HEADER_BYTES);
    h
}

/// Write `image` as epoch `epoch` into slot `epoch % 2`: erase the
/// slot's blocks, program the superblock header page, then the body
/// pages. The other slot — holding the previous epoch — is untouched,
/// so a power cut anywhere in here leaves a mountable part. Returns the
/// image size in bytes (header + body).
pub fn write_image(nand: &Nand, epoch: u64, image: &DeviceImage) -> Result<u64> {
    let cfg = nand.config().clone();
    let slots = cfg.meta_slot_blocks;
    if slots == 0 {
        return Err(GhostError::flash(
            "durability disabled: FlashConfig::meta_slot_blocks is 0",
        ));
    }
    let body = image.to_bytes();
    let slot_pages = slots * cfg.pages_per_block;
    let body_pages = (body.len()).div_ceil(cfg.page_size);
    if body_pages + 1 > slot_pages {
        return Err(GhostError::flash(format!(
            "device image ({} B, {body_pages} pages) exceeds the metadata slot \
             ({} pages); raise FlashConfig::meta_slot_blocks",
            body.len(),
            slot_pages
        )));
    }
    let first_block = (epoch % 2) as usize * slots;
    for b in first_block..first_block + slots {
        nand.erase(ghostdb_flash::BlockId(b as u32))?;
    }
    let first_page = first_block * cfg.pages_per_block;
    nand.program(
        PageAddr(first_page as u32),
        &header_bytes(nand, epoch, &body),
    )?;
    for (i, chunk) in body.chunks(cfg.page_size).enumerate() {
        nand.program(PageAddr((first_page + 1 + i) as u32), chunk)?;
    }
    Ok((HEADER_BYTES + body.len()) as u64)
}

/// Parse one slot: `Ok(Some((epoch, body)))` when its header and body
/// CRCs check out against this part's geometry.
fn read_slot(nand: &Nand, slot: usize) -> Result<Option<(u64, Vec<u8>)>> {
    let cfg = nand.config().clone();
    let first_page = slot * cfg.meta_slot_blocks * cfg.pages_per_block;
    if nand.page_state(PageAddr(first_page as u32))? != PageState::Programmed {
        return Ok(None);
    }
    let mut h = vec![0u8; HEADER_BYTES];
    nand.read_into(PageAddr(first_page as u32), 0, &mut h)?;
    let stored_crc = u32::from_le_bytes(h[HEADER_BYTES - 4..].try_into().expect("4B"));
    if crc32(&h[..HEADER_BYTES - 4]) != stored_crc {
        return Ok(None);
    }
    let mut cur = &h[..];
    let magic = u32::decode(&mut cur)?;
    let version = u32::decode(&mut cur)?;
    let epoch = u64::decode(&mut cur)?;
    let body_len = u64::decode(&mut cur)? as usize;
    let body_crc = u32::decode(&mut cur)?;
    let geo = [
        u32::decode(&mut cur)? as usize,
        u32::decode(&mut cur)? as usize,
        u32::decode(&mut cur)? as usize,
        u32::decode(&mut cur)? as usize,
        u32::decode(&mut cur)? as usize,
    ];
    if magic != MAGIC || version != IMAGE_VERSION {
        return Ok(None);
    }
    if geo
        != [
            cfg.page_size,
            cfg.pages_per_block,
            cfg.num_blocks,
            cfg.meta_slot_blocks,
            cfg.wal_blocks,
        ]
    {
        return Err(GhostError::corrupt(
            "sealed image geometry does not match this part's configuration",
        ));
    }
    let slot_capacity = (cfg.meta_slot_blocks * cfg.pages_per_block - 1) * cfg.page_size;
    if body_len > slot_capacity {
        return Ok(None);
    }
    let mut body = vec![0u8; body_len];
    let mut off = 0usize;
    let mut page = first_page + 1;
    while off < body_len {
        let take = cfg.page_size.min(body_len - off);
        nand.read_into(PageAddr(page as u32), 0, &mut body[off..off + take])?;
        off += take;
        page += 1;
    }
    if crc32(&body) != body_crc {
        return Ok(None);
    }
    Ok(Some((epoch, body)))
}

/// A successfully read sealed image.
#[derive(Debug)]
pub struct LoadedImage {
    /// The image's epoch (monotonic per seal).
    pub epoch: u64,
    /// On-flash size of the image (header + body), bytes.
    pub bytes: u64,
    /// The decoded metadata.
    pub image: DeviceImage,
}

/// Read the newest valid sealed image: both slots are parsed, CRCs
/// checked, and the higher epoch wins. `Ok(None)` when the part carries
/// no valid image (blank key, or both slots torn).
pub fn read_latest_image(nand: &Nand) -> Result<Option<LoadedImage>> {
    let mut candidates: Vec<(u64, Vec<u8>)> = Vec::new();
    for slot in 0..2 {
        if let Some(c) = read_slot(nand, slot)? {
            candidates.push(c);
        }
    }
    candidates.sort_by_key(|(e, _)| *e);
    while let Some((epoch, body)) = candidates.pop() {
        match decode_all::<DeviceImage>(&body) {
            Ok(image) => {
                return Ok(Some(LoadedImage {
                    epoch,
                    bytes: (HEADER_BYTES + body.len()) as u64,
                    image,
                }))
            }
            // A CRC-valid body that fails structural decode means a
            // format bug, not bitrot — but the older slot may still
            // mount, so fall through rather than hard-failing.
            Err(_) => continue,
        }
    }
    Ok(None)
}
