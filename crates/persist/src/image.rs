//! The sealed device image: superblock header + Wire-encoded metadata
//! body, ping-ponged between the two reserved slots.
//!
//! Reliability: every metadata page carries the same out-of-band
//! codeword the volume uses ([`ghostdb_flash::ecc`]), so a single
//! flipped bit anywhere in a slot is repaired on read; anything worse
//! makes the slot parse as invalid and the mount falls back to the
//! older epoch. Slot blocks that grow bad are dropped from the slot —
//! the header's block map records which blocks actually hold the image,
//! so a dying metadata block relocates the seal instead of bricking the
//! key.

use ghostdb_catalog::{Schema, SchemaStats};
use ghostdb_flash::{ecc, BlockId, Nand, PageAddr, PageState};
use ghostdb_index::IndexSetManifest;
use ghostdb_storage::{HiddenManifest, VisibleStore};
use ghostdb_types::{decode_all, GhostError, LiveSet, Result, Wire};

use crate::crc::crc32;

/// Superblock magic ("GHSB").
const MAGIC: u32 = 0x4748_5342;

/// On-flash image format version. Version 2 added the per-table
/// tombstone sets (and, in the same release, the WAL's record-kind
/// tag); version 3 added per-page ECC codewords, the header's
/// bad-block-aware slot map, and the persisted volume bad-block table.
/// Older images are rejected cleanly rather than misdecoded.
pub const IMAGE_VERSION: u32 = 3;

/// Fixed size of the superblock header at the head of a slot: magic +
/// version (4+4), epoch (8), body length (8), body CRC (4), five
/// geometry echoes (20), slot block map (4), header CRC (4).
const HEADER_BYTES: usize = 56;

/// Everything a mount needs, beyond the NAND itself. The tree schema is
/// *not* stored — `TreeSchema::analyze` re-derives it from the schema,
/// so the two can never disagree.
#[derive(Debug, Clone)]
pub struct DeviceImage {
    /// The bound schema.
    pub schema: Schema,
    /// Catalog statistics (histograms included).
    pub stats: SchemaStats,
    /// Hidden-column segment manifests.
    pub hidden: HiddenManifest,
    /// Climbing-index directories and SKT layouts.
    pub indexes: IndexSetManifest,
    /// Snapshot of the PC's visible store (public data; co-located on
    /// the key so the whole system remounts from the NAND alone).
    pub visible: VisibleStore,
    /// Per-table tombstone sets over the sealed segments' row spaces.
    /// A seal flushes first — and a flush compacts — so these are
    /// all-live in practice; the format carries them so the image is
    /// self-describing about liveness rather than assuming it.
    pub tombstones: Vec<LiveSet>,
    /// The volume's logical→physical translation table at seal time.
    pub l2p: Vec<u32>,
    /// Grown-bad blocks at seal time (the whole part, reserved region
    /// included) — the mount retires them before the first write.
    pub bad_blocks: Vec<u32>,
}

impl Wire for DeviceImage {
    fn encode(&self, out: &mut Vec<u8>) {
        self.schema.encode(out);
        self.stats.encode(out);
        self.hidden.encode(out);
        self.indexes.encode(out);
        self.visible.encode(out);
        self.tombstones.encode(out);
        self.l2p.encode(out);
        self.bad_blocks.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok(DeviceImage {
            schema: Schema::decode(buf)?,
            stats: SchemaStats::decode(buf)?,
            hidden: HiddenManifest::decode(buf)?,
            indexes: IndexSetManifest::decode(buf)?,
            visible: VisibleStore::decode(buf)?,
            tombstones: Vec::<LiveSet>::decode(buf)?,
            l2p: Vec::<u32>::decode(buf)?,
            bad_blocks: Vec::<u32>::decode(buf)?,
        })
    }
}

impl DeviceImage {
    /// Number of metadata segments the image references (hidden-column
    /// segments plus index segments) — reported by `device_report`.
    pub fn metadata_segment_count(&self) -> usize {
        let hidden: usize = self
            .hidden
            .tables
            .iter()
            .flat_map(|t| t.columns.iter())
            .filter_map(|c| c.as_ref())
            .map(|c| match c {
                ghostdb_storage::ColumnManifest::Fixed { .. } => 1,
                ghostdb_storage::ColumnManifest::Dict { .. } => 3,
            })
            .sum();
        hidden + self.indexes.segment_count()
    }
}

/// Usable payload bytes per metadata page (the codeword tail is
/// reserved when ECC is on).
fn page_payload(nand: &Nand) -> usize {
    let cfg = nand.config();
    if cfg.ecc_enabled {
        cfg.page_size - ecc::TAIL_BYTES
    } else {
        cfg.page_size
    }
}

/// Program `payload` into `addr`, sealing the codeword tail on.
fn program_meta_page(nand: &Nand, addr: PageAddr, payload: &[u8]) -> Result<()> {
    let cfg = nand.config();
    if !cfg.ecc_enabled {
        return nand.program(addr, payload);
    }
    let mut raw = Vec::with_capacity(cfg.page_size);
    raw.extend_from_slice(payload);
    raw.resize(cfg.page_size - ecc::TAIL_BYTES, 0xFF);
    raw.resize(cfg.page_size, 0);
    ecc::seal_page(&mut raw);
    nand.clock().advance(cfg.ecc_cost_ns(cfg.page_size));
    nand.program(addr, &raw)
}

/// Read a full page through the codeword check: single-bit rot is
/// repaired, worse returns `Ok(None)` (the caller treats the page as
/// invalid and falls back to the older slot).
fn read_meta_page(nand: &Nand, addr: PageAddr) -> Result<Option<Vec<u8>>> {
    let cfg = nand.config();
    let mut raw = vec![0u8; cfg.page_size];
    nand.read_into(addr, 0, &mut raw)?;
    if cfg.ecc_enabled {
        nand.clock().advance(cfg.ecc_cost_ns(cfg.page_size));
        if ecc::verify_page(&mut raw) == ecc::Verdict::Uncorrectable {
            return Ok(None);
        }
        raw.truncate(cfg.page_size - ecc::TAIL_BYTES);
    }
    Ok(Some(raw))
}

fn header_bytes(nand: &Nand, epoch: u64, body: &[u8], block_map: u32) -> Vec<u8> {
    let cfg = nand.config();
    let mut h = Vec::with_capacity(HEADER_BYTES);
    MAGIC.encode(&mut h);
    IMAGE_VERSION.encode(&mut h);
    epoch.encode(&mut h);
    (body.len() as u64).encode(&mut h);
    crc32(body).encode(&mut h);
    (cfg.page_size as u32).encode(&mut h);
    (cfg.pages_per_block as u32).encode(&mut h);
    (cfg.num_blocks as u32).encode(&mut h);
    (cfg.meta_slot_blocks as u32).encode(&mut h);
    (cfg.wal_blocks as u32).encode(&mut h);
    block_map.encode(&mut h);
    crc32(&h).encode(&mut h);
    debug_assert_eq!(h.len(), HEADER_BYTES);
    h
}

/// The slot-relative pages holding an image whose header maps
/// `block_map`: the used blocks' pages in ascending order (the header
/// occupies the first, the body the rest).
fn mapped_pages(
    cfg: &ghostdb_types::FlashConfig,
    first_block: usize,
    block_map: u32,
) -> Vec<PageAddr> {
    let ppb = cfg.pages_per_block;
    (0..cfg.meta_slot_blocks)
        .filter(|rel| block_map & (1 << rel) != 0)
        .flat_map(|rel| {
            let first = (first_block + rel) * ppb;
            (first..first + ppb).map(|p| PageAddr(p as u32))
        })
        .collect()
}

/// Write `image` as epoch `epoch` into slot `epoch % 2`: erase the
/// slot's usable blocks, program the superblock header page, then the
/// body pages. The other slot — holding the previous epoch — is
/// untouched, so a power cut anywhere in here leaves a mountable part.
///
/// Blocks that fail to erase or program grow bad and are dropped from
/// the slot: the attempt restarts on the remaining good blocks (the
/// header's block map records the survivors), failing cleanly only when
/// the slot cannot hold the image any more. Returns the image size in
/// bytes (header + body).
pub fn write_image(nand: &Nand, epoch: u64, image: &DeviceImage) -> Result<u64> {
    let cfg = nand.config().clone();
    let slots = cfg.meta_slot_blocks;
    if slots == 0 {
        return Err(GhostError::flash(
            "durability disabled: FlashConfig::meta_slot_blocks is 0",
        ));
    }
    if slots > 32 {
        return Err(GhostError::flash(
            "FlashConfig::meta_slot_blocks exceeds the 32-block slot map",
        ));
    }
    let per_page = page_payload(nand);
    if HEADER_BYTES > per_page {
        return Err(GhostError::flash(
            "metadata page payload too small for the superblock header",
        ));
    }
    let body = image.to_bytes();
    let body_pages = body.len().div_ceil(per_page);
    let needed = body_pages + 1;
    let first_block = (epoch % 2) as usize * slots;
    // Each retry is caused by a block growing bad mid-program, and the
    // slot only has `slots` blocks to lose — the loop is bounded.
    for _attempt in 0..=slots {
        // Erase the slot's usable blocks; a failed erase grows the
        // block bad and removes it from the usable set.
        let mut good: Vec<usize> = Vec::new();
        for b in first_block..first_block + slots {
            let block = BlockId(b as u32);
            if nand.is_grown_bad(block) {
                continue;
            }
            match nand.erase(block) {
                Ok(()) => good.push(b),
                Err(_) if nand.is_grown_bad(block) => continue,
                Err(e) => return Err(e),
            }
        }
        if needed > good.len() * cfg.pages_per_block {
            return Err(GhostError::flash(format!(
                "device image ({} B, {needed} pages with header) exceeds the usable \
                 metadata slot ({} good blocks of {slots}); raise \
                 FlashConfig::meta_slot_blocks",
                body.len(),
                good.len()
            )));
        }
        let used = needed.div_ceil(cfg.pages_per_block);
        let mut block_map = 0u32;
        for &b in &good[..used] {
            block_map |= 1 << (b - first_block);
        }
        let pages = mapped_pages(&cfg, first_block, block_map);
        let header = header_bytes(nand, epoch, &body, block_map);
        let mut grew_bad = false;
        for (i, chunk) in std::iter::once(&header[..])
            .chain(body.chunks(per_page))
            .enumerate()
        {
            match program_meta_page(nand, pages[i], chunk) {
                Ok(()) => {}
                Err(_) if nand.is_grown_bad(nand.block_of(pages[i])) => {
                    grew_bad = true;
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        if !grew_bad {
            return Ok((HEADER_BYTES + body.len()) as u64);
        }
    }
    Err(GhostError::flash(
        "metadata slot worn out: blocks kept growing bad during the seal",
    ))
}

/// Parse one slot: `Ok(Some((epoch, body)))` when a header and its body
/// check out against this part's geometry.
///
/// Every block's first page is probed for a header — a block that grew
/// bad during a past seal can strand a stale-but-intact header next to
/// the live one — and the highest-epoch candidate whose body validates
/// wins. Single-bit rot anywhere is repaired by the page codewords;
/// anything worse invalidates that candidate only.
fn read_slot(nand: &Nand, slot: usize) -> Result<Option<(u64, Vec<u8>)>> {
    let cfg = nand.config().clone();
    let slots = cfg.meta_slot_blocks;
    let per_page = page_payload(nand);
    let first_block = slot * slots;
    // (epoch, body_len, body_crc, block_map)
    let mut candidates: Vec<(u64, usize, u32, u32)> = Vec::new();
    for b in first_block..first_block + slots {
        let haddr = PageAddr((b * cfg.pages_per_block) as u32);
        if nand.page_state(haddr)? != PageState::Programmed {
            continue;
        }
        let Some(page) = read_meta_page(nand, haddr)? else {
            continue;
        };
        if page.len() < HEADER_BYTES {
            continue;
        }
        let h = &page[..HEADER_BYTES];
        let stored_crc = u32::from_le_bytes(h[HEADER_BYTES - 4..].try_into().expect("4B"));
        if crc32(&h[..HEADER_BYTES - 4]) != stored_crc {
            continue;
        }
        let mut cur = h;
        let magic = u32::decode(&mut cur)?;
        let version = u32::decode(&mut cur)?;
        let epoch = u64::decode(&mut cur)?;
        let body_len = u64::decode(&mut cur)? as usize;
        let body_crc = u32::decode(&mut cur)?;
        let geo = [
            u32::decode(&mut cur)? as usize,
            u32::decode(&mut cur)? as usize,
            u32::decode(&mut cur)? as usize,
            u32::decode(&mut cur)? as usize,
            u32::decode(&mut cur)? as usize,
        ];
        let block_map = u32::decode(&mut cur)?;
        if magic != MAGIC || version != IMAGE_VERSION {
            continue;
        }
        if geo
            != [
                cfg.page_size,
                cfg.pages_per_block,
                cfg.num_blocks,
                cfg.meta_slot_blocks,
                cfg.wal_blocks,
            ]
        {
            return Err(GhostError::corrupt(
                "sealed image geometry does not match this part's configuration",
            ));
        }
        // The header must sit in the first mapped block, and the map
        // must stay inside the slot.
        let rel = (b - first_block) as u32;
        if block_map == 0 || block_map.trailing_zeros() != rel || (block_map >> slots) != 0 {
            continue;
        }
        let capacity = (block_map.count_ones() as usize * cfg.pages_per_block - 1) * per_page;
        if body_len > capacity {
            continue;
        }
        candidates.push((epoch, body_len, body_crc, block_map));
    }
    candidates.sort_by_key(|&(e, ..)| e);
    while let Some((epoch, body_len, body_crc, block_map)) = candidates.pop() {
        let pages = mapped_pages(&cfg, first_block, block_map);
        let mut body = vec![0u8; body_len];
        let mut off = 0usize;
        let mut seq = 1usize; // pages[0] is the header
        let mut valid = true;
        while off < body_len {
            let take = per_page.min(body_len - off);
            match read_meta_page(nand, pages[seq])? {
                Some(page) => body[off..off + take].copy_from_slice(&page[..take]),
                None => {
                    valid = false;
                    break;
                }
            }
            off += take;
            seq += 1;
        }
        if valid && crc32(&body) == body_crc {
            return Ok(Some((epoch, body)));
        }
    }
    Ok(None)
}

/// A successfully read sealed image.
#[derive(Debug)]
pub struct LoadedImage {
    /// The image's epoch (monotonic per seal).
    pub epoch: u64,
    /// On-flash size of the image (header + body), bytes.
    pub bytes: u64,
    /// The decoded metadata.
    pub image: DeviceImage,
}

/// Read the newest valid sealed image: both slots are parsed, CRCs
/// checked, and the higher epoch wins. `Ok(None)` when the part carries
/// no valid image (blank key, or both slots torn).
pub fn read_latest_image(nand: &Nand) -> Result<Option<LoadedImage>> {
    let mut candidates: Vec<(u64, Vec<u8>)> = Vec::new();
    for slot in 0..2 {
        if let Some(c) = read_slot(nand, slot)? {
            candidates.push(c);
        }
    }
    candidates.sort_by_key(|(e, _)| *e);
    while let Some((epoch, body)) = candidates.pop() {
        match decode_all::<DeviceImage>(&body) {
            Ok(image) => {
                return Ok(Some(LoadedImage {
                    epoch,
                    bytes: (HEADER_BYTES + body.len()) as u64,
                    image,
                }))
            }
            // A CRC-valid body that fails structural decode means a
            // format bug, not bitrot — but the older slot may still
            // mount, so fall through rather than hard-failing.
            Err(_) => continue,
        }
    }
    Ok(None)
}
