//! The bus-backed [`PcLink`]: how the device really talks to the PC.
//!
//! Every request leaves the device as a protocol [`Message`], and every
//! response chunk crosses back through the simulated bus — charging
//! transfer time and landing in the spy trace. The device *pulls*: a
//! chunk is only transmitted when the executor consumes past the previous
//! one, modelling the USB flow control of the real platform.

use std::sync::atomic::{AtomicU32, Ordering};

use ghostdb_bus::{Bus, Endpoint, Message};
use ghostdb_catalog::Predicate;
use ghostdb_exec::{PairStream, PcLink};
use ghostdb_storage::VisibleStore;
use ghostdb_types::{ColumnId, GhostError, IdStream, Result, RowId, TableId, Value};

/// Ids per `IdChunk` message (≈ 4 KB of payload at 4 B/id).
const ID_CHUNK: usize = 1024;
/// Pairs per `ColumnChunk` message.
const PAIR_CHUNK: usize = 512;

/// Device-side handle over the bus to the PC host.
pub struct BusPcLink {
    bus: Bus,
    visible: VisibleStore,
    next_request: AtomicU32,
}

impl BusPcLink {
    /// Wire a link over `bus` to a PC holding `visible`.
    pub fn new(bus: Bus, visible: VisibleStore) -> Self {
        BusPcLink {
            bus,
            visible,
            next_request: AtomicU32::new(1),
        }
    }

    fn request_id(&self) -> u32 {
        self.next_request.fetch_add(1, Ordering::Relaxed)
    }

    /// The PC's visible store (the durability layer snapshots it into
    /// the sealed image; it holds public data only, by construction).
    pub fn visible(&self) -> &VisibleStore {
        &self.visible
    }

    /// Push the visible half of one inserted row to the PC: the
    /// `AppendVisible` frame crosses the bus (visible data is public by
    /// design — the spy sees exactly what it would see of any visible
    /// column) and the PC appends it to its store.
    pub fn append_row(
        &mut self,
        table: TableId,
        row: RowId,
        values: Vec<(ColumnId, Value)>,
    ) -> Result<()> {
        let msg = Message::AppendVisible { table, row, values };
        self.bus.transmit(Endpoint::Device, Endpoint::Pc, &msg)?;
        let Message::AppendVisible { values, .. } = msg else {
            unreachable!("constructed above");
        };
        self.visible.push_row(table, row, &values)
    }

    /// Announce deleted rows to the PC: the `DeleteRows` frame crosses
    /// the bus carrying row **identities** only (which hidden values
    /// died never has a vehicle), and the PC tombstones its visible
    /// halves until the next compaction.
    pub fn delete_rows(&mut self, table: TableId, rows: Vec<RowId>) -> Result<()> {
        let msg = Message::DeleteRows { table, rows };
        self.bus.transmit(Endpoint::Device, Endpoint::Pc, &msg)?;
        let Message::DeleteRows { rows, .. } = msg else {
            unreachable!("constructed above");
        };
        self.visible.delete_rows(table, &rows)
    }

    /// Push the visible half of one `UPDATE` to the PC (public data —
    /// hidden rewrites stay on the device, like inserted hidden values).
    pub fn update_row(
        &mut self,
        table: TableId,
        row: RowId,
        values: Vec<(ColumnId, Value)>,
    ) -> Result<()> {
        let msg = Message::UpdateVisible { table, row, values };
        self.bus.transmit(Endpoint::Device, Endpoint::Pc, &msg)?;
        let Message::UpdateVisible { values, .. } = msg else {
            unreachable!("constructed above");
        };
        self.visible.update_row(table, row, &values)
    }

    /// Mirror the device's flush-time compaction on the PC: dead rows
    /// drop, survivors renumber, key values rewrite. The `CompactRows`
    /// frame names only the compacted tables — the dead sets were
    /// already public via the delete protocol.
    pub fn compact(&mut self, schema: &ghostdb_catalog::Schema) -> Result<()> {
        let tables = self.visible.compact(schema)?;
        if !tables.is_empty() {
            self.bus.transmit(
                Endpoint::Device,
                Endpoint::Pc,
                &Message::CompactRows { tables },
            )?;
        }
        Ok(())
    }
}

impl PcLink for BusPcLink {
    fn eval_predicate(&self, pred: &Predicate) -> Result<Box<dyn IdStream + '_>> {
        let request = self.request_id();
        // Device -> PC: the plan-derived request (public by design).
        self.bus.transmit(
            Endpoint::Device,
            Endpoint::Pc,
            &Message::EvalPredicate {
                request,
                table: pred.column.table,
                column: pred.column.column,
                op: pred.op,
                value: pred.value.clone(),
            },
        )?;
        // PC evaluates on its own (resource-rich) hardware.
        let ids = self.visible.eval_predicate(
            pred.column.table,
            pred.column.column,
            pred.op,
            &pred.value,
        )?;
        Ok(Box::new(ChunkedIdStream {
            bus: &self.bus,
            request,
            ids,
            next: 0,
            transmitted_upto: 0,
        }))
    }

    fn fetch_column(
        &self,
        table: TableId,
        column: ColumnId,
        predicate: Option<&Predicate>,
    ) -> Result<Box<dyn PairStream + '_>> {
        let request = self.request_id();
        let wire_pred = predicate.map(|p| {
            if p.column.table != table {
                return Err(GhostError::exec(
                    "fetch filter must be on the fetched table",
                ));
            }
            Ok((p.column.column, p.op, p.value.clone()))
        });
        let wire_pred = match wire_pred {
            Some(r) => Some(r?),
            None => None,
        };
        self.bus.transmit(
            Endpoint::Device,
            Endpoint::Pc,
            &Message::FetchColumn {
                request,
                table,
                column,
                predicate: wire_pred,
            },
        )?;
        let pairs = self.visible.fetch_column(
            table,
            column,
            predicate.map(|p| (p.column.column, p.op, &p.value)),
        )?;
        Ok(Box::new(ChunkedPairStream {
            bus: &self.bus,
            request,
            pairs,
            next: 0,
            transmitted_upto: 0,
        }))
    }

    fn bus_stats(&self) -> (u64, u64) {
        (
            self.bus.stats_to_device().bytes,
            self.bus.stats_to_pc().bytes,
        )
    }
}

/// Ids pulled chunk-by-chunk over the bus.
struct ChunkedIdStream<'a> {
    bus: &'a Bus,
    request: u32,
    /// PC-side buffer (host memory: the PC has plenty).
    ids: Vec<RowId>,
    next: usize,
    /// How many ids have already crossed the bus.
    transmitted_upto: usize,
}

impl IdStream for ChunkedIdStream<'_> {
    fn next_id(&mut self) -> Result<Option<RowId>> {
        if self.next >= self.ids.len() {
            if self.transmitted_upto == self.ids.len() && self.ids.is_empty() {
                // Even an empty result is one (final) frame.
                self.bus.transmit(
                    Endpoint::Pc,
                    Endpoint::Device,
                    &Message::IdChunk {
                        request: self.request,
                        ids: vec![],
                        done: true,
                    },
                )?;
                self.transmitted_upto = usize::MAX;
            }
            return Ok(None);
        }
        if self.next >= self.transmitted_upto {
            // Pull the next chunk across the link.
            let end = (self.transmitted_upto + ID_CHUNK).min(self.ids.len());
            let chunk = self.ids[self.transmitted_upto..end].to_vec();
            self.bus.transmit(
                Endpoint::Pc,
                Endpoint::Device,
                &Message::IdChunk {
                    request: self.request,
                    ids: chunk,
                    done: end == self.ids.len(),
                },
            )?;
            self.transmitted_upto = end;
        }
        let id = self.ids[self.next];
        self.next += 1;
        Ok(Some(id))
    }
}

/// `(id, value)` pairs pulled chunk-by-chunk over the bus.
struct ChunkedPairStream<'a> {
    bus: &'a Bus,
    request: u32,
    pairs: Vec<(RowId, Value)>,
    next: usize,
    transmitted_upto: usize,
}

impl PairStream for ChunkedPairStream<'_> {
    fn next_pair(&mut self) -> Result<Option<(RowId, Value)>> {
        if self.next >= self.pairs.len() {
            return Ok(None);
        }
        if self.next >= self.transmitted_upto {
            let end = (self.transmitted_upto + PAIR_CHUNK).min(self.pairs.len());
            let chunk = self.pairs[self.transmitted_upto..end].to_vec();
            self.bus.transmit(
                Endpoint::Pc,
                Endpoint::Device,
                &Message::ColumnChunk {
                    request: self.request,
                    pairs: chunk,
                    done: end == self.pairs.len(),
                },
            )?;
            self.transmitted_upto = end;
        }
        let pair = self.pairs[self.next].clone();
        self.next += 1;
        Ok(Some(pair))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_catalog::{SchemaBuilder, Visibility};
    use ghostdb_storage::Dataset;
    use ghostdb_types::{BusConfig, DataType, ScalarOp, SimClock};

    fn setup() -> BusPcLink {
        let mut b = SchemaBuilder::new();
        b.table("T", "id")
            .column("v", DataType::Integer, Visibility::Visible)
            .column("h", DataType::Integer, Visibility::Hidden);
        let schema = b.build().unwrap();
        let mut data = Dataset::empty(&schema);
        for i in 0..3000i64 {
            data.push_row(
                TableId(0),
                vec![Value::Int(i), Value::Int(i % 10), Value::Int(-i)],
            )
            .unwrap();
        }
        let visible = VisibleStore::build(&schema, &data).unwrap();
        let bus = Bus::new(BusConfig::usb_full_speed(), SimClock::new());
        BusPcLink::new(bus, visible)
    }

    #[test]
    fn delegated_predicate_streams_chunks() {
        let link = setup();
        let pred = Predicate::new(TableId(0), ColumnId(1), ScalarOp::Eq, Value::Int(3));
        let mut stream = link.eval_predicate(&pred).unwrap();
        let mut count = 0;
        let mut last = None;
        while let Some(id) = stream.next_id().unwrap() {
            if let Some(prev) = last {
                assert!(id > prev);
            }
            last = Some(id);
            count += 1;
        }
        assert_eq!(count, 300);
        drop(stream);
        // 300 ids fit one chunk; plus the request: two device-bound
        // frames total? One request (to pc) + one chunk (to device).
        assert_eq!(link.bus.stats_to_pc().frames, 1);
        assert_eq!(link.bus.stats_to_device().frames, 1);
    }

    #[test]
    fn large_results_use_multiple_chunks() {
        let link = setup();
        let pred = Predicate::new(TableId(0), ColumnId(1), ScalarOp::Ge, Value::Int(0));
        let mut stream = link.eval_predicate(&pred).unwrap();
        let mut count = 0;
        while stream.next_id().unwrap().is_some() {
            count += 1;
        }
        assert_eq!(count, 3000);
        drop(stream);
        let expect_frames = (3000usize).div_ceil(ID_CHUNK) as u64;
        assert_eq!(link.bus.stats_to_device().frames, expect_frames);
    }

    #[test]
    fn fetch_column_streams_pairs_in_order() {
        let link = setup();
        let pred = Predicate::new(TableId(0), ColumnId(1), ScalarOp::Lt, Value::Int(2));
        let mut stream = link
            .fetch_column(TableId(0), ColumnId(1), Some(&pred))
            .unwrap();
        let mut n = 0;
        let mut last = None;
        while let Some((id, v)) = stream.next_pair().unwrap() {
            assert!(v.as_int().unwrap() < 2);
            if let Some(prev) = last {
                assert!(id > prev);
            }
            last = Some(id);
            n += 1;
        }
        assert_eq!(n, 600);
    }

    #[test]
    fn hidden_column_requests_fail_on_pc() {
        let link = setup();
        let pred = Predicate::new(TableId(0), ColumnId(2), ScalarOp::Eq, Value::Int(0));
        // The PC simply does not have the column; nothing to leak.
        assert!(link.eval_predicate(&pred).is_err());
    }

    #[test]
    fn trace_records_everything() {
        let link = setup();
        let pred = Predicate::new(TableId(0), ColumnId(1), ScalarOp::Eq, Value::Int(7));
        let mut stream = link.eval_predicate(&pred).unwrap();
        while stream.next_id().unwrap().is_some() {}
        drop(stream);
        let events = link.bus.trace().events();
        assert!(events.iter().any(|e| e.kind == "EvalPredicate"));
        assert!(events.iter().any(|e| e.kind == "IdChunk"));
    }
}
