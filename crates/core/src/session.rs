//! Snapshot read sessions: epoch-stamped, MVCC-style read handles that
//! run `SELECT`s concurrently with the single writer.
//!
//! The engine is already MVCC-shaped — immutable flash bases, bounded
//! RAM deltas, tombstone [`LiveSet`]s — so a consistent read view is
//! nearly free to capture:
//!
//! * the **flash bases** are shared by reference (segment page lists
//!   are `Arc`ed; nothing rewrites a sealed segment in place);
//! * the **RAM deltas, overwrite overlays, tombstone sets, and index
//!   deltas** are copied — every one of them is bounded by the delta
//!   flush threshold ([`DeviceConfig::delta_flush_rows`]), so the copy
//!   cost tracks the *un-flushed tail*, never the base size;
//! * the **schema, tree, config, and statistics** ride along (`Arc`s
//!   for the immutable parts, a bounded clone for the stats).
//!
//! Because [`GhostDb::snapshot`] borrows `&self`, the borrow checker
//! itself quiesces capture: no writer method (`&mut self`) can overlap
//! it, so capture needs no locks. Once captured, the snapshot races
//! only with *future* writer work — and every shared structure it
//! still touches (the volume's translation table, the NAND part, the
//! bus trace, the clock) is internally synchronized.
//!
//! # What pins what
//!
//! A snapshot's base segments must outlive it even if the writer
//! flushes (rebuilding columns and indexes frees the old segments) or
//! the GC compacts blocks. Capture therefore **pins** every base LPN
//! in the volume ([`Volume::pin_pages`]): pinned pages may still
//! migrate — the translation table keeps reads valid across moves —
//! but a free against them is deferred until the last pin drops, the
//! same deferred-free discipline the sealed image uses. Dropping the
//! snapshot unpins and releases anything the writer freed in the
//! meantime.
//!
//! # Sessions
//!
//! Each snapshot is one read session with its own device RAM slice
//! (a fresh [`RamBudget`] of the configured size — concurrent sessions
//! model independent secure-device sessions, per the paper's
//! session-per-query trust model) and its own bus endpoint over the
//! shared (spied) link. A [`Snapshot`] is `Send + Sync`; give each
//! reader thread its own snapshot so RAM-budget contention between
//! sessions cannot produce spurious out-of-RAM failures.
//!
//! [`LiveSet`]: ghostdb_types::LiveSet
//! [`DeviceConfig::delta_flush_rows`]: ghostdb_types::DeviceConfig::delta_flush_rows
//! [`Volume::pin_pages`]: ghostdb_flash::Volume::pin_pages

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use ghostdb_bus::{Bus, Endpoint, Message};
use ghostdb_catalog::{Schema, SchemaStats, TreeSchema};
use ghostdb_exec::{
    attach_actuals, execute, plan_nodes, render_plan, CostModel, CostedPlan, Optimizer,
    PipelineMode, Plan, PlanNode, QuerySpec,
};
use ghostdb_flash::Volume;
use ghostdb_index::IndexSet;
use ghostdb_obs::{Span, TraceRecorder};
use ghostdb_ram::RamBudget;
use ghostdb_sql::parse_statements;
use ghostdb_storage::HiddenStore;
use ghostdb_types::{format_ns, DeviceConfig, Result, Sealed, SimClock};

use crate::flight::{build_statement_trace, CoreMetrics, StageClock};
use crate::{BusPcLink, GhostDb, QueryOutcome};

/// Registry of open snapshot sessions, shared between the writer (for
/// `device_report()`) and every snapshot (which deregisters itself on
/// drop).
#[derive(Debug)]
pub struct SessionRegistry {
    inner: Mutex<RegistryInner>,
}

#[derive(Debug)]
struct RegistryInner {
    next_id: u64,
    /// Open sessions: id → (capture epoch, pinned page count).
    open: HashMap<u64, (u64, usize)>,
}

impl SessionRegistry {
    pub(crate) fn new() -> Arc<SessionRegistry> {
        Arc::new(SessionRegistry {
            inner: Mutex::new(RegistryInner {
                next_id: 1,
                open: HashMap::new(),
            }),
        })
    }

    fn register(&self, epoch: u64, pinned_pages: usize) -> u64 {
        let mut inner = self.inner.lock().expect("session registry poisoned");
        let id = inner.next_id;
        inner.next_id += 1;
        inner.open.insert(id, (epoch, pinned_pages));
        id
    }

    fn deregister(&self, id: u64) {
        let mut inner = self.inner.lock().expect("session registry poisoned");
        inner.open.remove(&id);
    }

    /// Number of snapshots currently open.
    pub fn open_snapshots(&self) -> usize {
        self.inner
            .lock()
            .expect("session registry poisoned")
            .open
            .len()
    }

    /// One-line summary for `device_report()`: open session count plus
    /// the epoch range they span.
    pub(crate) fn describe(&self) -> String {
        let inner = self.inner.lock().expect("session registry poisoned");
        if inner.open.is_empty() {
            return "no open snapshots".to_string();
        }
        let lo = inner.open.values().map(|&(e, _)| e).min().unwrap_or(0);
        let hi = inner.open.values().map(|&(e, _)| e).max().unwrap_or(0);
        let pages: usize = inner.open.values().map(|&(_, p)| p).sum();
        format!(
            "{} open snapshot(s) spanning epochs {lo}..={hi}, {pages} page pin(s) held",
            inner.open.len()
        )
    }
}

/// An immutable, epoch-stamped view of the database: the read half of
/// [`GhostDb`], detached from `&mut self`.
///
/// A snapshot sees exactly the state committed at its capture epoch —
/// concurrent inserts, deletes, updates, and even flushes by the
/// writer never show through (snapshot isolation). It is `Send + Sync`
/// and carries its own device RAM slice; hand one to each reader
/// thread and run [`query`](Snapshot::query) freely. Dropping it
/// unpins its base segments, letting a flush that outpaced it finally
/// retire them.
pub struct Snapshot {
    epoch: u64,
    schema: Arc<Schema>,
    tree: Arc<TreeSchema>,
    config: Arc<DeviceConfig>,
    clock: SimClock,
    bus: Bus,
    volume: Volume,
    /// This session's device RAM slice.
    ram: RamBudget,
    /// Frozen hidden store: shared flash bases + copied deltas.
    hidden: HiddenStore,
    /// Frozen index set: shared flash bases + copied deltas.
    indexes: IndexSet,
    /// Planner statistics as of the capture epoch.
    stats: SchemaStats,
    /// This session's PC endpoint over the shared bus, with the
    /// visible store as of the capture epoch.
    pc_link: BusPcLink,
    /// Base LPNs pinned in the volume until drop.
    pinned: Vec<u32>,
    session_id: u64,
    registry: Arc<SessionRegistry>,
    /// The engine's flight recorder (shared — snapshot traces land in
    /// the same slot `GhostDb::last_trace` reads).
    recorder: TraceRecorder,
    /// The engine's metric handles (shared — snapshot reads observe
    /// into the same statement-latency histograms).
    metrics: Arc<CoreMetrics>,
}

impl Snapshot {
    /// Capture the current state of `db` (see [`GhostDb::snapshot`]).
    pub(crate) fn capture(db: &GhostDb) -> Result<Snapshot> {
        // `&db` here and `&mut db` in every writer method: the borrow
        // checker is the capture lock.
        let mut pinned = Vec::new();
        db.hidden.collect_lpns(&mut pinned);
        db.indexes.collect_lpns(&mut pinned);
        pinned.sort_unstable();
        pinned.dedup();
        db.volume.pin_pages(&pinned)?;
        let session_id = db.sessions.register(db.epoch, pinned.len());
        Ok(Snapshot {
            epoch: db.epoch,
            schema: db.schema.clone(),
            tree: db.tree.clone(),
            config: db.config.clone(),
            clock: db.clock.clone(),
            bus: db.bus.clone(),
            volume: db.volume.clone(),
            ram: RamBudget::new(db.config.ram_bytes),
            hidden: db.hidden.clone(),
            indexes: db.indexes.clone(),
            stats: db.stats.clone(),
            pc_link: BusPcLink::new(db.bus.clone(), db.pc_link.visible().clone()),
            pinned,
            session_id,
            registry: db.sessions.clone(),
            recorder: db.recorder.clone(),
            metrics: db.metrics.clone(),
        })
    }

    /// The commit epoch this snapshot captured. Every query answers
    /// against exactly this state.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Base pages this snapshot pins in the volume (observability; the
    /// leak check in `tests/concurrency.rs` watches these drain).
    pub fn pinned_pages(&self) -> usize {
        self.pinned.len()
    }

    /// The bound schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Tree analysis of the schema.
    pub fn tree(&self) -> &TreeSchema {
        &self.tree
    }

    /// Bind a SELECT statement into an executable [`QuerySpec`].
    pub fn bind(&self, sql: &str) -> Result<QuerySpec> {
        crate::bind_select_spec(&self.schema, &self.tree, sql)
    }

    /// All candidate plans for a statement, cheapest first.
    pub fn plans(&self, sql: &str) -> Result<Vec<CostedPlan>> {
        let spec = self.bind(sql)?;
        let opt = Optimizer::new(&self.schema, &self.tree, &self.stats, &self.config);
        opt.plans(&spec, |c| self.indexes.has_value_index(c))
    }

    /// The canonical all-Pre-filtering plan ("P1").
    pub fn plan_pre(&self, spec: &QuerySpec) -> Plan {
        ghostdb_exec::plan_all_pre(spec, &self.schema, |c| self.indexes.has_value_index(c))
    }

    /// The canonical Post-filtering plan ("P2").
    pub fn plan_post(&self, spec: &QuerySpec) -> Plan {
        ghostdb_exec::plan_all_post(spec, &self.schema, |c| self.indexes.has_value_index(c))
    }

    /// Execute a statement with the optimizer's best plan, against
    /// this snapshot's epoch.
    ///
    /// With the shared flight recorder on (the engine's
    /// [`GhostDb::set_tracing`]) the statement records the same span
    /// tree a writer-side `query` would.
    pub fn query(&self, sql: &str) -> Result<QueryOutcome> {
        if !self.recorder.is_enabled() {
            let spec = self.bind(sql)?;
            let plan = self.best_plan(&spec)?;
            return self.run(&spec, &plan);
        }
        let stage = StageClock::start();
        let stmts = parse_statements(sql)?;
        let parse_end = stage.now_ns();
        let spec = crate::bind_parsed_select(&self.schema, &self.tree, &stmts)?;
        let bind_end = stage.now_ns();
        let plan = self.best_plan(&spec)?;
        let plan_end = stage.now_ns();
        let out = self.run(&spec, &plan)?;
        self.recorder.record(build_statement_trace(
            stmts.len() as u64,
            parse_end,
            bind_end,
            plan_end,
            stage.now_ns(),
            &plan.label,
            &out.report,
        ));
        Ok(out)
    }

    fn best_plan(&self, spec: &QuerySpec) -> Result<Plan> {
        let opt = Optimizer::new(&self.schema, &self.tree, &self.stats, &self.config);
        opt.best(spec, |c| self.indexes.has_value_index(c))
    }

    /// `EXPLAIN ANALYZE` against this snapshot's epoch (see
    /// [`GhostDb::explain_analyze`]).
    pub fn explain_analyze(&self, sql: &str) -> Result<String> {
        let spec = self.bind(sql)?;
        let plan = self.best_plan(&spec)?;
        let (tree, _) = self.analyze_with_plan(&spec, &plan)?;
        Ok(render_plan(&plan.label, &tree))
    }

    /// Structured `EXPLAIN ANALYZE` for a caller-chosen plan (see
    /// [`GhostDb::analyze_with_plan`]).
    pub fn analyze_with_plan(
        &self,
        spec: &QuerySpec,
        plan: &Plan,
    ) -> Result<(PlanNode, QueryOutcome)> {
        let out = self.run(spec, plan)?;
        let cost = CostModel::new(&self.schema, &self.tree, &self.stats, &self.config);
        let cards = cost.cardinalities(spec, plan);
        let mut tree = plan_nodes(&self.schema, spec, plan, Some(&cards));
        attach_actuals(&mut tree, &out.report);
        Ok((tree, out))
    }

    /// The last completed statement trace, if tracing was on for it
    /// (the slot is shared with the engine).
    pub fn last_trace(&self) -> Option<Span> {
        self.recorder.last()
    }

    /// Execute a statement with a caller-chosen plan.
    pub fn query_with_plan(&self, sql: &str, plan: &Plan) -> Result<QueryOutcome> {
        let spec = self.bind(sql)?;
        self.run(&spec, plan)
    }

    /// Execute an already-bound spec with a plan.
    pub fn run(&self, spec: &QuerySpec, plan: &Plan) -> Result<QueryOutcome> {
        self.run_with_pipeline(spec, plan, PipelineMode::Blocked)
    }

    /// Execute with the seed's scalar (id-at-a-time) operators — the
    /// equivalence foil, on the snapshot path.
    pub fn run_scalar(&self, spec: &QuerySpec, plan: &Plan) -> Result<QueryOutcome> {
        self.run_with_pipeline(spec, plan, PipelineMode::Scalar)
    }

    fn run_with_pipeline(
        &self,
        spec: &QuerySpec,
        plan: &Plan,
        pipeline: PipelineMode,
    ) -> Result<QueryOutcome> {
        // The query text is public: the PC poses it to the device.
        self.bus.transmit(
            Endpoint::Pc,
            Endpoint::Device,
            &Message::Query {
                sql: spec.sql.clone(),
            },
        )?;
        let ctx = ghostdb_exec::ExecContext {
            schema: &self.schema,
            tree: &self.tree,
            config: &self.config,
            clock: self.clock.clone(),
            volume: &self.volume,
            ram: &self.ram,
            hidden: &self.hidden,
            indexes: &self.indexes,
            pc: &self.pc_link,
            pipeline,
        };
        let (rows, report) = execute(&ctx, spec, plan)?;
        self.metrics.select_latency.observe(report.total_ns);
        // Results exist only sealed on the device...
        let sealed = Sealed::new(rows);
        // ...and are opened by the secure display alone.
        let ticket = self.bus.present(&sealed.peek_on_device().rows);
        let rows = sealed.open(ticket);
        Ok(QueryOutcome { rows, report })
    }

    /// Multi-line explain: the plan list with costs for a statement,
    /// rendered as the same operator tree `EXPLAIN ANALYZE` prints.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let spec = self.bind(sql)?;
        let plans = self.plans(sql)?;
        let cost = CostModel::new(&self.schema, &self.tree, &self.stats, &self.config);
        let mut out = format!("{} candidate plan(s)\n", plans.len());
        for cp in plans.iter().take(8) {
            let cards = cost.cardinalities(&spec, &cp.plan);
            let tree = plan_nodes(&self.schema, &spec, &cp.plan, Some(&cards));
            out.push_str(&format!(
                "-- estimated {}\n{}",
                format_ns(cp.est_ns as u64),
                render_plan(&cp.plan.label, &tree)
            ));
        }
        Ok(out)
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        // Releases any segment the writer freed while this snapshot
        // held it; errors cannot surface from a destructor, and the
        // pin set was validated at capture.
        let _ = self.volume.unpin_pages(&self.pinned);
        self.registry.deregister(self.session_id);
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("epoch", &self.epoch)
            .field("pinned_pages", &self.pinned.len())
            .field("session_id", &self.session_id)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole point of a snapshot is crossing threads: it must be
    /// `Send` (handed to a reader thread) and `Sync` (shared by
    /// reference inside one). A compile-time assertion, not a runtime
    /// check — if a non-thread-safe field ever sneaks in, this stops
    /// building.
    #[test]
    fn snapshot_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Snapshot>();
        assert_send_sync::<SessionRegistry>();
    }
}
