//! The GhostDB facade: a complete instance of the paper's Figure 1.
//!
//! [`GhostDb`] wires together the three parties:
//!
//! * the **untrusted PC / public server** (a `VisibleStore` behind the
//!   [`BusPcLink`]) holding the visible columns,
//! * the **smart USB device** (flash volume + RAM budget + hidden store +
//!   indexes + executor),
//! * the **secure display** behind the bus's `present` path.
//!
//! Everything that crosses the PC ↔ device boundary moves through the
//! simulated bus and lands in the spy trace; query results leave only
//! through the secure display. The facade exposes the demo's three
//! phases: run queries (`query`), inspect and hand-build plans
//! (`plans`, `query_with_plan`, `explain`), and audit the spy's view
//! (`spy_report`, `spy_sees_value`).
//!
//! # Mutability: the post-load write path
//!
//! The facade is no longer frozen at bulk load. [`GhostDb::execute`]
//! accepts `INSERT` statements (and `SELECT`s) after load: each row is
//! validated against the live tree schema (dense PK, FK range, types),
//! its hidden half appended to the [`HiddenStore`]'s RAM delta, its
//! visible half pushed to the PC over the bus (an `AppendVisible` frame
//! — public data, visible to the spy like any visible column), and every
//! index maintained LSM-style through RAM deltas that queries union with
//! the flash base. Inserts enter through the **device's secure port**,
//! the same trust path as the initial bulk load: the insert text is
//! never transmitted to the PC, so hidden values still have no vehicle
//! across the spied link. Once the combined delta reaches
//! [`DeviceConfig::delta_flush_rows`] rows the engine merges everything
//! into rebuilt flash segments ([`GhostDb::flush_deltas`]), freeing the
//! old segments for the flash GC to reclaim.
//!
//! [`HiddenStore`]: ghostdb_storage::HiddenStore

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod link;

pub use link::BusPcLink;

use ghostdb_bus::{Bus, BusTrace, Endpoint, Message};
use ghostdb_catalog::{Schema, SchemaStats, TreeSchema};
use ghostdb_exec::{
    execute, CostedPlan, ExecContext, ExecReport, Optimizer, PipelineMode, Plan, QuerySpec,
    ResultSet,
};
use ghostdb_flash::{Nand, Volume};
use ghostdb_index::IndexSet;
use ghostdb_ram::{RamBudget, RamScope};
use std::collections::HashMap;

use ghostdb_sql::{bind_insert, bind_schema, bind_select, parse_statements, InsertStmt, Statement};
use ghostdb_storage::{split_dataset, validate_row, Dataset, HiddenStore};
use ghostdb_types::{
    format_ns, ColumnId, DeviceConfig, GhostError, Result, RowId, Sealed, SimClock, TableId, Value,
};

/// Summary of the secure bulk load.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Rows loaded per table (in table-id order).
    pub rows: Vec<u64>,
    /// Flash bytes used by hidden columns + replicated keys.
    pub store_flash_bytes: u64,
    /// Flash bytes used by SKTs and climbing indexes (the paper's "extra
    /// cost in terms of Flash storage").
    pub index_flash_bytes: u64,
    /// Simulated time spent programming flash during the load.
    pub sim_ns: u64,
}

/// Result of one query execution.
#[derive(Debug)]
pub struct QueryOutcome {
    /// The result rows, as rendered on the secure display.
    pub rows: ResultSet,
    /// Per-operator statistics and totals.
    pub report: ExecReport,
}

/// Summary of one applied `INSERT`.
#[derive(Debug, Clone)]
pub struct InsertReport {
    /// Table that received the rows.
    pub table: TableId,
    /// Rows appended.
    pub rows: u64,
    /// Whether this statement tripped the automatic delta flush.
    pub flushed: bool,
    /// Simulated time spent (validation, flash/bus appends, and the
    /// flush if one ran).
    pub sim_ns: u64,
}

/// Outcome of one statement run through [`GhostDb::execute`].
#[derive(Debug)]
pub enum ExecOutcome {
    /// A `SELECT`'s rows and report.
    Query(QueryOutcome),
    /// An `INSERT`'s application summary.
    Insert(InsertReport),
}

/// A loaded GhostDB instance (PC + device + display).
pub struct GhostDb {
    schema: Schema,
    tree: TreeSchema,
    config: DeviceConfig,
    clock: SimClock,
    bus: Bus,
    volume: Volume,
    ram: RamBudget,
    hidden: HiddenStore,
    indexes: IndexSet,
    stats: SchemaStats,
    pc_link: BusPcLink,
}

impl GhostDb {
    /// Create a database from `CREATE TABLE` DDL and bulk-load `data` in
    /// the secure setting.
    pub fn create(ddl: &str, config: DeviceConfig, data: &Dataset) -> Result<GhostDb> {
        let stmts = parse_statements(ddl)?;
        let schema = bind_schema(&stmts)?;
        Self::create_with_schema(schema, config, data)
    }

    /// Create from an already-built schema (programmatic path).
    pub fn create_with_schema(
        schema: Schema,
        config: DeviceConfig,
        data: &Dataset,
    ) -> Result<GhostDb> {
        let tree = TreeSchema::analyze(&schema)?;
        let clock = SimClock::new();
        let nand = Nand::new(config.flash.clone(), clock.clone());
        let volume = Volume::new(nand);
        let ram = RamBudget::new(config.ram_bytes);
        let bus = Bus::new(config.bus.clone(), clock.clone());

        let load_scope = RamScope::new(&ram);
        let (hidden, visible, stats, encoders) =
            split_dataset(&volume, &load_scope, &schema, data)?;
        let indexes = IndexSet::build(&volume, &load_scope, &schema, &tree, data, &encoders)?;
        let pc_link = BusPcLink::new(bus.clone(), visible);
        Ok(GhostDb {
            schema,
            tree,
            config,
            clock,
            bus,
            volume,
            ram,
            hidden,
            indexes,
            stats,
            pc_link,
        })
    }

    /// The bound schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Tree analysis of the schema.
    pub fn tree(&self) -> &TreeSchema {
        &self.tree
    }

    /// Catalog statistics collected at load time.
    pub fn stats(&self) -> &SchemaStats {
        &self.stats
    }

    /// The hardware configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// The shared simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The device's flash volume (for space/stat reports).
    pub fn volume(&self) -> &Volume {
        &self.volume
    }

    /// The device RAM budget.
    pub fn ram(&self) -> &RamBudget {
        &self.ram
    }

    /// The device's index set.
    pub fn indexes(&self) -> &IndexSet {
        &self.indexes
    }

    /// The spy-visible bus trace.
    pub fn trace(&self) -> &BusTrace {
        self.bus.trace()
    }

    /// Forget the trace (between experiment phases).
    pub fn clear_trace(&self) {
        self.bus.trace().clear();
    }

    /// Demo phase 1: the pirate's view of the last transfers.
    pub fn spy_report(&self) -> String {
        self.bus.trace().spy_report()
    }

    /// Would a spy have seen this value on the PC ↔ device link?
    pub fn spy_sees_value(&self, v: &Value) -> bool {
        self.bus.trace().spy_sees_value(v)
    }

    /// Run a statement script post-load: `INSERT`s mutate the database
    /// (validated per row, applied through the LSM-style deltas),
    /// `SELECT`s run with the optimizer's best plan. The paper's promise
    /// holds — no changes to the SQL text — and so does the trust model:
    /// inserts enter through the device's secure port, so their hidden
    /// values never cross the spied PC ↔ device link.
    pub fn execute(&mut self, sql: &str) -> Result<Vec<ExecOutcome>> {
        let stmts = parse_statements(sql)?;
        let mut out = Vec::with_capacity(stmts.len());
        for s in &stmts {
            match s {
                Statement::Select(sel) => out.push(ExecOutcome::Query(self.query(&sel.text)?)),
                Statement::Insert(ins) => out.push(ExecOutcome::Insert(self.apply_insert(ins)?)),
                Statement::CreateTable(ct) => {
                    return Err(GhostError::unsupported(format!(
                        "CREATE TABLE {} after load (the tree schema is fixed at create time)",
                        ct.name
                    )))
                }
            }
        }
        Ok(out)
    }

    fn apply_insert(&mut self, ins: &InsertStmt) -> Result<InsertReport> {
        let bound = bind_insert(&self.schema, ins)?;
        self.insert_rows(bound.table, bound.rows)
    }

    /// Programmatic insert path (also the backend of
    /// [`execute`](Self::execute)): validate and append `rows` (full
    /// rows in declaration order, dense primary key first) to `table`,
    /// maintaining the hidden store, the PC's visible store, every
    /// index, and the catalog statistics. Trips the automatic delta
    /// flush when the combined delta reaches
    /// [`DeviceConfig::delta_flush_rows`].
    pub fn insert_rows(&mut self, table: TableId, rows: Vec<Vec<Value>>) -> Result<InsertReport> {
        let t0 = self.clock.now();
        let scope = RamScope::new(&self.ram);
        // Validate the WHOLE batch before applying any row, so a bad
        // statement is atomic: either every row lands or none does.
        // Row k's dense primary key must be base count + k; foreign-key
        // limits are stable across the batch because a statement targets
        // one table and tree schemas have no self-references.
        {
            let start = self.hidden.row_count(table) as u64;
            let hidden = &self.hidden;
            let row_count_of = |t: TableId| hidden.row_count(t) as u64;
            for (k, values) in rows.iter().enumerate() {
                validate_row(&self.schema, table, start + k as u64, values, &row_count_of)?;
            }
        }
        for values in &rows {
            let new_id = RowId(self.hidden.row_count(table));
            // Resolve the new row's joins down the subtree before any
            // mutation (reads may touch the SKTs' base + delta).
            let wide = self.wide_row_for(table, new_id, values, &scope)?;
            // Hidden half → device flash delta (never the bus).
            let new_value_cols = self.hidden.append_row(&self.schema, table, values)?;
            // Visible half → the PC, over the (spied) bus.
            let visible: Vec<(ColumnId, Value)> = self
                .schema
                .table(table)
                .columns
                .iter()
                .enumerate()
                .filter(|(_, c)| !c.visibility.is_hidden())
                .map(|(ci, _)| (ColumnId(ci as u16), values[ci].clone()))
                .collect();
            self.pc_link.append_row(table, new_id, visible)?;
            // Index maintenance at every affected level.
            self.indexes.apply_insert(
                &self.tree,
                &scope,
                &self.hidden,
                ghostdb_index::RowInsert {
                    table,
                    id: new_id,
                    values,
                },
                &wide,
            )?;
            // Planner sees base + delta cardinalities immediately.
            self.stats.absorb_row(table, &new_value_cols);
        }
        let threshold = self.config.delta_flush_rows;
        let mut flushed = false;
        if threshold > 0 && self.hidden.total_delta_rows() >= threshold as u64 {
            self.flush_deltas()?;
            flushed = true;
        }
        Ok(InsertReport {
            table,
            rows: rows.len() as u64,
            flushed,
            sim_ns: self.clock.now().since(t0),
        })
    }

    /// The wide row of one inserted row: the id of every table in
    /// `table`'s subtree that the new row joins to, resolved by chasing
    /// each foreign key through the child's Subtree Key Table.
    fn wide_row_for(
        &self,
        table: TableId,
        new_id: RowId,
        values: &[Value],
        scope: &RamScope,
    ) -> Result<HashMap<u16, RowId>> {
        let mut wide = HashMap::new();
        wide.insert(table.0, new_id);
        for (fk_col, child) in self.schema.table(table).foreign_keys() {
            let fk = values
                .get(fk_col.index())
                .and_then(|v| v.as_int())
                .ok_or_else(|| GhostError::exec("non-integer foreign key in insert"))?;
            self.extend_wide(child, RowId(fk as u32), scope, &mut wide)?;
        }
        Ok(wide)
    }

    fn extend_wide(
        &self,
        t: TableId,
        id: RowId,
        scope: &RamScope,
        wide: &mut HashMap<u16, RowId>,
    ) -> Result<()> {
        if self.tree.children(t).is_empty() {
            wide.insert(t.0, id);
            return Ok(());
        }
        let skt = self.indexes.skt(t)?;
        let row = skt.cursor(scope)?.fetch(id)?;
        for (pos, tt) in skt.table_order().iter().enumerate() {
            wide.insert(tt.0, row.ids[pos]);
        }
        Ok(())
    }

    /// Merge every RAM-resident delta — hidden columns, climbing
    /// indexes, SKTs — into rebuilt flash segments, freeing the old
    /// segments for the GC. Returns the number of delta rows merged.
    /// Runs automatically at the [`DeviceConfig::delta_flush_rows`]
    /// threshold; callable explicitly for tests and maintenance windows.
    pub fn flush_deltas(&mut self) -> Result<u64> {
        let delta_rows = self.hidden.total_delta_rows();
        if delta_rows == 0 && self.indexes.delta_entries() == 0 {
            return Ok(0);
        }
        let scope = RamScope::new(&self.ram);
        let remaps = self.hidden.flush(&scope)?;
        self.indexes.flush(&scope, &self.hidden, &remaps)?;
        Ok(delta_rows)
    }

    /// Un-flushed delta rows across all tables (observability).
    pub fn delta_rows(&self) -> u64 {
        self.hidden.total_delta_rows()
    }

    /// Bind a SELECT statement into an executable [`QuerySpec`].
    pub fn bind(&self, sql: &str) -> Result<QuerySpec> {
        let stmts = parse_statements(sql)?;
        let sel = stmts
            .iter()
            .find_map(|s| match s {
                Statement::Select(sel) => Some(sel),
                _ => None,
            })
            .ok_or_else(|| GhostError::sql("expected a SELECT statement"))?;
        let bound = bind_select(&self.schema, &self.tree, sel)?;
        QuerySpec::bind(
            &self.schema,
            &self.tree,
            bound.sql,
            bound.tables,
            bound.projections,
            bound.predicates,
            bound.joins,
        )
    }

    fn exec_context(&self, pipeline: PipelineMode) -> ExecContext<'_> {
        ExecContext {
            schema: &self.schema,
            tree: &self.tree,
            config: &self.config,
            clock: self.clock.clone(),
            volume: &self.volume,
            ram: &self.ram,
            hidden: &self.hidden,
            indexes: &self.indexes,
            pc: &self.pc_link,
            pipeline,
        }
    }

    /// All candidate plans for a statement, cheapest first (demo phases
    /// 2 and 3).
    pub fn plans(&self, sql: &str) -> Result<Vec<CostedPlan>> {
        let spec = self.bind(sql)?;
        let opt = Optimizer::new(&self.schema, &self.tree, &self.stats, &self.config);
        opt.plans(&spec, |c| self.indexes.has_value_index(c))
    }

    /// The canonical all-Pre-filtering plan ("P1").
    pub fn plan_pre(&self, spec: &QuerySpec) -> Plan {
        ghostdb_exec::plan_all_pre(spec, &self.schema, |c| self.indexes.has_value_index(c))
    }

    /// The canonical Post-filtering plan ("P2", Figure 5).
    pub fn plan_post(&self, spec: &QuerySpec) -> Plan {
        ghostdb_exec::plan_all_post(spec, &self.schema, |c| self.indexes.has_value_index(c))
    }

    /// Execute a statement with the optimizer's best plan.
    pub fn query(&self, sql: &str) -> Result<QueryOutcome> {
        let spec = self.bind(sql)?;
        let opt = Optimizer::new(&self.schema, &self.tree, &self.stats, &self.config);
        let plan = opt.best(&spec, |c| self.indexes.has_value_index(c))?;
        self.run(&spec, &plan)
    }

    /// Execute a statement with a caller-chosen plan (demo phase 2/3).
    pub fn query_with_plan(&self, sql: &str, plan: &Plan) -> Result<QueryOutcome> {
        let spec = self.bind(sql)?;
        self.run(&spec, plan)
    }

    /// Execute an already-bound spec with a plan.
    pub fn run(&self, spec: &QuerySpec, plan: &Plan) -> Result<QueryOutcome> {
        self.run_with_pipeline(spec, plan, PipelineMode::Blocked)
    }

    /// Execute with the seed's scalar (id-at-a-time) operators instead
    /// of the blocked pipeline. Results and tuple counts must match
    /// [`run`](Self::run) exactly; only simulated timings differ. Kept
    /// public as the equivalence foil for tests and benchmarks.
    pub fn run_scalar(&self, spec: &QuerySpec, plan: &Plan) -> Result<QueryOutcome> {
        self.run_with_pipeline(spec, plan, PipelineMode::Scalar)
    }

    fn run_with_pipeline(
        &self,
        spec: &QuerySpec,
        plan: &Plan,
        pipeline: PipelineMode,
    ) -> Result<QueryOutcome> {
        // The query text is public: the PC poses it to the device.
        self.bus.transmit(
            Endpoint::Pc,
            Endpoint::Device,
            &Message::Query {
                sql: spec.sql.clone(),
            },
        )?;
        let ctx = self.exec_context(pipeline);
        let (rows, report) = execute(&ctx, spec, plan)?;
        // Results exist only sealed on the device...
        let sealed = Sealed::new(rows);
        // ...and are opened by the secure display alone.
        let ticket = self.bus.present(&sealed.peek_on_device().rows);
        let rows = sealed.open(ticket);
        Ok(QueryOutcome { rows, report })
    }

    /// Multi-line explain: the plan list with costs for a statement.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let spec = self.bind(sql)?;
        let plans = self.plans(sql)?;
        let mut out = format!("{} candidate plan(s)\n", plans.len());
        for cp in plans.iter().take(8) {
            out.push_str(&format!(
                "-- estimated {}\n{}",
                format_ns(cp.est_ns as u64),
                cp.plan.describe(&self.schema, &spec)
            ));
        }
        Ok(out)
    }

    /// Device-side storage report (flash occupancy, index overhead).
    pub fn device_report(&self) -> String {
        let usage = self.volume.usage();
        format!(
            "flash: {}/{} blocks free, {} live pages; indexes: {}",
            usage.free_blocks,
            usage.total_blocks,
            usage.live_pages,
            self.indexes.describe()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_types::{RowId, TableId};

    const DDL: &str = "\
        CREATE TABLE Doctor ( \
          DocID INTEGER PRIMARY KEY, \
          Name CHAR(40), \
          Country CHAR(20)); \
        CREATE TABLE Visit ( \
          VisID INTEGER PRIMARY KEY, \
          Severity INTEGER, \
          Purpose CHAR(100) HIDDEN, \
          DocID REFERENCES Doctor(DocID) HIDDEN);";

    fn tiny() -> GhostDb {
        let stmts = parse_statements(DDL).unwrap();
        let schema = bind_schema(&stmts).unwrap();
        let mut data = Dataset::empty(&schema);
        let countries = ["France", "Spain"];
        for i in 0..4i64 {
            data.push_row(
                TableId(0),
                vec![
                    Value::Int(i),
                    Value::Text(format!("doc{i}")),
                    Value::Text(countries[(i % 2) as usize].into()),
                ],
            )
            .unwrap();
        }
        let purposes = ["Checkup", "Sclerosis"];
        for i in 0..16i64 {
            data.push_row(
                TableId(1),
                vec![
                    Value::Int(i),
                    Value::Int(i % 8),
                    Value::Text(purposes[(i % 2) as usize].into()),
                    Value::Int(i % 4),
                ],
            )
            .unwrap();
        }
        // Shrink flash for test speed.
        let mut config = DeviceConfig::default_2007();
        config.flash.page_size = 256;
        config.flash.pages_per_block = 8;
        config.flash.num_blocks = 2048;
        GhostDb::create(DDL, config, &data).unwrap()
    }

    #[test]
    fn end_to_end_query_best_plan() {
        let db = tiny();
        let out = db
            .query(
                "SELECT Vis.VisID, Doc.Name FROM Visit Vis, Doctor Doc \
                 WHERE Vis.Purpose = 'Sclerosis' \
                   AND Vis.Severity >= 4 \
                   AND Vis.DocID = Doc.DocID",
            )
            .unwrap();
        // Sclerosis = odd visits; severity >= 4 → i%8 in 4..8 → i in
        // {5,7,13,15}.
        let ids: Vec<i64> = out
            .rows
            .rows
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        assert_eq!(ids, vec![5, 7, 13, 15]);
        // Doctor names joined through the hidden fk: doc (i%4).
        assert_eq!(out.rows.rows[0][1], Value::Text("doc1".into()));
        assert!(out.report.total_ns > 0);
    }

    #[test]
    fn all_plans_agree() {
        let db = tiny();
        let sql = "SELECT Vis.VisID FROM Visit Vis, Doctor Doc \
                   WHERE Doc.Country = 'Spain' \
                     AND Vis.Purpose = 'Checkup' \
                     AND Vis.DocID = Doc.DocID";
        let plans = db.plans(sql).unwrap();
        assert!(plans.len() >= 3);
        let mut results: Vec<Vec<Vec<Value>>> = Vec::new();
        for cp in &plans {
            let out = db.query_with_plan(sql, &cp.plan).unwrap();
            results.push(out.rows.rows.clone());
        }
        for r in &results[1..] {
            assert_eq!(r, &results[0], "plans disagree");
        }
        // Sanity: Spain doctors {1,3}; visits with docid in {1,3} and
        // even index: i%4 in {1,3} and i even → i in {} ... check via
        // reference: docid = i%4; purpose even i → Checkup. i even with
        // i%4 ∈ {1,3} impossible, so empty.
        assert!(results[0].is_empty());
    }

    #[test]
    fn hidden_values_never_cross_the_bus() {
        let db = tiny();
        db.clear_trace();
        let out = db
            .query(
                "SELECT Vis.Purpose FROM Visit Vis \
                 WHERE Vis.Severity = 3",
            )
            .unwrap();
        assert_eq!(out.rows.rows.len(), 2); // i%8==3 → {3, 11}
        assert_eq!(out.rows.rows[0][0], Value::Text("Sclerosis".into()));
        // The hidden value appears in results (secure display) but never
        // in the spy trace.
        assert!(!db.spy_sees_value(&Value::Text("Sclerosis".into())));
        assert!(!db.spy_sees_value(&Value::Text("Checkup".into())));
        // Visible traffic does appear.
        assert!(db.trace().spy_bytes() > 0);
    }

    #[test]
    fn explain_lists_costed_plans() {
        let db = tiny();
        let text = db
            .explain("SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Checkup'")
            .unwrap();
        assert!(text.contains("candidate plan"));
        assert!(text.contains("estimated"));
    }

    #[test]
    fn canonical_p1_p2_run() {
        let db = tiny();
        let sql = "SELECT Vis.VisID FROM Visit Vis, Doctor Doc \
                   WHERE Doc.Country = 'France' \
                     AND Vis.Purpose = 'Sclerosis' \
                     AND Vis.DocID = Doc.DocID";
        let spec = db.bind(sql).unwrap();
        let p1 = db.plan_pre(&spec);
        let p2 = db.plan_post(&spec);
        let r1 = db.run(&spec, &p1).unwrap();
        let r2 = db.run(&spec, &p2).unwrap();
        assert_eq!(r1.rows.rows, r2.rows.rows);
        // France doctors {0,2}; odd visits (Sclerosis) with docid even:
        // i odd, i%4 ∈ {0,2} → impossible → empty? i%4 for odd i is 1 or
        // 3. So empty.
        assert!(r1.rows.rows.is_empty());
    }

    #[test]
    fn device_report_mentions_indexes() {
        let db = tiny();
        let rep = db.device_report();
        assert!(rep.contains("SKT"));
        let _ = db.trace().events();
    }

    /// The acceptance shape in miniature: inserts then query ==
    /// fresh-load query, before and after a forced flush, both
    /// pipelines.
    #[test]
    fn post_load_inserts_match_fresh_load() {
        let mut db = tiny();
        // New doctor 4, new visits 16..20 (some referencing doctor 4,
        // one carrying a string outside the base dictionary).
        db.execute("INSERT INTO Doctor VALUES (4, 'doc4', 'Japan')")
            .unwrap();
        db.execute(
            "INSERT INTO Visit VALUES (16, 7, 'Sclerosis', 4), \
             (17, 4, 'Migraine', 4), (18, 5, 'Sclerosis', 1), (19, 9, 'Migraine', 2)",
        )
        .unwrap();
        assert!(db.delta_rows() > 0);

        // The same content loaded fresh.
        let stmts = parse_statements(DDL).unwrap();
        let schema = bind_schema(&stmts).unwrap();
        let mut data = Dataset::empty(&schema);
        let countries = ["France", "Spain"];
        for i in 0..4i64 {
            data.push_row(
                TableId(0),
                vec![
                    Value::Int(i),
                    Value::Text(format!("doc{i}")),
                    Value::Text(countries[(i % 2) as usize].into()),
                ],
            )
            .unwrap();
        }
        data.push_row(
            TableId(0),
            vec![
                Value::Int(4),
                Value::Text("doc4".into()),
                Value::Text("Japan".into()),
            ],
        )
        .unwrap();
        let purposes = ["Checkup", "Sclerosis"];
        for i in 0..16i64 {
            data.push_row(
                TableId(1),
                vec![
                    Value::Int(i),
                    Value::Int(i % 8),
                    Value::Text(purposes[(i % 2) as usize].into()),
                    Value::Int(i % 4),
                ],
            )
            .unwrap();
        }
        for (vid, sev, purpose, doc) in [
            (16i64, 7i64, "Sclerosis", 4i64),
            (17, 4, "Migraine", 4),
            (18, 5, "Sclerosis", 1),
            (19, 9, "Migraine", 2),
        ] {
            data.push_row(
                TableId(1),
                vec![
                    Value::Int(vid),
                    Value::Int(sev),
                    Value::Text(purpose.into()),
                    Value::Int(doc),
                ],
            )
            .unwrap();
        }
        let mut config = DeviceConfig::default_2007();
        config.flash.page_size = 256;
        config.flash.pages_per_block = 8;
        config.flash.num_blocks = 2048;
        let fresh = GhostDb::create(DDL, config, &data).unwrap();

        let queries = [
            "SELECT Vis.VisID, Doc.Name FROM Visit Vis, Doctor Doc \
             WHERE Vis.Purpose = 'Sclerosis' AND Vis.DocID = Doc.DocID",
            "SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Migraine'",
            "SELECT Vis.VisID, Vis.Purpose FROM Visit Vis, Doctor Doc \
             WHERE Doc.Country = 'Japan' AND Vis.Severity >= 4 \
               AND Vis.DocID = Doc.DocID",
        ];
        let check = |db: &GhostDb, phase: &str| {
            for sql in &queries {
                let expect = fresh.query(sql).unwrap().rows.rows;
                let spec = db.bind(sql).unwrap();
                for cp in db.plans(sql).unwrap() {
                    let got = db.run(&spec, &cp.plan).unwrap();
                    assert_eq!(got.rows.rows, expect, "{phase}/blocked: {sql}");
                    let got = db.run_scalar(&spec, &cp.plan).unwrap();
                    assert_eq!(got.rows.rows, expect, "{phase}/scalar: {sql}");
                }
            }
        };
        check(&db, "unflushed");
        let merged = db.flush_deltas().unwrap();
        assert_eq!(merged, 5);
        assert_eq!(db.delta_rows(), 0);
        check(&db, "flushed");
    }

    #[test]
    fn insert_validation_rejects_bad_rows() {
        let mut db = tiny();
        // Sparse primary key.
        assert!(db
            .execute("INSERT INTO Visit VALUES (99, 1, 'Checkup', 0)")
            .is_err());
        // Foreign key out of range.
        assert!(db
            .execute("INSERT INTO Visit VALUES (16, 1, 'Checkup', 9)")
            .is_err());
        // Type mismatch.
        assert!(db
            .execute("INSERT INTO Visit VALUES (16, 'high', 'Checkup', 0)")
            .is_err());
        // CHAR capacity: Doctor.Country is CHAR(20).
        assert!(db
            .execute(&format!(
                "INSERT INTO Doctor VALUES (4, 'd', '{}')",
                "x".repeat(30)
            ))
            .is_err());
        // Multi-row statements are atomic: a bad later row means no row
        // of the batch is applied.
        assert!(db
            .execute("INSERT INTO Visit VALUES (16, 1, 'Checkup', 0), (16, 2, 'Checkup', 0)")
            .is_err());
        // Failed statements leave no delta behind.
        assert_eq!(db.delta_rows(), 0);
        // And the DDL path stays closed post-load.
        assert!(db
            .execute("CREATE TABLE T (id INTEGER PRIMARY KEY)")
            .is_err());
    }

    #[test]
    fn automatic_flush_trips_at_threshold() {
        let stmts = parse_statements(DDL).unwrap();
        let schema = bind_schema(&stmts).unwrap();
        let mut data = Dataset::empty(&schema);
        data.push_row(
            TableId(0),
            vec![
                Value::Int(0),
                Value::Text("doc0".into()),
                Value::Text("France".into()),
            ],
        )
        .unwrap();
        let mut config = DeviceConfig::default_2007();
        config.flash.page_size = 256;
        config.flash.pages_per_block = 8;
        config.flash.num_blocks = 2048;
        config.delta_flush_rows = 3;
        let mut db = GhostDb::create(DDL, config, &data).unwrap();
        let r = db
            .insert_rows(
                TableId(1),
                vec![
                    vec![
                        Value::Int(0),
                        Value::Int(1),
                        Value::Text("Checkup".into()),
                        Value::Int(0),
                    ],
                    vec![
                        Value::Int(1),
                        Value::Int(2),
                        Value::Text("Checkup".into()),
                        Value::Int(0),
                    ],
                ],
            )
            .unwrap();
        assert!(!r.flushed);
        assert_eq!(db.delta_rows(), 2);
        let r = db
            .insert_rows(
                TableId(1),
                vec![vec![
                    Value::Int(2),
                    Value::Int(3),
                    Value::Text("Checkup".into()),
                    Value::Int(0),
                ]],
            )
            .unwrap();
        assert!(r.flushed, "threshold of 3 delta rows must trip the flush");
        assert_eq!(db.delta_rows(), 0);
        let out = db
            .query("SELECT Vis.VisID FROM Visit Vis WHERE Vis.Severity >= 2")
            .unwrap();
        assert_eq!(out.rows.rows.len(), 2);
    }

    #[test]
    fn projection_of_fk_and_pk_columns() {
        let db = tiny();
        let out = db
            .query(
                "SELECT Vis.DocID, Vis.VisID FROM Visit Vis \
                 WHERE Vis.Severity = 0",
            )
            .unwrap();
        // Visits {0, 8}: docid i%4 -> {0, 0}.
        assert_eq!(
            out.rows.rows,
            vec![
                vec![Value::Int(0), Value::Int(0)],
                vec![Value::Int(0), Value::Int(8)],
            ]
        );
        let _ = RowId(0);
    }
}
