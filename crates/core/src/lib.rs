//! The GhostDB facade: a complete instance of the paper's Figure 1.
//!
//! [`GhostDb`] wires together the three parties:
//!
//! * the **untrusted PC / public server** (a `VisibleStore` behind the
//!   [`BusPcLink`]) holding the visible columns,
//! * the **smart USB device** (flash volume + RAM budget + hidden store +
//!   indexes + executor),
//! * the **secure display** behind the bus's `present` path.
//!
//! Everything that crosses the PC ↔ device boundary moves through the
//! simulated bus and lands in the spy trace; query results leave only
//! through the secure display. The facade exposes the demo's three
//! phases: run queries (`query`), inspect and hand-build plans
//! (`plans`, `query_with_plan`, `explain`), and audit the spy's view
//! (`spy_report`, `spy_sees_value`).
//!
//! # Mutability: the post-load write path (full DML)
//!
//! The facade is no longer frozen at bulk load. [`GhostDb::execute`]
//! accepts `INSERT`, `DELETE` and `UPDATE` statements (and `SELECT`s)
//! after load. Inserts are validated against the live tree schema
//! (dense PK, FK range, types), their hidden halves appended to the
//! [`HiddenStore`]'s RAM delta, their visible halves pushed to the PC
//! over the bus (an `AppendVisible` frame — public data), and every
//! index maintained LSM-style through RAM deltas that queries union
//! with the flash base. A `DELETE`'s `WHERE` resolves to row ids
//! through the normal planner/executor, then flips bits in a per-table
//! tombstone set (referential integrity is RESTRICT); an `UPDATE`
//! overwrites cells through value-rewrite overlays and re-homes the
//! affected value-index postings. User-visible primary keys are the
//! dense *live-rank* view of the tombstone set (`Vec::remove`
//! semantics).
//!
//! All three mutations enter through the **device's secure port**, the
//! same trust path as the initial bulk load: the statement text is
//! never transmitted to the PC (an `UPDATE`'s new values or a
//! `DELETE`'s constants may name hidden values), so hidden data still
//! has no vehicle across the spied link — the spy sees only delegated
//! visible predicate evaluations and the row-identity effects
//! (`DeleteRows`, `UpdateVisible`, `CompactRows`). Once the combined
//! un-flushed mutation count reaches
//! [`DeviceConfig::delta_flush_rows`] the engine merges everything into
//! rebuilt flash segments ([`GhostDb::flush_deltas`]), physically
//! dropping tombstoned rows (survivors renumber, the PC compacts in
//! lockstep) and freeing the old segments for the flash GC to reclaim.
//!
//! # Durability: seal, mount, and the WAL
//!
//! [`GhostDb::seal`] makes the device state durable: deltas merge, a
//! CRC-checked image of the whole device (schema, statistics, segment
//! manifests, l2p table, PC snapshot) lands in the flash part's
//! reserved metadata slots, and from then on every insert batch is
//! write-ahead logged before it touches RAM. [`GhostDb::mount`] is the
//! payoff — and the paper's elevator pitch: unplug the key
//! ([`GhostDb::nand`] + drop), plug it elsewhere, and remount the
//! database from the NAND alone, unflushed inserts replayed
//! batch-atomically from the WAL. A delta flush on a sealed instance
//! re-seals under a fresh epoch. Crash consistency is enforced by the
//! volume (sealed pages are pinned until the superseding image is
//! durable) and proved by `tests/crash_recovery.rs`, which cuts power
//! at every program/erase boundary.
//!
//! [`HiddenStore`]: ghostdb_storage::HiddenStore

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flight;
mod link;
mod session;

use flight::{build_statement_trace, CoreMetrics, StageClock};
pub use link::BusPcLink;
pub use session::{SessionRegistry, Snapshot};
use std::sync::Arc;

use ghostdb_bus::{Bus, BusMetrics, BusTrace, Endpoint, Message};
use ghostdb_catalog::{
    ColumnRef, ColumnRole, ColumnStats, Histogram, Predicate, Schema, SchemaStats, TreeSchema,
};
use ghostdb_exec::{
    attach_actuals, execute, plan_nodes, render_plan, CostModel, CostedPlan, ExecContext,
    ExecReport, Optimizer, PipelineMode, Plan, PlanNode, QuerySpec, ResultSet,
};
use ghostdb_flash::{Nand, Volume, VolumeMetrics};
use ghostdb_index::IndexSet;
use ghostdb_obs::{MetricsSnapshot, Registry, Span, TraceRecorder};
use ghostdb_persist::{DeviceImage, Wal};
use ghostdb_ram::{RamBudget, RamScope};
use std::collections::HashMap;

use ghostdb_sql::{
    bind_delete, bind_insert, bind_schema, bind_select, bind_update, parse_statements, DeleteStmt,
    InsertStmt, Statement, UpdateStmt,
};
use ghostdb_storage::{split_dataset, validate_row, Dataset, HiddenStore, STATS_BUCKETS};
use ghostdb_types::{
    format_ns, ColumnId, DataType, DeviceConfig, GhostError, Result, RowId, Sealed, SimClock,
    TableId, Value, Wire,
};

/// Summary of the secure bulk load.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Rows loaded per table (in table-id order).
    pub rows: Vec<u64>,
    /// Flash bytes used by hidden columns + replicated keys.
    pub store_flash_bytes: u64,
    /// Flash bytes used by SKTs and climbing indexes (the paper's "extra
    /// cost in terms of Flash storage").
    pub index_flash_bytes: u64,
    /// Simulated time spent programming flash during the load.
    pub sim_ns: u64,
}

/// Result of one query execution.
#[derive(Debug)]
pub struct QueryOutcome {
    /// The result rows, as rendered on the secure display.
    pub rows: ResultSet,
    /// Per-operator statistics and totals.
    pub report: ExecReport,
}

/// Summary of one applied `INSERT`.
#[derive(Debug, Clone)]
pub struct InsertReport {
    /// Table that received the rows.
    pub table: TableId,
    /// Rows appended.
    pub rows: u64,
    /// Whether this statement tripped the automatic delta flush.
    pub flushed: bool,
    /// Simulated time spent (validation, flash/bus appends, and the
    /// flush if one ran).
    pub sim_ns: u64,
}

/// Summary of one applied `DELETE` or `UPDATE`.
#[derive(Debug, Clone)]
pub struct MutationReport {
    /// Table that was mutated.
    pub table: TableId,
    /// Rows deleted / updated (the `WHERE` clause's match count).
    pub rows: u64,
    /// Whether this statement tripped the automatic delta flush (which
    /// physically compacts the tombstoned rows away).
    pub flushed: bool,
    /// Simulated time spent (filter evaluation, bus frames, WAL append,
    /// and the flush if one ran).
    pub sim_ns: u64,
}

/// Outcome of one statement run through [`GhostDb::execute`].
#[derive(Debug)]
pub enum ExecOutcome {
    /// A `SELECT`'s rows and report.
    Query(QueryOutcome),
    /// An `INSERT`'s application summary.
    Insert(InsertReport),
    /// A `DELETE`'s application summary.
    Delete(MutationReport),
    /// An `UPDATE`'s application summary.
    Update(MutationReport),
    /// An `EXPLAIN ANALYZE`'s rendered plan, annotated with estimated
    /// vs. actual cardinalities (the query really ran).
    Explain(String),
}

/// Summary of one [`GhostDb::seal`].
#[derive(Debug, Clone)]
pub struct SealReport {
    /// The sealed image's epoch (monotonic; mount picks the highest
    /// valid one).
    pub epoch: u64,
    /// On-flash size of the image (superblock + metadata segments +
    /// l2p table), bytes.
    pub image_bytes: u64,
    /// Delta rows merged into flash before the image was written.
    pub merged_rows: u64,
    /// Simulated time the seal took (merge + erases + programs).
    pub sim_ns: u64,
}

/// Durability bookkeeping of a sealed (or mounted) instance.
struct DurableState {
    /// Epoch of the image currently on flash.
    epoch: u64,
    /// The write-ahead log, positioned after everything durable.
    wal: Wal,
    /// Size of the sealed image, bytes.
    image_bytes: u64,
    /// Metadata segments the image references.
    meta_segments: usize,
    /// Entries in the sealed l2p table.
    l2p_entries: usize,
}

/// How a batch reaches [`GhostDb::apply_batch`].
#[derive(Clone, Copy, PartialEq)]
enum BatchOrigin {
    /// A live insert: WAL it first, honor the auto-flush threshold.
    Live,
    /// WAL replay during mount: already on flash, never re-logged, and
    /// the flush threshold waits for fresh traffic.
    Replay,
}

/// A loaded GhostDB instance (PC + device + display).
pub struct GhostDb {
    /// Immutable after load; `Arc`ed so snapshots share them for free.
    schema: Arc<Schema>,
    tree: Arc<TreeSchema>,
    config: Arc<DeviceConfig>,
    clock: SimClock,
    bus: Bus,
    volume: Volume,
    ram: RamBudget,
    hidden: HiddenStore,
    indexes: IndexSet,
    stats: SchemaStats,
    pc_link: BusPcLink,
    /// `Some` once the instance has sealed (or was mounted): inserts are
    /// write-ahead logged and delta flushes re-seal.
    durable: Option<DurableState>,
    /// Commit epoch: bumped by every committed mutation statement and
    /// every delta flush. Snapshots are stamped with it; equal epochs
    /// mean identical logical state.
    epoch: u64,
    /// Open snapshot sessions (for `device_report()` and leak checks).
    sessions: Arc<SessionRegistry>,
    /// Engine-wide metrics registry; the bus, the flash volume and the
    /// core all register into it, snapshots share it by clone.
    registry: Registry,
    /// The flight recorder holding the last completed statement trace.
    recorder: TraceRecorder,
    /// Core-owned metric handles (statement latencies, pauses, gauges).
    metrics: Arc<CoreMetrics>,
}

/// Effective page-cache capacity for a device configuration: the
/// [`FlashConfig::page_cache_pages`] knob, clamped so the mirror never
/// claims more than half of device RAM *and* the query operators keep
/// at least 12 KiB of working space (six raw page buffers) — tiny-RAM
/// sweep configurations degrade instead of failing at open.
///
/// [`FlashConfig::page_cache_pages`]: ghostdb_types::FlashConfig::page_cache_pages
fn page_cache_budget(config: &DeviceConfig) -> usize {
    let half = config.ram_bytes / 2;
    let floor = config.ram_bytes.saturating_sub(12 * 1024);
    config
        .flash
        .page_cache_pages
        .min(half.min(floor) / config.flash.page_size)
}

impl GhostDb {
    /// Create a database from `CREATE TABLE` DDL and bulk-load `data` in
    /// the secure setting.
    pub fn create(ddl: &str, config: DeviceConfig, data: &Dataset) -> Result<GhostDb> {
        let stmts = parse_statements(ddl)?;
        let schema = bind_schema(&stmts)?;
        Self::create_with_schema(schema, config, data)
    }

    /// Create from an already-built schema (programmatic path).
    pub fn create_with_schema(
        schema: Schema,
        config: DeviceConfig,
        data: &Dataset,
    ) -> Result<GhostDb> {
        let tree = TreeSchema::analyze(&schema)?;
        let clock = SimClock::new();
        let nand = Nand::new(config.flash.clone(), clock.clone());
        let reserved = config.flash.reserved_blocks();
        if reserved >= config.flash.num_blocks {
            return Err(GhostError::flash(format!(
                "flash volume full before load: the part's {} blocks cannot hold the \
                 {reserved}-block durability reserve (shrink meta_slot_blocks/wal_blocks, \
                 or set them to 0 to disable durability)",
                config.flash.num_blocks
            )));
        }
        let volume = Volume::with_reserved(nand, reserved);
        let ram = RamBudget::new(config.ram_bytes);
        // The page-cache mirror is a device-global structure: charged
        // once to the device budget, shared by the writer and every
        // snapshot reader for the life of the engine.
        volume.configure_page_cache(page_cache_budget(&config), &ram)?;
        let bus = Bus::new(config.bus.clone(), clock.clone());
        let registry = Registry::new();
        volume.attach_metrics(VolumeMetrics::new(&registry));
        bus.attach_metrics(BusMetrics::new(&registry));
        let metrics = Arc::new(CoreMetrics::new(&registry));

        let load_scope = RamScope::new(&ram);
        let (hidden, visible, stats, encoders) =
            split_dataset(&volume, &load_scope, &schema, data)?;
        let indexes = IndexSet::build(&volume, &load_scope, &schema, &tree, data, &encoders)?;
        let pc_link = BusPcLink::new(bus.clone(), visible);
        Ok(GhostDb {
            schema: Arc::new(schema),
            tree: Arc::new(tree),
            config: Arc::new(config),
            clock,
            bus,
            volume,
            ram,
            hidden,
            indexes,
            stats,
            pc_link,
            durable: None,
            epoch: 0,
            sessions: SessionRegistry::new(),
            registry,
            recorder: TraceRecorder::new(),
            metrics,
        })
    }

    /// Remount a device from its NAND part alone — no `Dataset`, no DDL:
    /// the sealed image provides the schema, statistics, segment
    /// manifests, and translation table, and the write-ahead log replays
    /// every insert batch committed after the seal. `config` supplies
    /// the host-side knobs (RAM budget, bus, CPU, flush threshold); its
    /// flash geometry must match the part the image was sealed on.
    pub fn mount(nand: Nand, config: DeviceConfig) -> Result<GhostDb> {
        // The page-cache capacity is a host-side policy knob, not part
        // geometry: the same sealed part may be mounted cache-off for
        // equivalence or A/B timing runs.
        let mut part = nand.config().clone();
        part.page_cache_pages = config.flash.page_cache_pages;
        if part != config.flash {
            return Err(GhostError::corrupt(
                "mount config flash geometry does not match the NAND part",
            ));
        }
        let loaded = ghostdb_persist::read_latest_image(&nand)?.ok_or_else(|| {
            GhostError::corrupt(
                "no valid sealed image on this part (never sealed, or both slots torn)",
            )
        })?;
        let meta_segments = loaded.image.metadata_segment_count();
        let l2p_entries = loaded.image.l2p.len();
        let DeviceImage {
            schema,
            stats,
            hidden,
            indexes,
            visible,
            tombstones,
            l2p,
            bad_blocks,
        } = loaded.image;
        let reserved = config.flash.reserved_blocks();
        let volume = Volume::mount(nand.clone(), reserved, l2p, &bad_blocks)?;
        let registry = Registry::new();
        volume.attach_metrics(VolumeMetrics::new(&registry));
        let tree = TreeSchema::analyze(&schema)?;
        let mut hidden = HiddenStore::restore(&volume, &hidden)?;
        hidden.restore_liveness(&tombstones)?;
        let indexes = IndexSet::restore(&volume, &indexes)?;
        let clock = nand.clock().clone();
        let bus = Bus::new(config.bus.clone(), clock.clone());
        bus.attach_metrics(BusMetrics::new(&registry));
        let metrics = Arc::new(CoreMetrics::new(&registry));
        let ram = RamBudget::new(config.ram_bytes);
        // Sized from the *mount* config, not the config baked into the
        // part when it was created — so the same sealed image can be
        // opened cache-off for equivalence and A/B timing runs.
        volume.configure_page_cache(page_cache_budget(&config), &ram)?;
        let pc_link = BusPcLink::new(bus.clone(), visible);
        let mut db = GhostDb {
            schema: Arc::new(schema),
            tree: Arc::new(tree),
            config: Arc::new(config),
            clock,
            bus,
            volume,
            ram,
            hidden,
            indexes,
            stats,
            pc_link,
            durable: None,
            epoch: 0,
            sessions: SessionRegistry::new(),
            registry,
            recorder: TraceRecorder::new(),
            metrics,
        };
        // Replay the WAL: every fully-committed post-seal batch, in
        // order, through the normal apply path (validation included) —
        // but never re-logged, and without tripping the auto-flush.
        let opened = Wal::open(nand, loaded.epoch)?;
        for rec in &opened.records {
            match decode_wal_record(rec)? {
                WalRecord::Insert(table, rows) => {
                    db.apply_batch(table, rows, BatchOrigin::Replay)?;
                }
                WalRecord::Delete(table, rows) => {
                    db.apply_delete_batch(table, rows, BatchOrigin::Replay)?;
                }
                WalRecord::Update(table, rows, assignments) => {
                    db.apply_update_batch(table, rows, assignments, BatchOrigin::Replay)?;
                }
            }
        }
        db.durable = Some(DurableState {
            epoch: loaded.epoch,
            wal: opened.wal,
            image_bytes: loaded.bytes,
            meta_segments,
            l2p_entries,
        });
        if opened.truncated {
            // Replay stopped at the last good record: a committed batch
            // rotted away, so the WAL's surviving tail describes state
            // this instance no longer has. Re-seal immediately — the new
            // epoch makes the stale tail unreadable and the part
            // reflects exactly what replay recovered.
            db.seal()?;
        }
        Ok(db)
    }

    /// The bound schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Tree analysis of the schema.
    pub fn tree(&self) -> &TreeSchema {
        &self.tree
    }

    /// Catalog statistics collected at load time.
    pub fn stats(&self) -> &SchemaStats {
        &self.stats
    }

    /// The hardware configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// The shared simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The device's flash volume (for space/stat reports).
    pub fn volume(&self) -> &Volume {
        &self.volume
    }

    /// The device RAM budget.
    pub fn ram(&self) -> &RamBudget {
        &self.ram
    }

    /// The device's index set.
    pub fn indexes(&self) -> &IndexSet {
        &self.indexes
    }

    /// The spy-visible bus trace.
    pub fn trace(&self) -> &BusTrace {
        self.bus.trace()
    }

    /// Forget the trace (between experiment phases).
    pub fn clear_trace(&self) {
        self.bus.trace().clear();
    }

    /// Demo phase 1: the pirate's view of the last transfers.
    pub fn spy_report(&self) -> String {
        self.bus.trace().spy_report()
    }

    /// Would a spy have seen this value on the PC ↔ device link?
    pub fn spy_sees_value(&self, v: &Value) -> bool {
        self.bus.trace().spy_sees_value(v)
    }

    /// Run a statement script post-load: `INSERT`s mutate the database
    /// (validated per row, applied through the LSM-style deltas),
    /// `SELECT`s run with the optimizer's best plan. The paper's promise
    /// holds — no changes to the SQL text — and so does the trust model:
    /// inserts enter through the device's secure port, so their hidden
    /// values never cross the spied PC ↔ device link.
    pub fn execute(&mut self, sql: &str) -> Result<Vec<ExecOutcome>> {
        let stmts = parse_statements(sql)?;
        let mut out = Vec::with_capacity(stmts.len());
        for s in &stmts {
            match s {
                Statement::Select(sel) => out.push(ExecOutcome::Query(self.query(&sel.text)?)),
                Statement::ExplainAnalyze(sel) => {
                    out.push(ExecOutcome::Explain(self.explain_analyze(&sel.text)?))
                }
                Statement::Insert(ins) => out.push(ExecOutcome::Insert(self.apply_insert(ins)?)),
                Statement::Delete(del) => out.push(ExecOutcome::Delete(self.apply_delete(del)?)),
                Statement::Update(upd) => out.push(ExecOutcome::Update(self.apply_update(upd)?)),
                Statement::CreateTable(ct) => {
                    return Err(GhostError::unsupported(format!(
                        "CREATE TABLE {} after load (the tree schema is fixed at create time)",
                        ct.name
                    )))
                }
            }
        }
        Ok(out)
    }

    fn apply_insert(&mut self, ins: &InsertStmt) -> Result<InsertReport> {
        let bound = bind_insert(&self.schema, ins)?;
        self.insert_rows(bound.table, bound.rows)
    }

    fn apply_delete(&mut self, del: &DeleteStmt) -> Result<MutationReport> {
        let bound = bind_delete(&self.schema, del)?;
        let rows = self.matching_rows(&bound.sql, bound.table, &bound.predicates)?;
        self.delete_rows(bound.table, rows)
    }

    fn apply_update(&mut self, upd: &UpdateStmt) -> Result<MutationReport> {
        let bound = bind_update(&self.schema, upd)?;
        let rows = self.matching_rows(&bound.sql, bound.table, &bound.predicates)?;
        self.update_rows(bound.table, rows, bound.assignments)
    }

    /// Resolve a mutation's `WHERE` to the logical row ids it matches:
    /// the filter runs as an ordinary single-table query — best plan,
    /// normal executor, liveness-filtered like any `SELECT` — projecting
    /// the primary key. Deletes and updates really are "queries that end
    /// in a mutation".
    ///
    /// Unlike a `SELECT` (posed by the PC, its text public by the
    /// paper's model), mutations enter through the **device's secure
    /// port** — the same trust path as `INSERT` — so the statement text
    /// is *never* transmitted: an `UPDATE`'s new values and a `DELETE`'s
    /// selection constants may name hidden values. Only the plan's
    /// side effects cross the bus: delegated *visible* predicate
    /// evaluations, and the row identities the mutation ends up
    /// touching.
    fn matching_rows(
        &self,
        sql: &str,
        table: TableId,
        predicates: &[Predicate],
    ) -> Result<Vec<RowId>> {
        let pk = ColumnRef {
            table,
            column: ColumnId(0),
        };
        let spec = QuerySpec::bind(
            &self.schema,
            &self.tree,
            sql,
            vec![table],
            vec![pk],
            predicates.to_vec(),
            vec![],
        )?;
        let opt = Optimizer::new(&self.schema, &self.tree, &self.stats, &self.config);
        let plan = opt.best(&spec, |c| self.indexes.has_value_index(c))?;
        let ctx = self.exec_context(PipelineMode::Blocked);
        let (rows, _report) = execute(&ctx, &spec, &plan)?;
        rows.rows
            .iter()
            .map(|r| {
                r[0].as_int()
                    .map(|v| RowId(v as u32))
                    .ok_or_else(|| GhostError::exec("mutation filter projected a non-integer pk"))
            })
            .collect()
    }

    /// Programmatic delete path (also the backend of
    /// [`execute`](Self::execute)): tombstone the rows with the given
    /// **logical** ids (current dense primary keys) in `table`.
    /// Referential integrity is RESTRICT — a row still referenced by a
    /// live row refuses to die, so delete bottom-up (root first).
    /// Queries stop seeing the rows immediately; their flash bytes are
    /// reclaimed by the next delta flush, which compacts them away.
    pub fn delete_rows(&mut self, table: TableId, rows: Vec<RowId>) -> Result<MutationReport> {
        self.apply_delete_batch(table, rows, BatchOrigin::Live)
    }

    fn apply_delete_batch(
        &mut self,
        table: TableId,
        rows: Vec<RowId>,
        origin: BatchOrigin,
    ) -> Result<MutationReport> {
        let t0 = self.clock.now();
        let mut logical = rows;
        logical.sort_unstable();
        logical.dedup();
        if logical.is_empty() {
            return Ok(MutationReport {
                table,
                rows: 0,
                flushed: false,
                sim_ns: 0,
            });
        }
        let live = self.hidden.live_count(table);
        if let Some(bad) = logical.iter().find(|r| r.0 >= live) {
            return Err(GhostError::exec(format!(
                "delete of {} row {bad}: only {live} live row(s)",
                self.schema.table(table).name
            )));
        }
        // WAL space first (logical ids survive the forced flush a full
        // log triggers — a flush only makes physical ids dense again).
        let record = self.wal_reserve(origin, || encode_delete_record(table, &logical))?;
        // Resolve to physical ids and enforce RESTRICT: none of the dying
        // rows may be referenced by a live row of the referencing table.
        let phys: Vec<u32> = logical
            .iter()
            .map(|r| self.hidden.select_live(table, r.0).map(|p| p.0))
            .collect::<Result<_>>()?;
        self.assert_unreferenced(table, &phys)?;
        // Tombstone on the device; announce the row identities to the PC
        // (ids only — which hidden values died stays hidden); shrink the
        // planner's live-cardinality estimates.
        self.hidden.delete_rows_physical(table, &phys)?;
        self.pc_link
            .delete_rows(table, phys.iter().map(|&p| RowId(p)).collect())?;
        self.stats.retire_rows(table, phys.len() as u64);
        self.wal_commit(record)?;
        self.epoch += 1;
        let mut flushed = false;
        if origin == BatchOrigin::Live && self.over_flush_threshold() {
            self.flush_deltas()?;
            flushed = true;
        }
        let sim_ns = self.clock.now().since(t0);
        self.metrics.delete_latency.observe(sim_ns);
        Ok(MutationReport {
            table,
            rows: logical.len() as u64,
            flushed,
            sim_ns,
        })
    }

    /// No live row of the referencing (tree-parent) table may point at
    /// any of the dying physical rows. The check is the climbing layout
    /// itself: `table`'s key index translates the dying ids to the
    /// parent level, and anything live there is a violation.
    fn assert_unreferenced(&self, table: TableId, phys: &[u32]) -> Result<()> {
        let Some((parent, _)) = self.tree.parent(table) else {
            return Ok(()); // the root is referenced by nobody
        };
        let scope = RamScope::new(&self.ram);
        let kidx = self.indexes.key_index(table)?;
        let mut input = ghostdb_types::VecIdStream::new(phys.iter().map(|&p| RowId(p)).collect());
        let refs = kidx.translate(
            &scope,
            &mut input,
            parent,
            ghostdb_index::TRANSLATE_SORT_RAM,
        )?;
        let mut live_refs = ghostdb_types::LiveFilter::new(refs, self.hidden.liveness(parent));
        use ghostdb_types::IdStream;
        if let Some(r) = live_refs.next_id()? {
            return Err(GhostError::exec(format!(
                "delete restricted: {} row(s) are still referenced by live {} rows (e.g. row {})",
                self.schema.table(table).name,
                self.schema.table(parent).name,
                self.hidden.live_rank(parent, r)
            )));
        }
        Ok(())
    }

    /// Programmatic update path (also the backend of
    /// [`execute`](Self::execute)): overwrite `assignments` on the rows
    /// with the given **logical** ids. Only attribute columns are
    /// updatable (primary keys are row identity; foreign keys are the
    /// precomputed join skeleton). Hidden rewrites stay on the device;
    /// visible rewrites cross the bus as `UpdateVisible` frames.
    pub fn update_rows(
        &mut self,
        table: TableId,
        rows: Vec<RowId>,
        assignments: Vec<(ColumnId, Value)>,
    ) -> Result<MutationReport> {
        self.apply_update_batch(table, rows, assignments, BatchOrigin::Live)
    }

    fn apply_update_batch(
        &mut self,
        table: TableId,
        rows: Vec<RowId>,
        assignments: Vec<(ColumnId, Value)>,
        origin: BatchOrigin,
    ) -> Result<MutationReport> {
        let t0 = self.clock.now();
        let mut logical = rows;
        logical.sort_unstable();
        logical.dedup();
        // Validate everything before any state moves (statement
        // atomicity, like inserts).
        let tdef = self.schema.table(table);
        for (c, v) in &assignments {
            let cdef = tdef
                .columns
                .get(c.index())
                .ok_or_else(|| GhostError::catalog(format!("no column {c} in {}", tdef.name)))?;
            if cdef.role != ColumnRole::Attribute {
                return Err(GhostError::unsupported(format!(
                    "UPDATE of key column {}.{}",
                    tdef.name, cdef.name
                )));
            }
            if !cdef.ty.admits(v) {
                return Err(GhostError::catalog(format!(
                    "update value {v} does not conform to {} of {}.{}",
                    cdef.ty, tdef.name, cdef.name
                )));
            }
            if let (DataType::Char(cap), Value::Text(s)) = (cdef.ty, v) {
                if s.len() > cap as usize {
                    return Err(GhostError::catalog(format!(
                        "update value exceeds CHAR({cap}) of {}.{}",
                        tdef.name, cdef.name
                    )));
                }
            }
        }
        if logical.is_empty() || assignments.is_empty() {
            return Ok(MutationReport {
                table,
                rows: 0,
                flushed: false,
                sim_ns: 0,
            });
        }
        let live = self.hidden.live_count(table);
        if let Some(bad) = logical.iter().find(|r| r.0 >= live) {
            return Err(GhostError::exec(format!(
                "update of {} row {bad}: only {live} live row(s)",
                self.schema.table(table).name
            )));
        }
        let record = self.wal_reserve(origin, || {
            encode_update_record(table, &logical, &assignments)
        })?;
        let phys: Vec<u32> = logical
            .iter()
            .map(|r| self.hidden.select_live(table, r.0).map(|p| p.0))
            .collect::<Result<_>>()?;
        let scope = RamScope::new(&self.ram);
        for &p in &phys {
            let row = RowId(p);
            let mut visible: Vec<(ColumnId, Value)> = Vec::new();
            for (c, v) in &assignments {
                if self.schema.table(table).columns[c.index()]
                    .visibility
                    .is_hidden()
                {
                    let old = self.hidden.value(&scope, table, *c, row)?;
                    if &old == v {
                        continue; // no-op rewrite: skip index churn
                    }
                    // Overlay first (the delta dictionary must know a
                    // fresh string before the index re-posts under it).
                    let minted = self.hidden.update_cell(table, *c, row, v)?;
                    self.indexes.apply_update(&scope, table, *c, row, &old, v)?;
                    if minted {
                        self.stats.absorb_update(table, &[c.0]);
                    }
                } else {
                    visible.push((*c, v.clone()));
                }
            }
            if !visible.is_empty() {
                self.pc_link.update_row(table, row, visible)?;
            }
        }
        self.wal_commit(record)?;
        self.epoch += 1;
        let mut flushed = false;
        if origin == BatchOrigin::Live && self.over_flush_threshold() {
            self.flush_deltas()?;
            flushed = true;
        }
        let sim_ns = self.clock.now().since(t0);
        self.metrics.update_latency.observe(sim_ns);
        Ok(MutationReport {
            table,
            rows: logical.len() as u64,
            flushed,
            sim_ns,
        })
    }

    /// The durable half of a mutation's prologue: encode the WAL record
    /// and make room for it (a full log forces a flush, which re-seals
    /// and truncates). Returns `None` for volatile instances and WAL
    /// replay.
    fn wal_reserve(
        &mut self,
        origin: BatchOrigin,
        encode: impl FnOnce() -> Vec<u8>,
    ) -> Result<Option<Vec<u8>>> {
        if origin != BatchOrigin::Live || self.durable.is_none() {
            return Ok(None);
        }
        let record = encode();
        let fits = self
            .durable
            .as_ref()
            .expect("checked above")
            .wal
            .fits(record.len());
        if !fits {
            self.flush_deltas()?;
            let wal = &self.durable.as_ref().expect("still durable").wal;
            if !wal.fits(record.len()) {
                return Err(GhostError::flash(format!(
                    "mutation batch ({} B) exceeds the WAL region; raise \
                     FlashConfig::wal_blocks or split the batch",
                    record.len()
                )));
            }
        }
        Ok(Some(record))
    }

    /// Append a reserved WAL record after the batch applied.
    fn wal_commit(&mut self, record: Option<Vec<u8>>) -> Result<()> {
        if let Some(record) = &record {
            self.durable
                .as_mut()
                .expect("durable when a record was reserved")
                .wal
                .append(record)?;
            self.metrics.wal_appends.inc();
        }
        Ok(())
    }

    /// Programmatic insert path (also the backend of
    /// [`execute`](Self::execute)): validate and append `rows` (full
    /// rows in declaration order, dense primary key first) to `table`,
    /// maintaining the hidden store, the PC's visible store, every
    /// index, and the catalog statistics. Trips the automatic delta
    /// flush when the combined delta reaches
    /// [`DeviceConfig::delta_flush_rows`].
    pub fn insert_rows(&mut self, table: TableId, rows: Vec<Vec<Value>>) -> Result<InsertReport> {
        self.apply_batch(table, rows, BatchOrigin::Live)
    }

    /// The shared batch-apply path behind [`insert_rows`](Self::insert_rows)
    /// and the mount-time WAL replay.
    fn apply_batch(
        &mut self,
        table: TableId,
        rows: Vec<Vec<Value>>,
        origin: BatchOrigin,
    ) -> Result<InsertReport> {
        let t0 = self.clock.now();
        if rows.is_empty() {
            return Ok(InsertReport {
                table,
                rows: 0,
                flushed: false,
                sim_ns: 0,
            });
        }
        let scope = RamScope::new(&self.ram);
        // Validate the WHOLE batch before applying any row, so a bad
        // statement is atomic: either every row lands or none does.
        // The user speaks the *logical* id space: row k's dense primary
        // key must be live count + k, and foreign keys address live
        // rows. (Identity with the physical space until rows die.)
        {
            let start = self.hidden.live_count(table) as u64;
            let hidden = &self.hidden;
            let row_count_of = |t: TableId| hidden.live_count(t) as u64;
            for (k, values) in rows.iter().enumerate() {
                validate_row(&self.schema, table, start + k as u64, values, &row_count_of)?;
            }
        }
        // Durable instances log the batch to the flash WAL in the same
        // operation that applies it: space is checked up front (a full
        // log forces a delta flush, which re-seals and truncates), the
        // record is programmed right after the apply loop, and only
        // then does the call return Ok — so the WAL replays exactly the
        // batches the caller saw commit, whole (records are CRC-framed;
        // a torn tail drops the interrupted batch) or not at all. The
        // logged rows are the caller's *logical* rows: replay re-runs
        // the same translation against an identically-evolved state.
        let record = self.wal_reserve(origin, || encode_insert_record(table, &rows))?;
        for values in &rows {
            let new_id = RowId(self.hidden.row_count(table));
            // Everything *stored* — flash keys, postings, SKT rows, the
            // PC's columns — speaks physical ids; rewrite the row's PK
            // and FK values from the logical space the user wrote.
            let values = &self.physical_row(table, new_id, values)?;
            // Resolve the new row's joins down the subtree before any
            // mutation (reads may touch the SKTs' base + delta).
            let wide = self.wide_row_for(table, new_id, values, &scope)?;
            // Hidden half → device flash delta (never the bus).
            let new_value_cols = self.hidden.append_row(&self.schema, table, values)?;
            // Visible half → the PC, over the (spied) bus.
            let visible: Vec<(ColumnId, Value)> = self
                .schema
                .table(table)
                .columns
                .iter()
                .enumerate()
                .filter(|(_, c)| !c.visibility.is_hidden())
                .map(|(ci, _)| (ColumnId(ci as u16), values[ci].clone()))
                .collect();
            self.pc_link.append_row(table, new_id, visible)?;
            // Index maintenance at every affected level.
            self.indexes.apply_insert(
                &self.tree,
                &scope,
                &self.hidden,
                ghostdb_index::RowInsert {
                    table,
                    id: new_id,
                    values,
                },
                &wide,
            )?;
            // Planner sees base + delta cardinalities immediately.
            self.stats.absorb_row(table, &new_value_cols);
        }
        self.wal_commit(record)?;
        self.epoch += 1;
        let mut flushed = false;
        if origin == BatchOrigin::Live && self.over_flush_threshold() {
            self.flush_deltas()?;
            flushed = true;
        }
        let sim_ns = self.clock.now().since(t0);
        self.metrics.insert_latency.observe(sim_ns);
        Ok(InsertReport {
            table,
            rows: rows.len() as u64,
            flushed,
            sim_ns,
        })
    }

    /// Has the combined un-flushed mutation count — appended rows,
    /// tombstones, overwritten cells — reached the auto-flush threshold?
    fn over_flush_threshold(&self) -> bool {
        let threshold = self.config.delta_flush_rows;
        threshold > 0 && self.hidden.total_pending_mutations() >= threshold as u64
    }

    /// Rewrite one insert row from the logical id space (what the user
    /// writes: dense PKs over live rows, FKs addressing live rows) into
    /// the physical space everything stored speaks. Identity while
    /// nothing is dead.
    fn physical_row(&self, table: TableId, new_id: RowId, values: &[Value]) -> Result<Vec<Value>> {
        let tdef = self.schema.table(table);
        let mut out = values.to_vec();
        for (ci, cdef) in tdef.columns.iter().enumerate() {
            match cdef.role {
                ColumnRole::PrimaryKey => out[ci] = Value::Int(new_id.0 as i64),
                ColumnRole::ForeignKey(target) => {
                    let logical = out[ci]
                        .as_int()
                        .ok_or_else(|| GhostError::exec("non-integer foreign key in insert"))?;
                    let phys = self.hidden.select_live(target, logical as u32)?;
                    out[ci] = Value::Int(phys.0 as i64);
                }
                ColumnRole::Attribute => {}
            }
        }
        Ok(out)
    }

    /// The wide row of one inserted row: the id of every table in
    /// `table`'s subtree that the new row joins to, resolved by chasing
    /// each foreign key through the child's Subtree Key Table.
    fn wide_row_for(
        &self,
        table: TableId,
        new_id: RowId,
        values: &[Value],
        scope: &RamScope,
    ) -> Result<HashMap<u16, RowId>> {
        let mut wide = HashMap::new();
        wide.insert(table.0, new_id);
        for (fk_col, child) in self.schema.table(table).foreign_keys() {
            let fk = values
                .get(fk_col.index())
                .and_then(|v| v.as_int())
                .ok_or_else(|| GhostError::exec("non-integer foreign key in insert"))?;
            self.extend_wide(child, RowId(fk as u32), scope, &mut wide)?;
        }
        Ok(wide)
    }

    fn extend_wide(
        &self,
        t: TableId,
        id: RowId,
        scope: &RamScope,
        wide: &mut HashMap<u16, RowId>,
    ) -> Result<()> {
        if self.tree.children(t).is_empty() {
            wide.insert(t.0, id);
            return Ok(());
        }
        let skt = self.indexes.skt(t)?;
        let row = skt.cursor(scope)?.fetch(id)?;
        for (pos, tt) in skt.table_order().iter().enumerate() {
            wide.insert(tt.0, row.ids[pos]);
        }
        Ok(())
    }

    /// Merge every RAM-resident mutation — appended delta rows,
    /// tombstones, overwrite overlays, index deltas — into rebuilt flash
    /// segments, freeing the old segments for the GC, and rebuild the
    /// per-column equi-depth histograms over the merged layout so
    /// planner estimates track the absorbed rows. Dead rows are
    /// **physically dropped** here: survivors renumber dense, the PC
    /// compacts its mirror in the same pass, and the freed segments are
    /// what a post-delete flush reclaims. Returns the number of delta
    /// rows merged (a deletes-only flush reports 0 merged rows but still
    /// compacts). Runs automatically at the
    /// [`DeviceConfig::delta_flush_rows`] threshold; callable explicitly
    /// for tests and maintenance windows.
    ///
    /// On a sealed instance the flush **re-seals**: the merge writes new
    /// segments (frees of the old, image-referenced ones are deferred by
    /// the volume), a fresh image is written, the deferred frees commit,
    /// and the WAL truncates — in that order, so a power cut at any
    /// boundary mounts either the old image + full WAL or the new image.
    pub fn flush_deltas(&mut self) -> Result<u64> {
        let t0 = self.clock.now();
        let Some(merged) = self.merge_deltas()? else {
            return Ok(0);
        };
        self.epoch += 1;
        if self.durable.is_some() {
            self.seal_image(merged)?;
        }
        self.metrics.flush_pause.observe(self.clock.now().since(t0));
        Ok(merged)
    }

    /// The merge alone (no re-seal): `None` when there was nothing to
    /// do, otherwise the number of delta rows merged.
    fn merge_deltas(&mut self) -> Result<Option<u64>> {
        let delta_rows = self.hidden.total_delta_rows();
        if self.hidden.total_pending_mutations() == 0 && self.indexes.delta_entries() == 0 {
            return Ok(None);
        }
        let scope = RamScope::new(&self.ram);
        let remaps = self.hidden.flush(&scope, &self.schema)?;
        self.indexes.flush(&scope, &self.hidden, &remaps)?;
        if remaps.any_compaction() {
            // The PC drops its dead rows and renumbers in lockstep (the
            // dead sets were already announced; one frame says "now").
            self.pc_link.compact(&self.schema)?;
        }
        self.refresh_statistics(&scope)?;
        Ok(Some(delta_rows))
    }

    /// Rebuild every column's statistics over the just-merged layout.
    /// ROADMAP's open item: `absorb_row` keeps cardinalities fresh
    /// per-insert, but histograms stayed load-time, so range-selectivity
    /// estimates drifted as merged deltas accumulated. Hidden columns
    /// rescan their flash key segments (order keys for fixed columns —
    /// rank codes carry no histogram, matching load time); visible
    /// columns rebuild from the PC's store — public data, recomputed on
    /// the resource-rich side. Like the secure bulk load and seal, this
    /// is a host-side maintenance pass: its working buffers are not
    /// charged to the device RAM budget.
    fn refresh_statistics(&mut self, scope: &RamScope) -> Result<()> {
        for (ti, tdef) in self.schema.tables().iter().enumerate() {
            let table = TableId(ti as u16);
            let rows = self.hidden.row_count(table) as u64;
            for (ci, cdef) in tdef.columns.iter().enumerate() {
                let column = ColumnId(ci as u16);
                let rebuilt = if cdef.visibility.is_hidden() {
                    let mut scan = self.hidden.key_scan(scope, table, column)?;
                    let mut keys = Vec::with_capacity(rows as usize);
                    while let Some((_, k)) = scan.next_entry()? {
                        keys.push(k);
                    }
                    keys.sort_unstable();
                    let n = keys.len() as u64;
                    let distinct = 1 + keys.windows(2).filter(|w| w[0] != w[1]).count() as u64;
                    let histogram = match cdef.ty {
                        DataType::Integer | DataType::Date => {
                            Some(Histogram::build(keys, STATS_BUCKETS))
                        }
                        // Dictionary codes are ranks, not order keys of
                        // the value domain: no histogram (as at load).
                        DataType::Char(_) => None,
                    };
                    ColumnStats {
                        rows: n,
                        distinct: if n == 0 { 0 } else { distinct },
                        histogram,
                    }
                } else {
                    let values: Vec<Value> = self
                        .pc_link
                        .visible()
                        .fetch_column(table, column, None)?
                        .into_iter()
                        .map(|(_, v)| v)
                        .collect();
                    ColumnStats::build(&values, STATS_BUCKETS)
                };
                if let Some(t) = self.stats.tables.get_mut(ti) {
                    t.rows = rows;
                    if let Some(slot) = t.columns.get_mut(ci) {
                        *slot = Some(rebuilt);
                    }
                }
            }
        }
        Ok(())
    }

    /// Make the current state durable: merge any outstanding deltas,
    /// write a fresh sealed image, and truncate the WAL. The first seal
    /// turns durability on — from then on every insert batch is
    /// write-ahead logged and every delta flush re-seals, so
    /// [`GhostDb::mount`] can rebuild this exact state from the NAND
    /// part alone.
    pub fn seal(&mut self) -> Result<SealReport> {
        if !ghostdb_persist::durability_enabled(&self.config.flash) {
            return Err(GhostError::flash(
                "durability disabled: FlashConfig::{meta_slot_blocks, wal_blocks} must be > 0",
            ));
        }
        let t0 = self.clock.now();
        let merged = self.merge_deltas()?.unwrap_or(0);
        let mut report = self.seal_image(merged)?;
        report.sim_ns = self.clock.now().since(t0);
        self.metrics.seal_pause.observe(report.sim_ns);
        Ok(report)
    }

    /// Write the image for the (already merged) current state, commit
    /// the volume's deferred frees, and truncate the WAL under the new
    /// epoch. Crash-ordering is the heart of the durability argument:
    ///
    /// 1. the image programs into the *older* metadata slot — a cut
    ///    here leaves the previous superblock (and every flash page it
    ///    references, all still intact thanks to deferred frees) the
    ///    newest valid image;
    /// 2. only then do deferred frees erase old segments
    ///    ([`Volume::commit_seal`]) — a cut mid-erase is harmless, the
    ///    new image references none of those pages;
    /// 3. the WAL truncates last — a cut mid-erase leaves stale pages
    ///    whose epoch no longer matches, which replay ignores.
    fn seal_image(&mut self, merged_rows: u64) -> Result<SealReport> {
        let epoch = self.durable.as_ref().map(|d| d.epoch + 1).unwrap_or(1);
        let image = DeviceImage {
            schema: self.schema.as_ref().clone(),
            stats: self.stats.clone(),
            hidden: self.hidden.manifest()?,
            indexes: self.indexes.manifest()?,
            visible: self.pc_link.visible().clone(),
            tombstones: (0..self.schema.table_count())
                .map(|t| self.hidden.liveness(TableId(t as u16)).clone())
                .collect(),
            l2p: self.volume.l2p_snapshot(),
            bad_blocks: self.volume.nand().grown_bad_blocks(),
        };
        let meta_segments = image.metadata_segment_count();
        let l2p_entries = image.l2p.len();
        let image_bytes = ghostdb_persist::write_image(self.volume.nand(), epoch, &image)?;
        self.volume.commit_seal()?;
        let mut wal = match self.durable.take() {
            Some(d) => d.wal,
            None => Wal::new(self.volume.nand().clone(), epoch),
        };
        // Record the durable state before propagating a truncation
        // failure: the epoch-N image *is* on flash at this point, so the
        // instance must keep WAL-logging under epoch N either way (the
        // truncate resets its cursor state before the fallible erases,
        // and appends erase dirty blocks on entry).
        let truncated = wal.truncate(epoch);
        self.durable = Some(DurableState {
            epoch,
            wal,
            image_bytes,
            meta_segments,
            l2p_entries,
        });
        truncated?;
        Ok(SealReport {
            epoch,
            image_bytes,
            merged_rows,
            sim_ns: 0,
        })
    }

    /// The sealed epoch, once durability is on.
    pub fn sealed_epoch(&self) -> Option<u64> {
        self.durable.as_ref().map(|d| d.epoch)
    }

    /// The raw NAND part. Clone the handle before dropping the facade to
    /// model unplugging the key: `GhostDb::mount` rebuilds everything
    /// from it.
    pub fn nand(&self) -> &Nand {
        self.volume.nand()
    }

    /// Un-flushed delta rows across all tables (observability).
    pub fn delta_rows(&self) -> u64 {
        self.hidden.total_delta_rows()
    }

    /// Bind a SELECT statement into an executable [`QuerySpec`].
    pub fn bind(&self, sql: &str) -> Result<QuerySpec> {
        bind_select_spec(&self.schema, &self.tree, sql)
    }

    fn exec_context(&self, pipeline: PipelineMode) -> ExecContext<'_> {
        ExecContext {
            schema: &self.schema,
            tree: &self.tree,
            config: &self.config,
            clock: self.clock.clone(),
            volume: &self.volume,
            ram: &self.ram,
            hidden: &self.hidden,
            indexes: &self.indexes,
            pc: &self.pc_link,
            pipeline,
        }
    }

    /// All candidate plans for a statement, cheapest first (demo phases
    /// 2 and 3).
    pub fn plans(&self, sql: &str) -> Result<Vec<CostedPlan>> {
        let spec = self.bind(sql)?;
        let opt = Optimizer::new(&self.schema, &self.tree, &self.stats, &self.config);
        opt.plans(&spec, |c| self.indexes.has_value_index(c))
    }

    /// The canonical all-Pre-filtering plan ("P1").
    pub fn plan_pre(&self, spec: &QuerySpec) -> Plan {
        ghostdb_exec::plan_all_pre(spec, &self.schema, |c| self.indexes.has_value_index(c))
    }

    /// The canonical Post-filtering plan ("P2", Figure 5).
    pub fn plan_post(&self, spec: &QuerySpec) -> Plan {
        ghostdb_exec::plan_all_post(spec, &self.schema, |c| self.indexes.has_value_index(c))
    }

    /// Execute a statement with the optimizer's best plan.
    ///
    /// With the flight recorder on ([`set_tracing`](Self::set_tracing))
    /// the statement leaves a span tree — parse → bind → plan → execute
    /// with per-operator actuals — retrievable via
    /// [`last_trace`](Self::last_trace). Recorder off costs one relaxed
    /// atomic load.
    pub fn query(&self, sql: &str) -> Result<QueryOutcome> {
        if !self.recorder.is_enabled() {
            let spec = self.bind(sql)?;
            let plan = self.best_plan(&spec)?;
            return self.run(&spec, &plan);
        }
        let stage = StageClock::start();
        let stmts = parse_statements(sql)?;
        let parse_end = stage.now_ns();
        let spec = bind_parsed_select(&self.schema, &self.tree, &stmts)?;
        let bind_end = stage.now_ns();
        let plan = self.best_plan(&spec)?;
        let plan_end = stage.now_ns();
        let out = self.run(&spec, &plan)?;
        self.recorder.record(build_statement_trace(
            stmts.len() as u64,
            parse_end,
            bind_end,
            plan_end,
            stage.now_ns(),
            &plan.label,
            &out.report,
        ));
        Ok(out)
    }

    fn best_plan(&self, spec: &QuerySpec) -> Result<Plan> {
        let opt = Optimizer::new(&self.schema, &self.tree, &self.stats, &self.config);
        opt.best(spec, |c| self.indexes.has_value_index(c))
    }

    /// `EXPLAIN ANALYZE`: run `sql` with the optimizer's best plan, then
    /// render the plan tree annotated with the cost model's estimated
    /// cardinalities next to the measured actuals (rows, simulated time,
    /// blocks pulled, gallops, Bloom probes, liveness drops). The query
    /// really executes — its frames cross the spied bus like any
    /// `SELECT`'s, and the annotations are counts/times/sizes only.
    pub fn explain_analyze(&self, sql: &str) -> Result<String> {
        let spec = self.bind(sql)?;
        let plan = self.best_plan(&spec)?;
        let (tree, _) = self.analyze_with_plan(&spec, &plan)?;
        Ok(render_plan(&plan.label, &tree))
    }

    /// Structured `EXPLAIN ANALYZE` for a caller-chosen plan: the
    /// annotated [`PlanNode`] tree plus the outcome it was measured
    /// from. This is the oracle-facing API — tests recount cardinalities
    /// independently and compare them to the tree's actuals.
    pub fn analyze_with_plan(
        &self,
        spec: &QuerySpec,
        plan: &Plan,
    ) -> Result<(PlanNode, QueryOutcome)> {
        let out = self.run(spec, plan)?;
        let cost = CostModel::new(&self.schema, &self.tree, &self.stats, &self.config);
        let cards = cost.cardinalities(spec, plan);
        let mut tree = plan_nodes(&self.schema, spec, plan, Some(&cards));
        attach_actuals(&mut tree, &out.report);
        Ok((tree, out))
    }

    /// Turn the flight recorder on or off. Off (the default) costs one
    /// relaxed atomic load per statement; on, each `query` records a
    /// span tree over parse → bind → plan → execute.
    pub fn set_tracing(&self, on: bool) {
        self.recorder.set_enabled(on);
    }

    /// The last completed statement trace, if tracing was on for it.
    pub fn last_trace(&self) -> Option<Span> {
        self.recorder.last()
    }

    /// Refresh the point-in-time gauges and snapshot the engine-wide
    /// metrics registry (counters, gauges, histograms from the bus, the
    /// flash volume, and the core).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.refresh_gauges();
        self.registry.snapshot()
    }

    /// Prometheus-style text exposition of [`metrics`](Self::metrics).
    pub fn metrics_text(&self) -> String {
        self.metrics().render_prometheus()
    }

    /// JSON rendering of [`metrics`](Self::metrics).
    pub fn metrics_json(&self) -> String {
        self.metrics().render_json()
    }

    fn refresh_gauges(&self) {
        let usage = self.volume.usage();
        self.metrics.epoch.set(self.epoch as i64);
        self.metrics
            .open_snapshots
            .set(self.sessions.open_snapshots() as i64);
        self.metrics.flash_free_blocks.set(usage.free_blocks as i64);
        self.metrics.flash_live_pages.set(usage.live_pages as i64);
        self.metrics
            .delta_rows
            .set(self.hidden.total_delta_rows() as i64);
    }

    /// Execute a statement with a caller-chosen plan (demo phase 2/3).
    pub fn query_with_plan(&self, sql: &str, plan: &Plan) -> Result<QueryOutcome> {
        let spec = self.bind(sql)?;
        self.run(&spec, plan)
    }

    /// Execute an already-bound spec with a plan.
    pub fn run(&self, spec: &QuerySpec, plan: &Plan) -> Result<QueryOutcome> {
        self.run_with_pipeline(spec, plan, PipelineMode::Blocked)
    }

    /// Execute with the seed's scalar (id-at-a-time) operators instead
    /// of the blocked pipeline. Results and tuple counts must match
    /// [`run`](Self::run) exactly; only simulated timings differ. Kept
    /// public as the equivalence foil for tests and benchmarks.
    ///
    /// Routed through a throwaway [`Snapshot`] so every plan-equivalence
    /// test that compares scalar vs blocked output also exercises the
    /// snapshot read path end to end.
    pub fn run_scalar(&self, spec: &QuerySpec, plan: &Plan) -> Result<QueryOutcome> {
        self.snapshot()?.run_scalar(spec, plan)
    }

    /// Capture an immutable, epoch-stamped [`Snapshot`] of the database:
    /// a cheap deep copy of the bounded RAM deltas plus `Arc`-shared
    /// flash segment manifests, with every base page pinned against
    /// reclamation until the snapshot drops. Snapshots are `Send + Sync`
    /// and own their device-RAM budget, so N reader threads can run
    /// SELECTs in parallel while this handle keeps mutating and
    /// flushing.
    pub fn snapshot(&self) -> Result<Snapshot> {
        Snapshot::capture(self)
    }

    /// The MVCC epoch: bumped by every committed mutation statement and
    /// every delta flush. A [`Snapshot`] carries the epoch it saw.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Open-snapshot count across all threads (observability; also in
    /// [`device_report`](Self::device_report)).
    pub fn open_snapshots(&self) -> usize {
        self.sessions.open_snapshots()
    }

    fn run_with_pipeline(
        &self,
        spec: &QuerySpec,
        plan: &Plan,
        pipeline: PipelineMode,
    ) -> Result<QueryOutcome> {
        // The query text is public: the PC poses it to the device.
        self.bus.transmit(
            Endpoint::Pc,
            Endpoint::Device,
            &Message::Query {
                sql: spec.sql.clone(),
            },
        )?;
        let ctx = self.exec_context(pipeline);
        let (rows, report) = execute(&ctx, spec, plan)?;
        self.metrics.select_latency.observe(report.total_ns);
        // Results exist only sealed on the device...
        let sealed = Sealed::new(rows);
        // ...and are opened by the secure display alone.
        let ticket = self.bus.present(&sealed.peek_on_device().rows);
        let rows = sealed.open(ticket);
        Ok(QueryOutcome { rows, report })
    }

    /// Multi-line explain: the plan list with costs for a statement,
    /// each plan rendered as the same operator tree `EXPLAIN ANALYZE`
    /// prints (annotated with the cost model's estimated cardinalities —
    /// no execution happens here).
    pub fn explain(&self, sql: &str) -> Result<String> {
        let spec = self.bind(sql)?;
        let plans = self.plans(sql)?;
        let cost = CostModel::new(&self.schema, &self.tree, &self.stats, &self.config);
        let mut out = format!("{} candidate plan(s)\n", plans.len());
        for cp in plans.iter().take(8) {
            let cards = cost.cardinalities(&spec, &cp.plan);
            let tree = plan_nodes(&self.schema, &spec, &cp.plan, Some(&cards));
            out.push_str(&format!(
                "-- estimated {}\n{}",
                format_ns(cp.est_ns as u64),
                render_plan(&cp.plan.label, &tree)
            ));
        }
        Ok(out)
    }

    /// Device-side storage report (flash occupancy, index overhead,
    /// durability state, and per-region wear), built over the same
    /// metrics registry the Prometheus/JSON expositions read: the flash
    /// occupancy gauges and the reliability counters come from
    /// [`metrics`](Self::metrics), so the report and a scrape can never
    /// disagree.
    pub fn device_report(&self) -> String {
        let snap = self.metrics();
        let usage = self.volume.usage();
        let durability = match &self.durable {
            None => "unsealed (volatile until the first seal())".to_string(),
            Some(d) => format!(
                "sealed epoch {}, image {} B across {} metadata segment(s), \
                 l2p {} entries, WAL {} B in {} record(s)",
                d.epoch,
                d.image_bytes,
                d.meta_segments,
                d.l2p_entries,
                d.wal.bytes(),
                d.wal.records(),
            ),
        };
        let rel = self.volume.reliability();
        let reliability = format!(
            "{} corrected read(s), {} uncorrectable, {} of {} spare block(s) used, \
             {} page(s) scrubbed, {} GC migration(s)",
            snap.counter("ghostdb_ecc_corrected_total"),
            snap.counter("ghostdb_ecc_uncorrectable_total"),
            rel.retired_blocks,
            rel.spare_blocks,
            rel.scrubbed_pages,
            snap.counter("ghostdb_gc_migrations_total"),
        );
        let cache = self.volume.page_cache_stats();
        let cache_line = if cache.capacity_pages == 0 {
            "disabled".to_string()
        } else {
            format!(
                "{}/{} page(s) resident ({} B charged to device RAM), \
                 {} hit(s), {} miss(es), {} eviction(s)",
                cache.resident_pages,
                cache.capacity_pages,
                cache.charged_bytes,
                snap.counter("ghostdb_page_cache_hits_total"),
                snap.counter("ghostdb_page_cache_misses_total"),
                snap.counter("ghostdb_page_cache_evictions_total"),
            )
        };
        let pins = self.volume.pin_stats();
        let sessions = format!(
            "epoch {}, {}; {} page(s) pinned by snapshots ({} free(s) deferred), \
             {} sealed-image pin(s) ({} free(s) deferred)",
            self.epoch,
            self.sessions.describe(),
            pins.snapshot_pinned,
            pins.snapshot_deferred,
            pins.sealed_pinned,
            pins.sealed_deferred,
        );
        format!(
            "flash: {}/{} blocks free, {} live pages; page cache: {}; indexes: {}; \
             durability: {}; sessions: {}; reliability: {}; wear: {}",
            snap.gauge("ghostdb_flash_free_blocks"),
            usage.total_blocks,
            snap.gauge("ghostdb_flash_live_pages"),
            cache_line,
            self.indexes.describe(),
            durability,
            sessions,
            reliability,
            self.wear_report(),
        )
    }

    /// Per-region erase-wear summary over [`Nand::wear_snapshot`]: the
    /// fixed metadata slots and WAL blocks wear independently of the
    /// GC-leveled volume — every seal erases the same slot blocks and
    /// every truncation the same WAL blocks, so their wear is
    /// **unbounded by design** (the ROADMAP caveat; slot rotation stays
    /// future work). Surfacing the split here is what lets an operator
    /// see that budget being spent.
    pub fn wear_report(&self) -> String {
        let wear = self.volume.nand().wear_snapshot();
        let cfg = &self.config.flash;
        let seg = |range: std::ops::Range<usize>| -> String {
            let s = &wear[range];
            if s.is_empty() {
                return "n/a".to_string();
            }
            let max = s.iter().max().copied().unwrap_or(0);
            let avg = s.iter().map(|&w| w as u64).sum::<u64>() as f64 / s.len() as f64;
            format!("max {max} avg {avg:.1}")
        };
        let meta = 2 * cfg.meta_slot_blocks;
        let reserved = cfg.reserved_blocks();
        if reserved == 0 {
            return format!("volume {}", seg(0..wear.len()));
        }
        format!(
            "meta slots {} | WAL {} | volume {} (fixed-slot seal wear is \
             unbounded by design — no rotation)",
            seg(0..meta),
            seg(meta..reserved),
            seg(reserved..wear.len()),
        )
    }
}

/// Bind a SELECT statement against a schema + tree — shared by
/// [`GhostDb::bind`] and [`Snapshot::bind`].
pub(crate) fn bind_select_spec(schema: &Schema, tree: &TreeSchema, sql: &str) -> Result<QuerySpec> {
    let stmts = parse_statements(sql)?;
    bind_parsed_select(schema, tree, &stmts)
}

/// The bind half of [`bind_select_spec`], over already-parsed
/// statements — the traced query path times parse and bind separately.
pub(crate) fn bind_parsed_select(
    schema: &Schema,
    tree: &TreeSchema,
    stmts: &[Statement],
) -> Result<QuerySpec> {
    let sel = stmts
        .iter()
        .find_map(|s| match s {
            Statement::Select(sel) | Statement::ExplainAnalyze(sel) => Some(sel),
            _ => None,
        })
        .ok_or_else(|| GhostError::sql("expected a SELECT statement"))?;
    let bound = bind_select(schema, tree, sel)?;
    QuerySpec::bind(
        schema,
        tree,
        bound.sql,
        bound.tables,
        bound.projections,
        bound.predicates,
        bound.joins,
    )?
    .with_analytics(schema, &bound.analytics)
}

/// A decoded WAL record: one committed mutation batch. All three kinds
/// replay batch-atomically through the same validated paths live
/// traffic takes; delete/update records carry **logical** row ids, which
/// are stable across the flushes a replay may interleave with. Insert
/// and update records hold hidden values — they live on the device's
/// NAND only and never cross the bus.
enum WalRecord {
    /// An insert batch (tag 0).
    Insert(TableId, Vec<Vec<Value>>),
    /// A delete batch (tag 1): logical row ids.
    Delete(TableId, Vec<RowId>),
    /// An update batch (tag 2): logical row ids + assignments.
    Update(TableId, Vec<RowId>, Vec<(ColumnId, Value)>),
}

/// Encode one insert batch as a WAL record.
fn encode_insert_record(table: TableId, rows: &[Vec<Value>]) -> Vec<u8> {
    let mut out = vec![0u8];
    table.encode(&mut out);
    (rows.len() as u32).encode(&mut out);
    for row in rows {
        row.encode(&mut out);
    }
    out
}

/// Encode one delete batch as a WAL record.
fn encode_delete_record(table: TableId, rows: &[RowId]) -> Vec<u8> {
    let mut out = vec![1u8];
    table.encode(&mut out);
    rows.to_vec().encode(&mut out);
    out
}

/// Encode one update batch as a WAL record.
fn encode_update_record(
    table: TableId,
    rows: &[RowId],
    assignments: &[(ColumnId, Value)],
) -> Vec<u8> {
    let mut out = vec![2u8];
    table.encode(&mut out);
    rows.to_vec().encode(&mut out);
    assignments.to_vec().encode(&mut out);
    out
}

/// Decode one WAL record back into its mutation batch.
fn decode_wal_record(bytes: &[u8]) -> Result<WalRecord> {
    let Some((&tag, mut buf)) = bytes.split_first() else {
        return Err(GhostError::corrupt("empty WAL record"));
    };
    let buf = &mut buf;
    let rec = match tag {
        0 => {
            let table = TableId::decode(buf)?;
            let n = u32::decode(buf)?;
            let mut rows = Vec::with_capacity(n as usize);
            for _ in 0..n {
                rows.push(Vec::<Value>::decode(buf)?);
            }
            WalRecord::Insert(table, rows)
        }
        1 => WalRecord::Delete(TableId::decode(buf)?, Vec::<RowId>::decode(buf)?),
        2 => WalRecord::Update(
            TableId::decode(buf)?,
            Vec::<RowId>::decode(buf)?,
            Vec::<(ColumnId, Value)>::decode(buf)?,
        ),
        t => return Err(GhostError::corrupt(format!("WAL record tag {t}"))),
    };
    if !buf.is_empty() {
        return Err(GhostError::corrupt("trailing bytes in WAL record"));
    }
    Ok(rec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_types::{RowId, TableId};

    const DDL: &str = "\
        CREATE TABLE Doctor ( \
          DocID INTEGER PRIMARY KEY, \
          Name CHAR(40), \
          Country CHAR(20)); \
        CREATE TABLE Visit ( \
          VisID INTEGER PRIMARY KEY, \
          Severity INTEGER, \
          Purpose CHAR(100) HIDDEN, \
          DocID REFERENCES Doctor(DocID) HIDDEN);";

    fn tiny() -> GhostDb {
        let stmts = parse_statements(DDL).unwrap();
        let schema = bind_schema(&stmts).unwrap();
        let mut data = Dataset::empty(&schema);
        let countries = ["France", "Spain"];
        for i in 0..4i64 {
            data.push_row(
                TableId(0),
                vec![
                    Value::Int(i),
                    Value::Text(format!("doc{i}")),
                    Value::Text(countries[(i % 2) as usize].into()),
                ],
            )
            .unwrap();
        }
        let purposes = ["Checkup", "Sclerosis"];
        for i in 0..16i64 {
            data.push_row(
                TableId(1),
                vec![
                    Value::Int(i),
                    Value::Int(i % 8),
                    Value::Text(purposes[(i % 2) as usize].into()),
                    Value::Int(i % 4),
                ],
            )
            .unwrap();
        }
        // Shrink flash for test speed.
        let mut config = DeviceConfig::default_2007();
        config.flash.page_size = 256;
        config.flash.pages_per_block = 8;
        config.flash.num_blocks = 2048;
        GhostDb::create(DDL, config, &data).unwrap()
    }

    #[test]
    fn end_to_end_query_best_plan() {
        let db = tiny();
        let out = db
            .query(
                "SELECT Vis.VisID, Doc.Name FROM Visit Vis, Doctor Doc \
                 WHERE Vis.Purpose = 'Sclerosis' \
                   AND Vis.Severity >= 4 \
                   AND Vis.DocID = Doc.DocID",
            )
            .unwrap();
        // Sclerosis = odd visits; severity >= 4 → i%8 in 4..8 → i in
        // {5,7,13,15}.
        let ids: Vec<i64> = out
            .rows
            .rows
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        assert_eq!(ids, vec![5, 7, 13, 15]);
        // Doctor names joined through the hidden fk: doc (i%4).
        assert_eq!(out.rows.rows[0][1], Value::Text("doc1".into()));
        assert!(out.report.total_ns > 0);
    }

    #[test]
    fn all_plans_agree() {
        let db = tiny();
        let sql = "SELECT Vis.VisID FROM Visit Vis, Doctor Doc \
                   WHERE Doc.Country = 'Spain' \
                     AND Vis.Purpose = 'Checkup' \
                     AND Vis.DocID = Doc.DocID";
        let plans = db.plans(sql).unwrap();
        assert!(plans.len() >= 3);
        let mut results: Vec<Vec<Vec<Value>>> = Vec::new();
        for cp in &plans {
            let out = db.query_with_plan(sql, &cp.plan).unwrap();
            results.push(out.rows.rows.clone());
        }
        for r in &results[1..] {
            assert_eq!(r, &results[0], "plans disagree");
        }
        // Sanity: Spain doctors {1,3}; visits with docid in {1,3} and
        // even index: i%4 in {1,3} and i even → i in {} ... check via
        // reference: docid = i%4; purpose even i → Checkup. i even with
        // i%4 ∈ {1,3} impossible, so empty.
        assert!(results[0].is_empty());
    }

    #[test]
    fn hidden_values_never_cross_the_bus() {
        let db = tiny();
        db.clear_trace();
        let out = db
            .query(
                "SELECT Vis.Purpose FROM Visit Vis \
                 WHERE Vis.Severity = 3",
            )
            .unwrap();
        assert_eq!(out.rows.rows.len(), 2); // i%8==3 → {3, 11}
        assert_eq!(out.rows.rows[0][0], Value::Text("Sclerosis".into()));
        // The hidden value appears in results (secure display) but never
        // in the spy trace.
        assert!(!db.spy_sees_value(&Value::Text("Sclerosis".into())));
        assert!(!db.spy_sees_value(&Value::Text("Checkup".into())));
        // Visible traffic does appear.
        assert!(db.trace().spy_bytes() > 0);
    }

    #[test]
    fn explain_lists_costed_plans() {
        let db = tiny();
        let text = db
            .explain("SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Checkup'")
            .unwrap();
        assert!(text.contains("candidate plan"));
        assert!(text.contains("estimated"));
        // The plan tree carries the cost model's cardinality estimates.
        assert!(text.contains("est rows="));
    }

    #[test]
    fn explain_analyze_runs_and_annotates() {
        let mut db = tiny();
        let out = db
            .execute("EXPLAIN ANALYZE SELECT Vis.VisID FROM Visit Vis WHERE Vis.Severity >= 4;")
            .unwrap();
        let [ExecOutcome::Explain(text)] = &out[..] else {
            panic!("expected one Explain outcome, got {out:?}");
        };
        assert!(text.contains("plan "), "{text}");
        assert!(text.contains("est rows="), "{text}");
        assert!(text.contains("actual rows="), "{text}");
        assert!(text.contains("project"), "{text}");
        // The project node's actual row count equals the query's result.
        let rows = db
            .query("SELECT Vis.VisID FROM Visit Vis WHERE Vis.Severity >= 4")
            .unwrap()
            .rows
            .len();
        assert!(text.contains(&format!("actual rows={rows}")), "{text}");
    }

    #[test]
    fn flight_recorder_captures_statement_spans() {
        let db = tiny();
        assert!(db.last_trace().is_none());
        db.query("SELECT Vis.VisID FROM Visit Vis WHERE Vis.Severity = 3")
            .unwrap();
        assert!(
            db.last_trace().is_none(),
            "recorder off must record nothing"
        );
        db.set_tracing(true);
        let out = db
            .query("SELECT Vis.VisID FROM Visit Vis WHERE Vis.Severity = 3")
            .unwrap();
        let trace = db.last_trace().expect("trace recorded");
        assert_eq!(trace.name, "statement");
        for phase in ["parse", "bind", "plan", "execute"] {
            assert!(trace.find(phase).is_some(), "missing {phase} span");
        }
        let exec = trace.find("execute").unwrap();
        assert_eq!(exec.attr("rows"), Some(out.report.result_rows));
        assert_eq!(exec.attr("sim_ns"), Some(out.report.total_ns));
        // Per-operator spans ride under execute, with their actuals.
        assert!(exec.children.iter().any(|c| c.name == "project"));
        db.set_tracing(false);
        db.recorder.clear();
    }

    #[test]
    fn metrics_snapshot_counts_statements_and_bus() {
        let mut db = tiny();
        db.query("SELECT Vis.VisID FROM Visit Vis WHERE Vis.Severity = 3")
            .unwrap();
        db.execute("INSERT INTO Doctor VALUES (4, 'doc4', 'Japan')")
            .unwrap();
        let snap = db.metrics();
        let lat = |kind: &str| match snap
            .get(&format!("ghostdb_statement_latency_ns{{kind=\"{kind}\"}}"))
            .expect("latency histogram registered")
        {
            ghostdb_obs::MetricValue::Histogram(h) => h.count,
            other => panic!("expected histogram, got {other:?}"),
        };
        assert_eq!(lat("select"), 1);
        assert_eq!(lat("insert"), 1);
        assert_eq!(lat("delete"), 0);
        // Bus frames were counted by kind, and the gauges are live.
        assert!(snap.counter("ghostdb_bus_frames_total{kind=\"Query\"}") >= 1);
        assert!(snap.counter("ghostdb_bus_bytes_total{kind=\"Query\"}") > 0);
        assert_eq!(snap.gauge("ghostdb_epoch"), db.epoch() as i64);
        assert!(snap.gauge("ghostdb_delta_rows") > 0);
        // Both renderings expose the same registry.
        let text = db.metrics_text();
        assert!(text.contains("ghostdb_statement_latency_ns_bucket"));
        assert!(text.contains("ghostdb_bus_frames_total"));
        assert!(db.metrics_json().contains("ghostdb_wal_appends_total"));
    }

    #[test]
    fn snapshot_mirrors_tracing_and_explain_analyze() {
        let db = tiny();
        let snap = db.snapshot().unwrap();
        let text = snap
            .explain_analyze("SELECT Vis.VisID FROM Visit Vis WHERE Vis.Severity >= 4")
            .unwrap();
        assert!(text.contains("actual rows="), "{text}");
        db.set_tracing(true);
        snap.query("SELECT Vis.VisID FROM Visit Vis WHERE Vis.Severity = 3")
            .unwrap();
        // The snapshot records into the engine's shared slot.
        assert!(db.last_trace().is_some());
        assert_eq!(snap.last_trace().unwrap().name, "statement");
    }

    #[test]
    fn canonical_p1_p2_run() {
        let db = tiny();
        let sql = "SELECT Vis.VisID FROM Visit Vis, Doctor Doc \
                   WHERE Doc.Country = 'France' \
                     AND Vis.Purpose = 'Sclerosis' \
                     AND Vis.DocID = Doc.DocID";
        let spec = db.bind(sql).unwrap();
        let p1 = db.plan_pre(&spec);
        let p2 = db.plan_post(&spec);
        let r1 = db.run(&spec, &p1).unwrap();
        let r2 = db.run(&spec, &p2).unwrap();
        assert_eq!(r1.rows.rows, r2.rows.rows);
        // France doctors {0,2}; odd visits (Sclerosis) with docid even:
        // i odd, i%4 ∈ {0,2} → impossible → empty? i%4 for odd i is 1 or
        // 3. So empty.
        assert!(r1.rows.rows.is_empty());
    }

    #[test]
    fn device_report_mentions_indexes() {
        let db = tiny();
        let rep = db.device_report();
        assert!(rep.contains("SKT"));
        let _ = db.trace().events();
    }

    /// The acceptance shape in miniature: inserts then query ==
    /// fresh-load query, before and after a forced flush, both
    /// pipelines.
    #[test]
    fn post_load_inserts_match_fresh_load() {
        let mut db = tiny();
        // New doctor 4, new visits 16..20 (some referencing doctor 4,
        // one carrying a string outside the base dictionary).
        db.execute("INSERT INTO Doctor VALUES (4, 'doc4', 'Japan')")
            .unwrap();
        db.execute(
            "INSERT INTO Visit VALUES (16, 7, 'Sclerosis', 4), \
             (17, 4, 'Migraine', 4), (18, 5, 'Sclerosis', 1), (19, 9, 'Migraine', 2)",
        )
        .unwrap();
        assert!(db.delta_rows() > 0);

        // The same content loaded fresh.
        let stmts = parse_statements(DDL).unwrap();
        let schema = bind_schema(&stmts).unwrap();
        let mut data = Dataset::empty(&schema);
        let countries = ["France", "Spain"];
        for i in 0..4i64 {
            data.push_row(
                TableId(0),
                vec![
                    Value::Int(i),
                    Value::Text(format!("doc{i}")),
                    Value::Text(countries[(i % 2) as usize].into()),
                ],
            )
            .unwrap();
        }
        data.push_row(
            TableId(0),
            vec![
                Value::Int(4),
                Value::Text("doc4".into()),
                Value::Text("Japan".into()),
            ],
        )
        .unwrap();
        let purposes = ["Checkup", "Sclerosis"];
        for i in 0..16i64 {
            data.push_row(
                TableId(1),
                vec![
                    Value::Int(i),
                    Value::Int(i % 8),
                    Value::Text(purposes[(i % 2) as usize].into()),
                    Value::Int(i % 4),
                ],
            )
            .unwrap();
        }
        for (vid, sev, purpose, doc) in [
            (16i64, 7i64, "Sclerosis", 4i64),
            (17, 4, "Migraine", 4),
            (18, 5, "Sclerosis", 1),
            (19, 9, "Migraine", 2),
        ] {
            data.push_row(
                TableId(1),
                vec![
                    Value::Int(vid),
                    Value::Int(sev),
                    Value::Text(purpose.into()),
                    Value::Int(doc),
                ],
            )
            .unwrap();
        }
        let mut config = DeviceConfig::default_2007();
        config.flash.page_size = 256;
        config.flash.pages_per_block = 8;
        config.flash.num_blocks = 2048;
        let fresh = GhostDb::create(DDL, config, &data).unwrap();

        let queries = [
            "SELECT Vis.VisID, Doc.Name FROM Visit Vis, Doctor Doc \
             WHERE Vis.Purpose = 'Sclerosis' AND Vis.DocID = Doc.DocID",
            "SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Migraine'",
            "SELECT Vis.VisID, Vis.Purpose FROM Visit Vis, Doctor Doc \
             WHERE Doc.Country = 'Japan' AND Vis.Severity >= 4 \
               AND Vis.DocID = Doc.DocID",
        ];
        let check = |db: &GhostDb, phase: &str| {
            for sql in &queries {
                let expect = fresh.query(sql).unwrap().rows.rows;
                let spec = db.bind(sql).unwrap();
                for cp in db.plans(sql).unwrap() {
                    let got = db.run(&spec, &cp.plan).unwrap();
                    assert_eq!(got.rows.rows, expect, "{phase}/blocked: {sql}");
                    let got = db.run_scalar(&spec, &cp.plan).unwrap();
                    assert_eq!(got.rows.rows, expect, "{phase}/scalar: {sql}");
                }
            }
        };
        check(&db, "unflushed");
        let merged = db.flush_deltas().unwrap();
        assert_eq!(merged, 5);
        assert_eq!(db.delta_rows(), 0);
        check(&db, "flushed");
    }

    /// DELETE/UPDATE in miniature: tombstone-resident results equal the
    /// compacted ones, primary keys renumber like `Vec::remove`, and
    /// RESTRICT protects referenced rows.
    #[test]
    fn delete_update_roundtrip() {
        let mut db = tiny();
        // Visits with Severity = 0 are {0, 8}.
        let out = db.execute("DELETE FROM Visit WHERE Severity = 0").unwrap();
        let ExecOutcome::Delete(rep) = &out[0] else {
            panic!("not a delete outcome")
        };
        assert_eq!(rep.rows, 2);
        assert_eq!(db.stats().rows(TableId(1)), 14);

        // Rows are gone; surviving PKs renumber dense (old 1 → 0, ...).
        let out = db
            .query("SELECT Vis.VisID, Vis.Purpose FROM Visit Vis WHERE Vis.Severity <= 1")
            .unwrap();
        // Survivors with severity <= 1: old visits {1, 9} → logical {0, 7}.
        assert_eq!(
            out.rows.rows,
            vec![
                vec![Value::Int(0), Value::Text("Sclerosis".into())],
                vec![Value::Int(7), Value::Text("Sclerosis".into())],
            ]
        );

        // UPDATE rewrites hidden values, including fresh dict strings.
        let out = db
            .execute("UPDATE Visit SET Purpose = 'Recovered' WHERE Severity >= 6")
            .unwrap();
        let ExecOutcome::Update(rep) = &out[0] else {
            panic!("not an update outcome")
        };
        assert_eq!(rep.rows, 4); // old visits {6,7,14,15}
        let recovered = db
            .query("SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Recovered'")
            .unwrap();
        assert_eq!(recovered.rows.rows.len(), 4);

        // RESTRICT: every doctor still has live visits.
        let err = db
            .execute("DELETE FROM Doctor WHERE Name = 'doc0'")
            .unwrap_err();
        assert!(err.to_string().contains("restricted"), "{err}");

        // The physical compaction changes nothing observable.
        let before = db
            .query("SELECT Vis.VisID, Vis.Purpose, Vis.Severity FROM Visit Vis WHERE Vis.Severity >= 0")
            .unwrap()
            .rows
            .rows;
        assert!(db.delta_rows() == 0);
        db.flush_deltas().unwrap();
        let after = db
            .query("SELECT Vis.VisID, Vis.Purpose, Vis.Severity FROM Visit Vis WHERE Vis.Severity >= 0")
            .unwrap()
            .rows
            .rows;
        assert_eq!(before, after, "flush-time compaction must be invisible");
        assert_eq!(after.len(), 14);

        // Now unreferenced: delete a doctor after its visits are gone.
        db.execute("DELETE FROM Visit WHERE DocID = 2").unwrap();
        db.execute("DELETE FROM Doctor WHERE DocID = 2").unwrap();
        assert_eq!(db.stats().rows(TableId(0)), 3);
        // FK values renumber with the referenced table: doctor 3 is now
        // logical 2.
        let out = db
            .query("SELECT Vis.DocID FROM Visit Vis WHERE Vis.Severity = 3")
            .unwrap();
        assert_eq!(
            out.rows.rows,
            vec![vec![Value::Int(2)], vec![Value::Int(2)]]
        );

        // Inserts after deletes: logical PK = live count.
        db.execute("INSERT INTO Doctor VALUES (3, 'docN', 'Japan')")
            .unwrap();
        let out = db
            .query("SELECT Doc.DocID FROM Doctor Doc WHERE Doc.Country = 'Japan'")
            .unwrap();
        assert_eq!(out.rows.rows, vec![vec![Value::Int(3)]]);
    }

    /// Mutation bus protocol: deletes/updates announce identities and
    /// visible halves only, and the report mentions wear + mutations.
    #[test]
    fn mutation_bus_frames_and_report() {
        let mut db = tiny();
        db.clear_trace();
        db.execute("DELETE FROM Visit WHERE Severity = 7").unwrap();
        db.execute("UPDATE Visit SET Severity = 1 WHERE Severity = 6")
            .unwrap();
        let kinds: Vec<String> = db
            .trace()
            .spy_frames()
            .iter()
            .map(|e| e.kind.to_string())
            .collect();
        assert!(kinds.iter().any(|k| k == "DeleteRows"), "{kinds:?}");
        assert!(kinds.iter().any(|k| k == "UpdateVisible"), "{kinds:?}");
        db.clear_trace();
        db.flush_deltas().unwrap();
        let kinds: Vec<String> = db
            .trace()
            .spy_frames()
            .iter()
            .map(|e| e.kind.to_string())
            .collect();
        assert!(kinds.iter().any(|k| k == "CompactRows"), "{kinds:?}");
        let report = db.device_report();
        assert!(report.contains("wear:"), "{report}");
        assert!(report.contains("unbounded"), "{report}");
    }

    #[test]
    fn insert_validation_rejects_bad_rows() {
        let mut db = tiny();
        // Sparse primary key.
        assert!(db
            .execute("INSERT INTO Visit VALUES (99, 1, 'Checkup', 0)")
            .is_err());
        // Foreign key out of range.
        assert!(db
            .execute("INSERT INTO Visit VALUES (16, 1, 'Checkup', 9)")
            .is_err());
        // Type mismatch.
        assert!(db
            .execute("INSERT INTO Visit VALUES (16, 'high', 'Checkup', 0)")
            .is_err());
        // CHAR capacity: Doctor.Country is CHAR(20).
        assert!(db
            .execute(&format!(
                "INSERT INTO Doctor VALUES (4, 'd', '{}')",
                "x".repeat(30)
            ))
            .is_err());
        // Multi-row statements are atomic: a bad later row means no row
        // of the batch is applied.
        assert!(db
            .execute("INSERT INTO Visit VALUES (16, 1, 'Checkup', 0), (16, 2, 'Checkup', 0)")
            .is_err());
        // Failed statements leave no delta behind.
        assert_eq!(db.delta_rows(), 0);
        // And the DDL path stays closed post-load.
        assert!(db
            .execute("CREATE TABLE T (id INTEGER PRIMARY KEY)")
            .is_err());
    }

    #[test]
    fn automatic_flush_trips_at_threshold() {
        let stmts = parse_statements(DDL).unwrap();
        let schema = bind_schema(&stmts).unwrap();
        let mut data = Dataset::empty(&schema);
        data.push_row(
            TableId(0),
            vec![
                Value::Int(0),
                Value::Text("doc0".into()),
                Value::Text("France".into()),
            ],
        )
        .unwrap();
        let mut config = DeviceConfig::default_2007();
        config.flash.page_size = 256;
        config.flash.pages_per_block = 8;
        config.flash.num_blocks = 2048;
        config.delta_flush_rows = 3;
        let mut db = GhostDb::create(DDL, config, &data).unwrap();
        let r = db
            .insert_rows(
                TableId(1),
                vec![
                    vec![
                        Value::Int(0),
                        Value::Int(1),
                        Value::Text("Checkup".into()),
                        Value::Int(0),
                    ],
                    vec![
                        Value::Int(1),
                        Value::Int(2),
                        Value::Text("Checkup".into()),
                        Value::Int(0),
                    ],
                ],
            )
            .unwrap();
        assert!(!r.flushed);
        assert_eq!(db.delta_rows(), 2);
        let r = db
            .insert_rows(
                TableId(1),
                vec![vec![
                    Value::Int(2),
                    Value::Int(3),
                    Value::Text("Checkup".into()),
                    Value::Int(0),
                ]],
            )
            .unwrap();
        assert!(r.flushed, "threshold of 3 delta rows must trip the flush");
        assert_eq!(db.delta_rows(), 0);
        let out = db
            .query("SELECT Vis.VisID FROM Visit Vis WHERE Vis.Severity >= 2")
            .unwrap();
        assert_eq!(out.rows.rows.len(), 2);
    }

    /// The delta flush rebuilds per-column statistics: range estimates
    /// must track merged inserts instead of staying frozen at load time.
    #[test]
    fn flush_rebuilds_histograms() {
        let mut db = tiny();
        // Base severities are 0..8; insert 32 visits far above that
        // range, so a stale load-time histogram would estimate ~0
        // selectivity for `Severity > 50`.
        let rows: Vec<Vec<Value>> = (16..48i64)
            .map(|i| {
                vec![
                    Value::Int(i),
                    Value::Int(100 + i),
                    Value::Text("Checkup".into()),
                    Value::Int(i % 4),
                ]
            })
            .collect();
        db.insert_rows(TableId(1), rows).unwrap();
        db.flush_deltas().unwrap();

        let sev = ghostdb_catalog::ColumnRef {
            table: TableId(1),
            column: ColumnId(1),
        };
        let stats = db.stats().column(sev).expect("severity stats");
        assert_eq!(stats.rows, 48);
        let sel = stats.selectivity(ghostdb_types::ScalarOp::Gt, &Value::Int(50));
        let truth = 32.0 / 48.0;
        assert!(
            (sel - truth).abs() < 0.15,
            "rebuilt histogram estimates {sel:.2}, truth {truth:.2}"
        );
        // Hidden fixed column (the DocID fk) rebuilt too: distinct
        // tracks the merged key set exactly.
        let fk = ghostdb_catalog::ColumnRef {
            table: TableId(1),
            column: ColumnId(3),
        };
        let fk_stats = db.stats().column(fk).expect("fk stats");
        assert_eq!(fk_stats.rows, 48);
        assert_eq!(fk_stats.distinct, 4);
    }

    /// Seal, insert (WAL-only), "unplug", and remount from the NAND
    /// alone: the replayed deltas and the sealed base must answer
    /// queries exactly like the live instance did.
    #[test]
    fn seal_mount_roundtrip_with_wal_replay() {
        let mut db = tiny();
        let report = db.seal().unwrap();
        assert_eq!(report.epoch, 1);
        assert!(report.image_bytes > 0);
        db.execute("INSERT INTO Doctor VALUES (4, 'doc4', 'Japan')")
            .unwrap();
        db.execute("INSERT INTO Visit VALUES (16, 7, 'Sclerosis', 4)")
            .unwrap();
        assert_eq!(db.delta_rows(), 2);
        let sql = "SELECT Vis.VisID, Doc.Name FROM Visit Vis, Doctor Doc \
                   WHERE Vis.Purpose = 'Sclerosis' AND Vis.DocID = Doc.DocID";
        let live = db.query(sql).unwrap().rows.rows;
        let report = db.device_report();
        assert!(report.contains("sealed epoch 1"), "{report}");

        // Unplug the key.
        let nand = db.nand().clone();
        let config = db.config().clone();
        drop(db);

        let db2 = GhostDb::mount(nand, config).unwrap();
        assert_eq!(db2.sealed_epoch(), Some(1));
        assert_eq!(db2.delta_rows(), 2, "WAL batches replay into the delta");
        assert_eq!(db2.query(sql).unwrap().rows.rows, live);
        assert_eq!(db2.stats().rows(TableId(1)), 17);
    }

    /// A WAL that fills up forces a delta flush (which re-seals and
    /// truncates) and the append retries — inserts never fail just
    /// because the log region is small.
    #[test]
    fn wal_full_triggers_flush_and_retry() {
        let stmts = parse_statements(DDL).unwrap();
        let schema = bind_schema(&stmts).unwrap();
        let mut data = Dataset::empty(&schema);
        data.push_row(
            TableId(0),
            vec![
                Value::Int(0),
                Value::Text("doc0".into()),
                Value::Text("France".into()),
            ],
        )
        .unwrap();
        let mut config = DeviceConfig::default_2007().with_delta_flush_rows(0);
        config.flash.page_size = 256;
        config.flash.pages_per_block = 8;
        config.flash.num_blocks = 2048;
        config.flash.wal_blocks = 1; // 8 pages: fills after a few batches
        let mut db = GhostDb::create(DDL, config, &data).unwrap();
        db.seal().unwrap();
        for i in 0..24i64 {
            db.insert_rows(
                TableId(1),
                vec![vec![
                    Value::Int(i),
                    Value::Int(i % 5),
                    Value::Text("Checkup".into()),
                    Value::Int(0),
                ]],
            )
            .unwrap();
        }
        assert!(
            db.sealed_epoch().unwrap() > 1,
            "forced flushes must have re-sealed"
        );
        // Everything survives a power cycle.
        let nand = db.nand().clone();
        let config = db.config().clone();
        drop(db);
        let db = GhostDb::mount(nand, config).unwrap();
        let out = db
            .query("SELECT Vis.VisID FROM Visit Vis WHERE Vis.Severity >= 0")
            .unwrap();
        assert_eq!(out.rows.rows.len(), 24);
    }

    /// A flush on a sealed instance re-seals (new epoch) and truncates
    /// the WAL; the remount then needs no replay.
    #[test]
    fn flush_reseals_and_truncates_wal() {
        let mut db = tiny();
        db.seal().unwrap();
        db.execute("INSERT INTO Visit VALUES (16, 7, 'Sclerosis', 1)")
            .unwrap();
        assert!(db.flush_deltas().unwrap() > 0);
        assert_eq!(db.sealed_epoch(), Some(2));
        let nand = db.nand().clone();
        let config = db.config().clone();
        drop(db);
        let db2 = GhostDb::mount(nand, config).unwrap();
        assert_eq!(db2.sealed_epoch(), Some(2));
        assert_eq!(db2.delta_rows(), 0, "nothing left to replay");
        let out = db2
            .query("SELECT Vis.VisID FROM Visit Vis WHERE Vis.Severity = 7")
            .unwrap();
        assert_eq!(out.rows.rows.len(), 3); // visits 7, 15, 16
    }

    #[test]
    fn projection_of_fk_and_pk_columns() {
        let db = tiny();
        let out = db
            .query(
                "SELECT Vis.DocID, Vis.VisID FROM Visit Vis \
                 WHERE Vis.Severity = 0",
            )
            .unwrap();
        // Visits {0, 8}: docid i%4 -> {0, 0}.
        assert_eq!(
            out.rows.rows,
            vec![
                vec![Value::Int(0), Value::Int(0)],
                vec![Value::Int(0), Value::Int(8)],
            ]
        );
        let _ = RowId(0);
    }
}
