//! The GhostDB facade: a complete instance of the paper's Figure 1.
//!
//! [`GhostDb`] wires together the three parties:
//!
//! * the **untrusted PC / public server** (a `VisibleStore` behind the
//!   [`BusPcLink`]) holding the visible columns,
//! * the **smart USB device** (flash volume + RAM budget + hidden store +
//!   indexes + executor),
//! * the **secure display** behind the bus's `present` path.
//!
//! Everything that crosses the PC ↔ device boundary moves through the
//! simulated bus and lands in the spy trace; query results leave only
//! through the secure display. The facade exposes the demo's three
//! phases: run queries (`query`), inspect and hand-build plans
//! (`plans`, `query_with_plan`, `explain`), and audit the spy's view
//! (`spy_report`, `spy_sees_value`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod link;

pub use link::BusPcLink;

use ghostdb_bus::{Bus, BusTrace, Endpoint, Message};
use ghostdb_catalog::{Schema, SchemaStats, TreeSchema};
use ghostdb_exec::{
    execute, CostedPlan, ExecContext, ExecReport, Optimizer, PipelineMode, Plan, QuerySpec,
    ResultSet,
};
use ghostdb_flash::{Nand, Volume};
use ghostdb_index::IndexSet;
use ghostdb_ram::{RamBudget, RamScope};
use ghostdb_sql::{bind_schema, bind_select, parse_statements, Statement};
use ghostdb_storage::{split_dataset, Dataset, HiddenStore};
use ghostdb_types::{format_ns, DeviceConfig, GhostError, Result, Sealed, SimClock, Value};

/// Summary of the secure bulk load.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Rows loaded per table (in table-id order).
    pub rows: Vec<u64>,
    /// Flash bytes used by hidden columns + replicated keys.
    pub store_flash_bytes: u64,
    /// Flash bytes used by SKTs and climbing indexes (the paper's "extra
    /// cost in terms of Flash storage").
    pub index_flash_bytes: u64,
    /// Simulated time spent programming flash during the load.
    pub sim_ns: u64,
}

/// Result of one query execution.
#[derive(Debug)]
pub struct QueryOutcome {
    /// The result rows, as rendered on the secure display.
    pub rows: ResultSet,
    /// Per-operator statistics and totals.
    pub report: ExecReport,
}

/// A loaded GhostDB instance (PC + device + display).
pub struct GhostDb {
    schema: Schema,
    tree: TreeSchema,
    config: DeviceConfig,
    clock: SimClock,
    bus: Bus,
    volume: Volume,
    ram: RamBudget,
    hidden: HiddenStore,
    indexes: IndexSet,
    stats: SchemaStats,
    pc_link: BusPcLink,
}

impl GhostDb {
    /// Create a database from `CREATE TABLE` DDL and bulk-load `data` in
    /// the secure setting.
    pub fn create(ddl: &str, config: DeviceConfig, data: &Dataset) -> Result<GhostDb> {
        let stmts = parse_statements(ddl)?;
        let schema = bind_schema(&stmts)?;
        Self::create_with_schema(schema, config, data)
    }

    /// Create from an already-built schema (programmatic path).
    pub fn create_with_schema(
        schema: Schema,
        config: DeviceConfig,
        data: &Dataset,
    ) -> Result<GhostDb> {
        let tree = TreeSchema::analyze(&schema)?;
        let clock = SimClock::new();
        let nand = Nand::new(config.flash.clone(), clock.clone());
        let volume = Volume::new(nand);
        let ram = RamBudget::new(config.ram_bytes);
        let bus = Bus::new(config.bus.clone(), clock.clone());

        let load_scope = RamScope::new(&ram);
        let (hidden, visible, stats, encoders) =
            split_dataset(&volume, &load_scope, &schema, data)?;
        let indexes = IndexSet::build(&volume, &load_scope, &schema, &tree, data, &encoders)?;
        let pc_link = BusPcLink::new(bus.clone(), visible);
        Ok(GhostDb {
            schema,
            tree,
            config,
            clock,
            bus,
            volume,
            ram,
            hidden,
            indexes,
            stats,
            pc_link,
        })
    }

    /// The bound schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Tree analysis of the schema.
    pub fn tree(&self) -> &TreeSchema {
        &self.tree
    }

    /// Catalog statistics collected at load time.
    pub fn stats(&self) -> &SchemaStats {
        &self.stats
    }

    /// The hardware configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.config
    }

    /// The shared simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The device's flash volume (for space/stat reports).
    pub fn volume(&self) -> &Volume {
        &self.volume
    }

    /// The device RAM budget.
    pub fn ram(&self) -> &RamBudget {
        &self.ram
    }

    /// The device's index set.
    pub fn indexes(&self) -> &IndexSet {
        &self.indexes
    }

    /// The spy-visible bus trace.
    pub fn trace(&self) -> &BusTrace {
        self.bus.trace()
    }

    /// Forget the trace (between experiment phases).
    pub fn clear_trace(&self) {
        self.bus.trace().clear();
    }

    /// Demo phase 1: the pirate's view of the last transfers.
    pub fn spy_report(&self) -> String {
        self.bus.trace().spy_report()
    }

    /// Would a spy have seen this value on the PC ↔ device link?
    pub fn spy_sees_value(&self, v: &Value) -> bool {
        self.bus.trace().spy_sees_value(v)
    }

    /// Bind a SELECT statement into an executable [`QuerySpec`].
    pub fn bind(&self, sql: &str) -> Result<QuerySpec> {
        let stmts = parse_statements(sql)?;
        let sel = stmts
            .iter()
            .find_map(|s| match s {
                Statement::Select(sel) => Some(sel),
                _ => None,
            })
            .ok_or_else(|| GhostError::sql("expected a SELECT statement"))?;
        let bound = bind_select(&self.schema, &self.tree, sel)?;
        QuerySpec::bind(
            &self.schema,
            &self.tree,
            bound.sql,
            bound.tables,
            bound.projections,
            bound.predicates,
            bound.joins,
        )
    }

    fn exec_context(&self, pipeline: PipelineMode) -> ExecContext<'_> {
        ExecContext {
            schema: &self.schema,
            tree: &self.tree,
            config: &self.config,
            clock: self.clock.clone(),
            volume: &self.volume,
            ram: &self.ram,
            hidden: &self.hidden,
            indexes: &self.indexes,
            pc: &self.pc_link,
            pipeline,
        }
    }

    /// All candidate plans for a statement, cheapest first (demo phases
    /// 2 and 3).
    pub fn plans(&self, sql: &str) -> Result<Vec<CostedPlan>> {
        let spec = self.bind(sql)?;
        let opt = Optimizer::new(&self.schema, &self.tree, &self.stats, &self.config);
        opt.plans(&spec, |c| self.indexes.has_value_index(c))
    }

    /// The canonical all-Pre-filtering plan ("P1").
    pub fn plan_pre(&self, spec: &QuerySpec) -> Plan {
        ghostdb_exec::plan_all_pre(spec, &self.schema, |c| self.indexes.has_value_index(c))
    }

    /// The canonical Post-filtering plan ("P2", Figure 5).
    pub fn plan_post(&self, spec: &QuerySpec) -> Plan {
        ghostdb_exec::plan_all_post(spec, &self.schema, |c| self.indexes.has_value_index(c))
    }

    /// Execute a statement with the optimizer's best plan.
    pub fn query(&self, sql: &str) -> Result<QueryOutcome> {
        let spec = self.bind(sql)?;
        let opt = Optimizer::new(&self.schema, &self.tree, &self.stats, &self.config);
        let plan = opt.best(&spec, |c| self.indexes.has_value_index(c))?;
        self.run(&spec, &plan)
    }

    /// Execute a statement with a caller-chosen plan (demo phase 2/3).
    pub fn query_with_plan(&self, sql: &str, plan: &Plan) -> Result<QueryOutcome> {
        let spec = self.bind(sql)?;
        self.run(&spec, plan)
    }

    /// Execute an already-bound spec with a plan.
    pub fn run(&self, spec: &QuerySpec, plan: &Plan) -> Result<QueryOutcome> {
        self.run_with_pipeline(spec, plan, PipelineMode::Blocked)
    }

    /// Execute with the seed's scalar (id-at-a-time) operators instead
    /// of the blocked pipeline. Results and tuple counts must match
    /// [`run`](Self::run) exactly; only simulated timings differ. Kept
    /// public as the equivalence foil for tests and benchmarks.
    pub fn run_scalar(&self, spec: &QuerySpec, plan: &Plan) -> Result<QueryOutcome> {
        self.run_with_pipeline(spec, plan, PipelineMode::Scalar)
    }

    fn run_with_pipeline(
        &self,
        spec: &QuerySpec,
        plan: &Plan,
        pipeline: PipelineMode,
    ) -> Result<QueryOutcome> {
        // The query text is public: the PC poses it to the device.
        self.bus.transmit(
            Endpoint::Pc,
            Endpoint::Device,
            &Message::Query {
                sql: spec.sql.clone(),
            },
        )?;
        let ctx = self.exec_context(pipeline);
        let (rows, report) = execute(&ctx, spec, plan)?;
        // Results exist only sealed on the device...
        let sealed = Sealed::new(rows);
        // ...and are opened by the secure display alone.
        let ticket = self.bus.present(&sealed.peek_on_device().rows);
        let rows = sealed.open(ticket);
        Ok(QueryOutcome { rows, report })
    }

    /// Multi-line explain: the plan list with costs for a statement.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let spec = self.bind(sql)?;
        let plans = self.plans(sql)?;
        let mut out = format!("{} candidate plan(s)\n", plans.len());
        for cp in plans.iter().take(8) {
            out.push_str(&format!(
                "-- estimated {}\n{}",
                format_ns(cp.est_ns as u64),
                cp.plan.describe(&self.schema, &spec)
            ));
        }
        Ok(out)
    }

    /// Device-side storage report (flash occupancy, index overhead).
    pub fn device_report(&self) -> String {
        let usage = self.volume.usage();
        format!(
            "flash: {}/{} blocks free, {} live pages; indexes: {}",
            usage.free_blocks,
            usage.total_blocks,
            usage.live_pages,
            self.indexes.describe()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_types::{RowId, TableId};

    const DDL: &str = "\
        CREATE TABLE Doctor ( \
          DocID INTEGER PRIMARY KEY, \
          Name CHAR(40), \
          Country CHAR(20)); \
        CREATE TABLE Visit ( \
          VisID INTEGER PRIMARY KEY, \
          Severity INTEGER, \
          Purpose CHAR(100) HIDDEN, \
          DocID REFERENCES Doctor(DocID) HIDDEN);";

    fn tiny() -> GhostDb {
        let stmts = parse_statements(DDL).unwrap();
        let schema = bind_schema(&stmts).unwrap();
        let mut data = Dataset::empty(&schema);
        let countries = ["France", "Spain"];
        for i in 0..4i64 {
            data.push_row(
                TableId(0),
                vec![
                    Value::Int(i),
                    Value::Text(format!("doc{i}")),
                    Value::Text(countries[(i % 2) as usize].into()),
                ],
            )
            .unwrap();
        }
        let purposes = ["Checkup", "Sclerosis"];
        for i in 0..16i64 {
            data.push_row(
                TableId(1),
                vec![
                    Value::Int(i),
                    Value::Int(i % 8),
                    Value::Text(purposes[(i % 2) as usize].into()),
                    Value::Int(i % 4),
                ],
            )
            .unwrap();
        }
        // Shrink flash for test speed.
        let mut config = DeviceConfig::default_2007();
        config.flash.page_size = 256;
        config.flash.pages_per_block = 8;
        config.flash.num_blocks = 2048;
        GhostDb::create(DDL, config, &data).unwrap()
    }

    #[test]
    fn end_to_end_query_best_plan() {
        let db = tiny();
        let out = db
            .query(
                "SELECT Vis.VisID, Doc.Name FROM Visit Vis, Doctor Doc \
                 WHERE Vis.Purpose = 'Sclerosis' \
                   AND Vis.Severity >= 4 \
                   AND Vis.DocID = Doc.DocID",
            )
            .unwrap();
        // Sclerosis = odd visits; severity >= 4 → i%8 in 4..8 → i in
        // {5,7,13,15}.
        let ids: Vec<i64> = out
            .rows
            .rows
            .iter()
            .map(|r| r[0].as_int().unwrap())
            .collect();
        assert_eq!(ids, vec![5, 7, 13, 15]);
        // Doctor names joined through the hidden fk: doc (i%4).
        assert_eq!(out.rows.rows[0][1], Value::Text("doc1".into()));
        assert!(out.report.total_ns > 0);
    }

    #[test]
    fn all_plans_agree() {
        let db = tiny();
        let sql = "SELECT Vis.VisID FROM Visit Vis, Doctor Doc \
                   WHERE Doc.Country = 'Spain' \
                     AND Vis.Purpose = 'Checkup' \
                     AND Vis.DocID = Doc.DocID";
        let plans = db.plans(sql).unwrap();
        assert!(plans.len() >= 3);
        let mut results: Vec<Vec<Vec<Value>>> = Vec::new();
        for cp in &plans {
            let out = db.query_with_plan(sql, &cp.plan).unwrap();
            results.push(out.rows.rows.clone());
        }
        for r in &results[1..] {
            assert_eq!(r, &results[0], "plans disagree");
        }
        // Sanity: Spain doctors {1,3}; visits with docid in {1,3} and
        // even index: i%4 in {1,3} and i even → i in {} ... check via
        // reference: docid = i%4; purpose even i → Checkup. i even with
        // i%4 ∈ {1,3} impossible, so empty.
        assert!(results[0].is_empty());
    }

    #[test]
    fn hidden_values_never_cross_the_bus() {
        let db = tiny();
        db.clear_trace();
        let out = db
            .query(
                "SELECT Vis.Purpose FROM Visit Vis \
                 WHERE Vis.Severity = 3",
            )
            .unwrap();
        assert_eq!(out.rows.rows.len(), 2); // i%8==3 → {3, 11}
        assert_eq!(out.rows.rows[0][0], Value::Text("Sclerosis".into()));
        // The hidden value appears in results (secure display) but never
        // in the spy trace.
        assert!(!db.spy_sees_value(&Value::Text("Sclerosis".into())));
        assert!(!db.spy_sees_value(&Value::Text("Checkup".into())));
        // Visible traffic does appear.
        assert!(db.trace().spy_bytes() > 0);
    }

    #[test]
    fn explain_lists_costed_plans() {
        let db = tiny();
        let text = db
            .explain("SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Checkup'")
            .unwrap();
        assert!(text.contains("candidate plan"));
        assert!(text.contains("estimated"));
    }

    #[test]
    fn canonical_p1_p2_run() {
        let db = tiny();
        let sql = "SELECT Vis.VisID FROM Visit Vis, Doctor Doc \
                   WHERE Doc.Country = 'France' \
                     AND Vis.Purpose = 'Sclerosis' \
                     AND Vis.DocID = Doc.DocID";
        let spec = db.bind(sql).unwrap();
        let p1 = db.plan_pre(&spec);
        let p2 = db.plan_post(&spec);
        let r1 = db.run(&spec, &p1).unwrap();
        let r2 = db.run(&spec, &p2).unwrap();
        assert_eq!(r1.rows.rows, r2.rows.rows);
        // France doctors {0,2}; odd visits (Sclerosis) with docid even:
        // i odd, i%4 ∈ {0,2} → impossible → empty? i%4 for odd i is 1 or
        // 3. So empty.
        assert!(r1.rows.rows.is_empty());
    }

    #[test]
    fn device_report_mentions_indexes() {
        let db = tiny();
        let rep = db.device_report();
        assert!(rep.contains("SKT"));
        let _ = db.trace().events();
    }

    #[test]
    fn projection_of_fk_and_pk_columns() {
        let db = tiny();
        let out = db
            .query(
                "SELECT Vis.DocID, Vis.VisID FROM Visit Vis \
                 WHERE Vis.Severity = 0",
            )
            .unwrap();
        // Visits {0, 8}: docid i%4 -> {0, 0}.
        assert_eq!(
            out.rows.rows,
            vec![
                vec![Value::Int(0), Value::Int(0)],
                vec![Value::Int(0), Value::Int(8)],
            ]
        );
        let _ = RowId(0);
    }
}
