//! The engine-level half of the flight recorder: statement latency and
//! pause-time metrics, and the statement trace builder shared by
//! [`GhostDb`](crate::GhostDb) and [`Snapshot`](crate::Snapshot).

use std::time::Instant;

use ghostdb_exec::ExecReport;
use ghostdb_obs::{Counter, Gauge, Histogram, Registry, Span, TIME_BUCKETS_NS};

/// Core-owned metric handles. Registered once per instance; clones of
/// the underlying registry (and the [`crate::Snapshot`]s holding them)
/// observe into the same slots.
#[derive(Debug)]
pub(crate) struct CoreMetrics {
    /// Simulated device time per statement, by statement kind.
    pub select_latency: Histogram,
    /// Latency of `INSERT` statements (validation + appends + flush).
    pub insert_latency: Histogram,
    /// Latency of `DELETE` statements.
    pub delete_latency: Histogram,
    /// Latency of `UPDATE` statements.
    pub update_latency: Histogram,
    /// Simulated pause taken by a delta flush (merge + re-seal).
    pub flush_pause: Histogram,
    /// Simulated pause taken by an explicit `seal()`.
    pub seal_pause: Histogram,
    /// WAL records appended (durable instances only).
    pub wal_appends: Counter,
    /// The MVCC commit epoch.
    pub epoch: Gauge,
    /// Snapshot sessions currently open.
    pub open_snapshots: Gauge,
    /// Free blocks in the flash volume.
    pub flash_free_blocks: Gauge,
    /// Live (translated) pages in the flash volume.
    pub flash_live_pages: Gauge,
    /// Un-flushed delta rows across all tables.
    pub delta_rows: Gauge,
}

impl CoreMetrics {
    pub(crate) fn new(registry: &Registry) -> Self {
        let lat = |kind: &str| {
            registry.histogram(
                &format!("ghostdb_statement_latency_ns{{kind=\"{kind}\"}}"),
                TIME_BUCKETS_NS,
            )
        };
        CoreMetrics {
            select_latency: lat("select"),
            insert_latency: lat("insert"),
            delete_latency: lat("delete"),
            update_latency: lat("update"),
            flush_pause: registry.histogram("ghostdb_flush_pause_ns", TIME_BUCKETS_NS),
            seal_pause: registry.histogram("ghostdb_seal_pause_ns", TIME_BUCKETS_NS),
            wal_appends: registry.counter("ghostdb_wal_appends_total"),
            epoch: registry.gauge("ghostdb_epoch"),
            open_snapshots: registry.gauge("ghostdb_open_snapshots"),
            flash_free_blocks: registry.gauge("ghostdb_flash_free_blocks"),
            flash_live_pages: registry.gauge("ghostdb_flash_live_pages"),
            delta_rows: registry.gauge("ghostdb_delta_rows"),
        }
    }
}

/// Host-clock stopwatch for trace spans: offsets are nanoseconds since
/// the statement began.
pub(crate) struct StageClock(Instant);

impl StageClock {
    pub(crate) fn start() -> Self {
        StageClock(Instant::now())
    }

    pub(crate) fn now_ns(&self) -> u64 {
        self.0.elapsed().as_nanos() as u64
    }
}

/// Assemble the statement trace from the stage boundary offsets and the
/// execution report. Per-operator child spans are point events (the
/// executor accounts their time in simulated ns, carried as the
/// `sim_ns` attribute) in execution order.
pub(crate) fn build_statement_trace(
    sql_statements: u64,
    parse_end: u64,
    bind_end: u64,
    plan_end: u64,
    exec_end: u64,
    plan_label: &str,
    report: &ExecReport,
) -> Span {
    let mut root = Span::new("statement", 0, exec_end);
    root.detail = "select".into();

    let mut parse = Span::new("parse", 0, parse_end);
    parse.attrs.push(("statements", sql_statements));
    root.children.push(parse);

    root.children.push(Span::new("bind", parse_end, bind_end));

    let mut plan = Span::new("plan", bind_end, plan_end);
    plan.detail = plan_label.to_string();
    root.children.push(plan);

    let mut exec = Span::new("execute", plan_end, exec_end);
    exec.detail = format!("plan {plan_label}");
    exec.attrs.push(("sim_ns", report.total_ns));
    exec.attrs.push(("rows", report.result_rows));
    exec.attrs.push(("ram_peak", report.ram_peak as u64));
    exec.attrs
        .push(("bus_bytes_to_device", report.bus_bytes_to_device));
    exec.attrs.push(("bus_bytes_to_pc", report.bus_bytes_to_pc));
    exec.attrs
        .push(("flash_page_reads", report.flash.page_reads));
    for op in &report.ops {
        let mut child = Span::new(op.name.clone(), plan_end, plan_end);
        child.detail = op.detail.clone();
        child.attrs.push(("in", op.tuples_in));
        child.attrs.push(("out", op.tuples_out));
        child.attrs.push(("sim_ns", op.sim_ns));
        child.attrs.push(("ram_peak", op.ram_peak as u64));
        child.attrs.extend(op.attrs.iter().copied());
        exec.children.push(child);
    }
    root.children.push(exec);
    root
}
