//! Counting Bloom filter (4-bit counters) — the deletable variant.
//!
//! Not part of the paper's minimal design, but the natural extension a
//! production engine needs when a Cross-filtering plan *retracts* ids
//! (e.g. after a hidden predicate disqualifies part of a visible set).
//! The ablation bench compares its 4× memory cost against the plain
//! filter; see DESIGN.md §5.

use ghostdb_ram::{RamScope, ScopedGuard};
use ghostdb_types::{GhostError, Result};

use crate::mix64;

/// A counting Bloom filter with 4-bit saturating counters.
#[derive(Debug)]
pub struct CountingBloom {
    /// Two counters per byte.
    counters: Vec<u8>,
    m_slots: usize,
    k: u32,
    inserted: u64,
    _ram: ScopedGuard,
}

impl CountingBloom {
    /// Build with `m_slots` counters and `k` hash functions.
    pub fn with_params(scope: &RamScope, m_slots: usize, k: u32) -> Result<Self> {
        if m_slots == 0 || k == 0 {
            return Err(GhostError::exec("counting bloom needs m>0, k>0"));
        }
        let bytes = m_slots.div_ceil(2);
        let guard = scope.alloc(bytes)?;
        Ok(CountingBloom {
            counters: vec![0; bytes],
            m_slots,
            k,
            inserted: 0,
            _ram: guard,
        })
    }

    #[inline]
    fn slots(&self, key: u64) -> impl Iterator<Item = usize> + '_ {
        let h1 = mix64(key);
        let h2 = mix64(key ^ 0xC3C3_C3C3_3C3C_3C3C) | 1;
        let m = self.m_slots as u64;
        (0..self.k as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % m) as usize)
    }

    fn get(&self, slot: usize) -> u8 {
        let byte = self.counters[slot / 2];
        if slot.is_multiple_of(2) {
            byte & 0x0F
        } else {
            byte >> 4
        }
    }

    fn set(&mut self, slot: usize, v: u8) {
        let byte = &mut self.counters[slot / 2];
        if slot.is_multiple_of(2) {
            *byte = (*byte & 0xF0) | (v & 0x0F);
        } else {
            *byte = (*byte & 0x0F) | (v << 4);
        }
    }

    /// Insert a key (counters saturate at 15).
    pub fn insert(&mut self, key: u64) {
        let slots: Vec<usize> = self.slots(key).collect();
        for s in slots {
            let c = self.get(s);
            if c < 15 {
                self.set(s, c + 1);
            }
        }
        self.inserted += 1;
    }

    /// Remove a key previously inserted. Removing a key that was never
    /// inserted may introduce false negatives, as with any counting
    /// Bloom filter; callers pair inserts and removes.
    pub fn remove(&mut self, key: u64) {
        let slots: Vec<usize> = self.slots(key).collect();
        for s in slots {
            let c = self.get(s);
            if c > 0 && c < 15 {
                self.set(s, c - 1);
            }
            // Saturated counters stay put (classic CBF behaviour).
        }
        self.inserted = self.inserted.saturating_sub(1);
    }

    /// Membership test.
    pub fn contains(&self, key: u64) -> bool {
        self.slots(key)
            .collect::<Vec<_>>()
            .iter()
            .all(|&s| self.get(s) > 0)
    }

    /// Heap bytes held by the counter array (4 bits per slot).
    pub fn bytes(&self) -> usize {
        self.counters.len()
    }

    /// Keys currently accounted as present.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_ram::RamBudget;

    fn scope() -> RamScope {
        RamScope::new(&RamBudget::new(64 * 1024))
    }

    #[test]
    fn insert_remove_roundtrip() {
        let s = scope();
        let mut f = CountingBloom::with_params(&s, 8192, 4).unwrap();
        for i in 0..100u64 {
            f.insert(i);
        }
        assert!((0..100).all(|i| f.contains(i)));
        for i in 0..50u64 {
            f.remove(i);
        }
        // Removed keys are (very likely) gone, remaining keys must stay.
        assert!(
            (50..100).all(|i| f.contains(i)),
            "false negative after remove"
        );
        let still: usize = (0..50u64).filter(|&i| f.contains(i)).count();
        assert!(still < 10, "{still} of 50 removed keys still present");
    }

    #[test]
    fn four_bit_packing() {
        let s = scope();
        let f = CountingBloom::with_params(&s, 1000, 3).unwrap();
        assert_eq!(f.bytes(), 500);
    }

    #[test]
    fn ram_charged() {
        let b = RamBudget::new(100);
        let s = RamScope::new(&b);
        let f = CountingBloom::with_params(&s, 200, 2).unwrap(); // 100 bytes
        assert_eq!(b.used(), 100);
        assert!(CountingBloom::with_params(&s, 2, 1).is_err());
        drop(f);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn saturation_does_not_underflow() {
        let s = scope();
        let mut f = CountingBloom::with_params(&s, 4, 1).unwrap();
        for _ in 0..100 {
            f.insert(7);
        }
        for _ in 0..200 {
            f.remove(7);
        }
        // Saturated counter never decremented: key still "present" — the
        // documented conservative behaviour.
        assert!(f.contains(7));
    }

    #[test]
    fn degenerate_params_rejected() {
        let s = scope();
        assert!(CountingBloom::with_params(&s, 0, 1).is_err());
        assert!(CountingBloom::with_params(&s, 10, 0).is_err());
    }
}
