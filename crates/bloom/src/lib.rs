//! Bloom filters for the Post-filtering strategy.
//!
//! Paper §4: "the Bloom filter is a probabilistic bit array data structure
//! used to test whether an element is a member of a set. The two
//! properties of Bloom filters are compactness and a very low false
//! positive rate, making them well adapted to RAM-constrained
//! environments."
//!
//! In a Post-filtering plan the device asks the PC to evaluate an
//! unselective *visible* predicate, inserts the returned row ids into a
//! Bloom filter sized to fit the 64 KB RAM budget, and probes the filter
//! while streaming the rows produced by the hidden joins. False positives
//! are tolerable because the final projection merge-join against the
//! PC-supplied `(id, value)` pairs drops them exactly (see
//! `ghostdb-exec`), so every strategy returns identical results.
//!
//! The bit array is charged to the device RAM budget through a
//! [`ghostdb_ram::RamScope`]; sizing helpers implement the standard
//! optimal-parameter formulas from Bloom's 1970 paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ghostdb_ram::{RamScope, ScopedGuard};
use ghostdb_types::{GhostError, Result};

mod blocked;
mod counting;

pub use blocked::{BlockedBloomFilter, BLOOM_BLOCK_BITS, BLOOM_BLOCK_BYTES};
pub use counting::CountingBloom;

/// SplitMix64 finalizer — cheap, well-distributed 64-bit mixing, the kind
/// of arithmetic a smartcard CPU can do quickly.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Optimal number of bits for `n` keys at false-positive rate `fpr`:
/// `m = -n ln p / (ln 2)^2`.
///
/// Degenerate inputs are clamped rather than rejected, because the
/// optimizer reaches this from cardinality *estimates*: `n = 0` sizes as
/// `n = 1`, `fpr` outside `(0, 1)` (including NaN) is clamped to
/// `[1e-9, 0.5]`, and the result is always at least 64 bits.
pub fn optimal_bits(n: usize, fpr: f64) -> usize {
    let fpr = if fpr.is_finite() {
        fpr.clamp(1e-9, 0.5)
    } else {
        0.5
    };
    let ln2sq = std::f64::consts::LN_2 * std::f64::consts::LN_2;
    (((-(n.max(1) as f64) * fpr.ln()) / ln2sq).ceil() as usize).max(64)
}

/// Optimal number of hash functions for `m` bits and `n` keys:
/// `k = (m/n) ln 2`, clamped to `[1, 16]`. `n = 0` counts as `n = 1`;
/// `m_bits = 0` yields the minimum `k = 1`.
pub fn optimal_hashes(m_bits: usize, n: usize) -> u32 {
    let k = (m_bits as f64 / n.max(1) as f64) * std::f64::consts::LN_2;
    (k.round() as u32).clamp(1, 16)
}

/// Theoretical false-positive rate after `n` inserts into `m` bits with
/// `k` hashes: `(1 - e^{-kn/m})^k`.
pub fn theoretical_fpr(m_bits: usize, k: u32, n: u64) -> f64 {
    if m_bits == 0 {
        return 1.0;
    }
    let exponent = -((k as f64) * (n as f64) / (m_bits as f64));
    (1.0 - exponent.exp()).powi(k as i32)
}

/// A classic Bloom filter over 64-bit keys, RAM-charged to the device.
#[derive(Debug)]
pub struct BloomFilter {
    bits: Vec<u64>,
    m_bits: usize,
    k: u32,
    inserted: u64,
    _ram: ScopedGuard,
}

impl BloomFilter {
    /// Build with explicit geometry: `m_bits` bits, `k` hash functions.
    pub fn with_params(scope: &RamScope, m_bits: usize, k: u32) -> Result<Self> {
        if m_bits == 0 || k == 0 {
            return Err(GhostError::exec("bloom filter needs m>0, k>0"));
        }
        let words = m_bits.div_ceil(64);
        let guard = scope.alloc(words * 8)?;
        Ok(BloomFilter {
            bits: vec![0; words],
            m_bits,
            k,
            inserted: 0,
            _ram: guard,
        })
    }

    /// Build sized for `n` expected keys at `target_fpr`, subject to the
    /// RAM the scope can grant.
    pub fn for_capacity(scope: &RamScope, n: usize, target_fpr: f64) -> Result<Self> {
        let m = optimal_bits(n, target_fpr);
        let k = optimal_hashes(m, n);
        Self::with_params(scope, m, k)
    }

    /// Build the *largest* filter that fits in `ram_limit` bytes, with the
    /// hash count optimal for `n` expected keys. This is how Post-filtering
    /// adapts to whatever RAM the rest of the plan left available.
    pub fn within_ram(scope: &RamScope, n: usize, ram_limit: usize) -> Result<Self> {
        let m = (ram_limit.max(8) * 8).min(optimal_bits(n, 1e-6));
        let k = optimal_hashes(m, n);
        Self::with_params(scope, m, k)
    }

    #[inline]
    fn positions(&self, key: u64) -> impl Iterator<Item = usize> + '_ {
        let h1 = mix64(key);
        // Force h2 odd so the probe sequence spans the table.
        let h2 = mix64(key ^ 0xA5A5_A5A5_5A5A_5A5A) | 1;
        let m = self.m_bits as u64;
        (0..self.k as u64).map(move |i| (h1.wrapping_add(i.wrapping_mul(h2)) % m) as usize)
    }

    /// Insert a key.
    pub fn insert(&mut self, key: u64) {
        let m = self.m_bits as u64;
        let h1 = mix64(key);
        let h2 = mix64(key ^ 0xA5A5_A5A5_5A5A_5A5A) | 1;
        for i in 0..self.k as u64 {
            let pos = (h1.wrapping_add(i.wrapping_mul(h2)) % m) as usize;
            self.bits[pos / 64] |= 1 << (pos % 64);
        }
        self.inserted += 1;
    }

    /// Membership test: false means *definitely absent*; true means
    /// *probably present*.
    pub fn contains(&self, key: u64) -> bool {
        self.positions(key)
            .all(|pos| self.bits[pos / 64] & (1 << (pos % 64)) != 0)
    }

    /// Number of hash functions (the executor charges `k` hash costs per
    /// probe/insert).
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Size of the bit array in bits.
    pub fn m_bits(&self) -> usize {
        self.m_bits
    }

    /// Heap bytes held by the bit array.
    pub fn bytes(&self) -> usize {
        self.bits.len() * 8
    }

    /// Keys inserted so far.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Fraction of bits set.
    pub fn fill_ratio(&self) -> f64 {
        let set: u64 = self.bits.iter().map(|w| w.count_ones() as u64).sum();
        set as f64 / self.m_bits as f64
    }

    /// Theoretical false-positive rate at the current load.
    pub fn estimated_fpr(&self) -> f64 {
        theoretical_fpr(self.m_bits, self.k, self.inserted)
    }

    /// Merge another filter with identical geometry (used by
    /// Cross-filtering when two visible predicates feed one probe).
    pub fn union(&mut self, other: &BloomFilter) -> Result<()> {
        if self.m_bits != other.m_bits || self.k != other.k {
            return Err(GhostError::exec(format!(
                "bloom union geometry mismatch: {}x{} vs {}x{}",
                self.m_bits, self.k, other.m_bits, other.k
            )));
        }
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= *b;
        }
        self.inserted += other.inserted;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_ram::RamBudget;

    fn scope(bytes: usize) -> RamScope {
        RamScope::new(&RamBudget::new(bytes))
    }

    #[test]
    fn no_false_negatives() {
        let s = scope(64 * 1024);
        let mut f = BloomFilter::for_capacity(&s, 10_000, 0.01).unwrap();
        for i in 0..10_000u64 {
            f.insert(i * 7 + 3);
        }
        for i in 0..10_000u64 {
            assert!(f.contains(i * 7 + 3), "false negative for {i}");
        }
    }

    #[test]
    fn fpr_near_theory() {
        let s = scope(64 * 1024);
        let mut f = BloomFilter::for_capacity(&s, 5_000, 0.01).unwrap();
        for i in 0..5_000u64 {
            f.insert(i);
        }
        let mut fp = 0u32;
        let probes = 50_000u64;
        for i in 5_000..5_000 + probes {
            if f.contains(i) {
                fp += 1;
            }
        }
        let observed = fp as f64 / probes as f64;
        assert!(
            observed < 0.03,
            "observed fpr {observed} far above 1% target"
        );
        let est = f.estimated_fpr();
        assert!((est - 0.01).abs() < 0.01, "estimate {est} off");
    }

    #[test]
    fn ram_is_charged_and_capped() {
        let budget = RamBudget::new(1024);
        let s = RamScope::new(&budget);
        let f = BloomFilter::with_params(&s, 512 * 8, 4).unwrap();
        assert_eq!(budget.used(), 512);
        assert_eq!(f.bytes(), 512);
        // A second filter of the same size would exceed the 1 KB budget.
        assert!(BloomFilter::with_params(&s, 1024 * 8, 4).is_err());
        drop(f);
        assert_eq!(budget.used(), 0);
    }

    #[test]
    fn within_ram_respects_limit() {
        let s = scope(64 * 1024);
        let f = BloomFilter::within_ram(&s, 1_000_000, 16 * 1024).unwrap();
        assert!(f.bytes() <= 16 * 1024 + 8);
        assert!(f.k() >= 1);
    }

    #[test]
    fn sizing_formulas() {
        // Textbook: 1% fpr needs ~9.59 bits/key, k ~ 7.
        let m = optimal_bits(1000, 0.01);
        assert!((9_500..=9_700).contains(&m), "m = {m}");
        assert_eq!(optimal_hashes(m, 1000), 7);
        // Degenerate inputs stay sane.
        assert!(optimal_bits(0, 0.01) > 0);
        assert_eq!(optimal_hashes(8, 1_000_000), 1);
    }

    #[test]
    fn sizing_survives_degenerate_planner_inputs() {
        // These are reachable from query planning with zero-row estimates
        // and saturated selectivities; none may panic.
        assert!(optimal_bits(0, 1.0) >= 64);
        assert!(optimal_bits(0, 0.0) >= 64);
        assert!(optimal_bits(10, -3.0) >= 64);
        assert!(optimal_bits(10, f64::NAN) >= 64);
        assert!(optimal_bits(10, f64::INFINITY) >= 64);
        // fpr ~ 1.0 clamps to 0.5: one bit per key territory, never zero.
        let m = optimal_bits(1000, 0.999_999);
        assert!(m >= 1000, "m = {m}");
        assert_eq!(optimal_hashes(0, 0), 1);
        assert_eq!(optimal_hashes(usize::MAX / 2, 1), 16);
        // A filter built from fully degenerate sizing still works.
        let s = scope(64 * 1024);
        let f = BloomFilter::with_params(&s, optimal_bits(0, 1.0), optimal_hashes(0, 0)).unwrap();
        assert!(!f.contains(42));
    }

    #[test]
    fn union_combines_members() {
        let s = scope(64 * 1024);
        let mut a = BloomFilter::with_params(&s, 4096, 5).unwrap();
        let mut b = BloomFilter::with_params(&s, 4096, 5).unwrap();
        a.insert(1);
        b.insert(2);
        a.union(&b).unwrap();
        assert!(a.contains(1) && a.contains(2));
        let c = BloomFilter::with_params(&s, 2048, 5).unwrap();
        assert!(a.union(&c).is_err());
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let s = scope(1024);
        let f = BloomFilter::with_params(&s, 1024, 3).unwrap();
        for i in 0..1000u64 {
            assert!(!f.contains(i));
        }
        assert_eq!(f.fill_ratio(), 0.0);
    }

    #[test]
    fn degenerate_params_rejected() {
        let s = scope(1024);
        assert!(BloomFilter::with_params(&s, 0, 3).is_err());
        assert!(BloomFilter::with_params(&s, 64, 0).is_err());
    }
}
