//! A cache-line-blocked Bloom filter.
//!
//! The classic filter in `lib.rs` spreads its `k` probe positions over
//! the whole bit array, so a probe costs up to `k` cache misses (and, on
//! the modelled device, `k` dependent RAM touches). The blocked variant
//! confines all `k` bits of a key to **one 64-byte block**: a single
//! `mix64`-derived block pick lands the cache line, then `k` bit
//! positions inside the 512-bit block are derived from a second hash.
//! One miss per probe instead of `k`, at the price of a slightly higher
//! false-positive rate for the same geometry (the per-block load
//! varies; see Putze/Sanders/Singler, "Cache-, Hash- and Space-Efficient
//! Bloom Filters", WEA 2007).
//!
//! The executor's Post-filtering path builds and probes these in batches
//! ([`BlockedBloomFilter::insert_batch`] /
//! [`BlockedBloomFilter::probe_batch`]) so hash mixing and the
//! bounds/branch overhead amortize across a block of candidates. RAM is
//! charged to the device budget exactly like the classic filter.

use ghostdb_ram::{RamScope, ScopedGuard};
use ghostdb_types::{GhostError, Result};

use crate::{mix64, optimal_bits, optimal_hashes, theoretical_fpr};

/// Bytes per filter block: one cache line.
pub const BLOOM_BLOCK_BYTES: usize = 64;
/// Bits per filter block.
pub const BLOOM_BLOCK_BITS: usize = BLOOM_BLOCK_BYTES * 8;
const WORDS_PER_BLOCK: usize = BLOOM_BLOCK_BYTES / 8;

/// A blocked Bloom filter over 64-bit keys, RAM-charged to the device.
#[derive(Debug)]
pub struct BlockedBloomFilter {
    words: Vec<u64>,
    blocks: usize,
    k: u32,
    inserted: u64,
    _ram: ScopedGuard,
}

impl BlockedBloomFilter {
    /// Build with explicit geometry: at least `m_bits` bits (rounded up
    /// to whole 512-bit blocks), `k` bits set per key. `k` is clamped to
    /// `[1, 8]` — one bit per 64-bit word of the block, the split-block
    /// scheme — because extra bits inside one cache line stop paying for
    /// themselves past that.
    pub fn with_params(scope: &RamScope, m_bits: usize, k: u32) -> Result<Self> {
        if m_bits == 0 || k == 0 {
            return Err(GhostError::exec("bloom filter needs m>0, k>0"));
        }
        let blocks = m_bits.div_ceil(BLOOM_BLOCK_BITS).max(1);
        let guard = scope.alloc(blocks * BLOOM_BLOCK_BYTES)?;
        Ok(BlockedBloomFilter {
            words: vec![0; blocks * WORDS_PER_BLOCK],
            blocks,
            k: k.clamp(1, WORDS_PER_BLOCK as u32),
            inserted: 0,
            _ram: guard,
        })
    }

    /// Build sized for `n` expected keys at `target_fpr`, subject to the
    /// RAM the scope can grant.
    pub fn for_capacity(scope: &RamScope, n: usize, target_fpr: f64) -> Result<Self> {
        let m = optimal_bits(n, target_fpr);
        let k = optimal_hashes(m, n);
        Self::with_params(scope, m, k)
    }

    /// Build the *largest* filter that fits in `ram_limit` bytes, with
    /// the hash count optimal for `n` expected keys — how Post-filtering
    /// adapts to whatever RAM the rest of the plan left available.
    pub fn within_ram(scope: &RamScope, n: usize, ram_limit: usize) -> Result<Self> {
        let m = (ram_limit.max(BLOOM_BLOCK_BYTES) * 8).min(optimal_bits(n, 1e-6));
        let k = optimal_hashes(m, n);
        Self::with_params(scope, m, k)
    }

    /// `(first word of the key's block, bit-position hash)`: bit `i`
    /// lives in word `(start + i) & 7` — `start` from the hash's top
    /// bits, so **every** word of the block carries load even at small
    /// `k` — at shift `(h2 >> 6i) & 63`. The whole probe is shifts and
    /// masks: no modulo, no data-dependent branches.
    #[inline]
    fn locate(&self, key: u64) -> (usize, u64) {
        let h1 = mix64(key);
        // Multiply-shift block pick from the high-quality top bits.
        let block = ((h1 as u128 * self.blocks as u128) >> 64) as usize;
        (block * WORDS_PER_BLOCK, mix64(key ^ 0xA5A5_A5A5_5A5A_5A5A))
    }

    /// Insert a key.
    #[inline]
    pub fn insert(&mut self, key: u64) {
        let (base, h2) = self.locate(key);
        let start = (h2 >> 60) as usize;
        // Fixed-size array ref: the compiler sees `(start+i) % 8 < 8`
        // and drops every bounds check from the hot loop.
        let block: &mut [u64; WORDS_PER_BLOCK] = (&mut self.words[base..base + WORDS_PER_BLOCK])
            .try_into()
            .expect("one block");
        for i in 0..self.k as usize {
            block[(start + i) % WORDS_PER_BLOCK] |= 1u64 << ((h2 >> (6 * i)) & 63);
        }
        self.inserted += 1;
    }

    /// Membership test: false means *definitely absent*; true means
    /// *probably present*.
    #[inline]
    pub fn contains(&self, key: u64) -> bool {
        let (base, h2) = self.locate(key);
        let start = (h2 >> 60) as usize;
        let block: &[u64; WORDS_PER_BLOCK] = (&self.words[base..base + WORDS_PER_BLOCK])
            .try_into()
            .expect("one block");
        // Branchless: fold the k bit tests, then one predictable check.
        let mut hit = 1u64;
        for i in 0..self.k as usize {
            hit &= block[(start + i) % WORDS_PER_BLOCK] >> ((h2 >> (6 * i)) & 63);
        }
        hit & 1 == 1
    }

    /// Insert every key of a batch.
    pub fn insert_batch(&mut self, keys: &[u64]) {
        for &key in keys {
            self.insert(key);
        }
    }

    /// Probe a batch: `hits` is cleared and refilled with one bool per
    /// key, in order.
    pub fn probe_batch(&self, keys: &[u64], hits: &mut Vec<bool>) {
        hits.clear();
        hits.reserve(keys.len());
        hits.extend(keys.iter().map(|&key| self.contains(key)));
    }

    /// Number of bit positions set per key.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Size of the bit array in bits.
    pub fn m_bits(&self) -> usize {
        self.blocks * BLOOM_BLOCK_BITS
    }

    /// Heap bytes held by the bit array.
    pub fn bytes(&self) -> usize {
        self.blocks * BLOOM_BLOCK_BYTES
    }

    /// Keys inserted so far.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Fraction of bits set.
    pub fn fill_ratio(&self) -> f64 {
        let set: u64 = self.words.iter().map(|w| w.count_ones() as u64).sum();
        set as f64 / self.m_bits() as f64
    }

    /// Approximate false-positive rate at the current load. Uses the
    /// classic formula; the blocked layout's true rate is slightly
    /// higher because per-block load varies around the mean.
    pub fn estimated_fpr(&self) -> f64 {
        theoretical_fpr(self.m_bits(), self.k, self.inserted)
    }

    /// Merge another filter with identical geometry.
    pub fn union(&mut self, other: &BlockedBloomFilter) -> Result<()> {
        if self.blocks != other.blocks || self.k != other.k {
            return Err(GhostError::exec(format!(
                "bloom union geometry mismatch: {}x{} vs {}x{}",
                self.m_bits(),
                self.k,
                other.m_bits(),
                other.k
            )));
        }
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
        self.inserted += other.inserted;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_ram::RamBudget;

    fn scope(bytes: usize) -> RamScope {
        RamScope::new(&RamBudget::new(bytes))
    }

    #[test]
    fn no_false_negatives() {
        let s = scope(64 * 1024);
        let mut f = BlockedBloomFilter::for_capacity(&s, 10_000, 0.01).unwrap();
        for i in 0..10_000u64 {
            f.insert(i * 7 + 3);
        }
        for i in 0..10_000u64 {
            assert!(f.contains(i * 7 + 3), "false negative for {i}");
        }
    }

    #[test]
    fn batch_apis_match_scalar() {
        let s = scope(64 * 1024);
        let keys: Vec<u64> = (0..5_000u64).map(|i| i * 11 + 1).collect();
        let probes: Vec<u64> = (0..20_000u64).collect();
        let mut scalar = BlockedBloomFilter::with_params(&s, 60_000, 6).unwrap();
        for &k in &keys {
            scalar.insert(k);
        }
        let mut batched = BlockedBloomFilter::with_params(&s, 60_000, 6).unwrap();
        batched.insert_batch(&keys);
        assert_eq!(scalar.inserted(), batched.inserted());
        let mut hits = Vec::new();
        batched.probe_batch(&probes, &mut hits);
        for (i, &p) in probes.iter().enumerate() {
            assert_eq!(hits[i], scalar.contains(p), "probe {p}");
        }
    }

    #[test]
    fn fpr_reasonable_for_blocked_layout() {
        let s = scope(64 * 1024);
        // ~12 bits/key: classic theory says ~0.4% at k=7; blocked pays a
        // modest penalty but must stay within a small factor.
        let mut f = BlockedBloomFilter::with_params(&s, 60_000, 6).unwrap();
        for i in 0..5_000u64 {
            f.insert(i);
        }
        let mut fp = 0u32;
        let probes = 50_000u64;
        for i in 5_000..5_000 + probes {
            if f.contains(i) {
                fp += 1;
            }
        }
        let observed = fp as f64 / probes as f64;
        assert!(observed < 0.03, "observed blocked fpr {observed}");
    }

    #[test]
    fn small_k_still_loads_every_word() {
        // k = 1 must not park all bits in word 0: the rotated start word
        // spreads load so the whole RAM-charged block carries capacity.
        let s = scope(64 * 1024);
        let mut f = BlockedBloomFilter::with_params(&s, BLOOM_BLOCK_BITS, 1).unwrap();
        for key in 0..4_000u64 {
            f.insert(key);
        }
        // One block, 8 words: with 4000 keys each word must have bits.
        assert!(f.fill_ratio() > 0.5, "fill {}", f.fill_ratio());
    }

    #[test]
    fn ram_is_charged_and_capped() {
        let budget = RamBudget::new(1024);
        let s = RamScope::new(&budget);
        let f = BlockedBloomFilter::with_params(&s, 512 * 8, 4).unwrap();
        assert_eq!(budget.used(), 512);
        assert_eq!(f.bytes(), 512);
        assert!(BlockedBloomFilter::with_params(&s, 1024 * 8, 4).is_err());
        drop(f);
        assert_eq!(budget.used(), 0);
    }

    #[test]
    fn within_ram_respects_limit() {
        let s = scope(64 * 1024);
        let f = BlockedBloomFilter::within_ram(&s, 1_000_000, 16 * 1024).unwrap();
        assert!(f.bytes() <= 16 * 1024 + BLOOM_BLOCK_BYTES);
        assert!(f.k() >= 1);
    }

    #[test]
    fn union_combines_members() {
        let s = scope(64 * 1024);
        let mut a = BlockedBloomFilter::with_params(&s, 4096, 5).unwrap();
        let mut b = BlockedBloomFilter::with_params(&s, 4096, 5).unwrap();
        a.insert(1);
        b.insert(2);
        a.union(&b).unwrap();
        assert!(a.contains(1) && a.contains(2));
        let c = BlockedBloomFilter::with_params(&s, 4096 + BLOOM_BLOCK_BITS, 5).unwrap();
        assert!(a.union(&c).is_err());
    }

    #[test]
    fn degenerate_params_rejected() {
        let s = scope(1024);
        assert!(BlockedBloomFilter::with_params(&s, 0, 3).is_err());
        assert!(BlockedBloomFilter::with_params(&s, 64, 0).is_err());
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let s = scope(1024);
        let f = BlockedBloomFilter::with_params(&s, 4096, 3).unwrap();
        for i in 0..1000u64 {
            assert!(!f.contains(i));
        }
        assert_eq!(f.fill_ratio(), 0.0);
    }
}
