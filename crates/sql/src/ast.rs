//! Abstract syntax of the SQL subset.

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE ...`
    CreateTable(CreateTable),
    /// `SELECT ... FROM ... WHERE ...`
    Select(SelectStmt),
    /// `EXPLAIN ANALYZE SELECT ...` — run the query and render its plan
    /// annotated with estimated vs. actual cardinalities.
    ExplainAnalyze(SelectStmt),
    /// `INSERT INTO t VALUES (...), (...)`
    Insert(InsertStmt),
    /// `DELETE FROM t WHERE ...`
    Delete(DeleteStmt),
    /// `UPDATE t SET c = v, ... WHERE ...`
    Update(UpdateStmt),
}

/// Column type as written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeDecl {
    /// `INTEGER` / `INT`.
    Integer,
    /// `DATE`.
    Date,
    /// `CHAR(n)` / `VARCHAR(n)`.
    Char(u16),
}

/// One column in a `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDecl {
    /// Column name.
    pub name: String,
    /// Declared type (`None` for bare `REFERENCES` columns, which default
    /// to `INTEGER`).
    pub ty: Option<TypeDecl>,
    /// `PRIMARY KEY` flag.
    pub primary_key: bool,
    /// `HIDDEN` flag — the paper's single schema extension.
    pub hidden: bool,
    /// `REFERENCES table(column)`.
    pub references: Option<(String, String)>,
}

/// A `CREATE TABLE` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<ColumnDecl>,
}

/// A possibly-qualified column reference (`Vis.Date` or `Date`).
#[derive(Debug, Clone, PartialEq)]
pub struct QualCol {
    /// Table name or alias, if qualified.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

/// A literal value as written.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer.
    Int(i64),
    /// Quoted string (may coerce to DATE against a date column).
    Str(String),
    /// Unquoted date literal.
    DateLit(String),
}

/// One conjunct of a `WHERE` clause.
#[derive(Debug, Clone, PartialEq)]
pub enum WhereAtom {
    /// `column OP literal`.
    Compare {
        /// Column being selected on.
        col: QualCol,
        /// Operator.
        op: ghostdb_types::ScalarOp,
        /// Right-hand literal.
        value: Literal,
    },
    /// `column BETWEEN lo AND hi` (inclusive; desugars to `>= lo` and
    /// `<= hi` in the binder).
    Between {
        /// Column being ranged over.
        col: QualCol,
        /// Inclusive lower bound.
        lo: Literal,
        /// Inclusive upper bound.
        hi: Literal,
    },
    /// `column = column` (a join condition).
    Join {
        /// Left column.
        left: QualCol,
        /// Right column.
        right: QualCol,
    },
}

/// One item of a `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A plain column reference.
    Column(QualCol),
    /// An aggregate call `FUNC(col)` or `COUNT(*)`.
    Agg {
        /// The aggregate function.
        func: ghostdb_types::AggFunc,
        /// The operand column; `None` for `COUNT(*)`.
        arg: Option<QualCol>,
    },
}

/// What an `ORDER BY` key names.
#[derive(Debug, Clone, PartialEq)]
pub enum OrderTarget {
    /// A column, matched against the SELECT list.
    Column(QualCol),
    /// A 1-based ordinal into the SELECT list (`ORDER BY 2`).
    Ordinal(i64),
}

/// One `ORDER BY` key with its direction.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// What to sort by.
    pub target: OrderTarget,
    /// `DESC` if true (`ASC` is the default).
    pub desc: bool,
}

/// A `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Original statement text.
    pub text: String,
    /// SELECT list in statement order (columns and/or aggregates).
    pub items: Vec<SelectItem>,
    /// `FROM` tables with optional aliases.
    pub from: Vec<(String, Option<String>)>,
    /// Conjuncts of the `WHERE` clause (empty if absent).
    pub where_atoms: Vec<WhereAtom>,
    /// `GROUP BY` columns (empty if absent).
    pub group_by: Vec<QualCol>,
    /// `ORDER BY` keys (empty if absent).
    pub order_by: Vec<OrderItem>,
    /// `LIMIT` row count, if present.
    pub limit: Option<u64>,
}

/// An `INSERT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStmt {
    /// Target table.
    pub table: String,
    /// Rows of literals.
    pub rows: Vec<Vec<Literal>>,
}

/// A `DELETE` statement. The `WHERE` clause reuses the `SELECT`
/// machinery — a delete is a query that ends in a mutation — but only
/// `column OP literal` conjuncts over the target table are legal (no
/// joins).
#[derive(Debug, Clone, PartialEq)]
pub struct DeleteStmt {
    /// Original statement text (disclosed on the bus like a query's).
    pub text: String,
    /// Target table.
    pub table: String,
    /// Conjuncts of the `WHERE` clause (empty = delete every row).
    pub where_atoms: Vec<WhereAtom>,
}

/// An `UPDATE` statement (same `WHERE` shape as [`DeleteStmt`]).
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStmt {
    /// Original statement text.
    pub text: String,
    /// Target table.
    pub table: String,
    /// `SET column = literal` assignments, in statement order.
    pub assignments: Vec<(String, Literal)>,
    /// Conjuncts of the `WHERE` clause (empty = update every row).
    pub where_atoms: Vec<WhereAtom>,
}
