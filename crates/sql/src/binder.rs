//! Binding parsed statements against the catalog.

use ghostdb_catalog::{
    Analytics, ColumnRef, ColumnRole, OrderKey, OutputItem, Predicate, Schema, SchemaBuilder,
    TreeSchema, Visibility,
};
use ghostdb_types::{ColumnId, DataType, Date, GhostError, Result, ScalarOp, TableId, Value};

use crate::ast::{
    CreateTable, DeleteStmt, InsertStmt, Literal, OrderTarget, QualCol, SelectItem, SelectStmt,
    Statement, TypeDecl, UpdateStmt, WhereAtom,
};

// Note: the executor's QuerySpec lives in ghostdb-exec; depending on exec
// from sql would invert the layering, so the binder returns the raw bound
// parts ([`BoundSelect`]) and `ghostdb-core` assembles the QuerySpec.

/// The bound pieces of a SELECT, ready for `QuerySpec::bind`.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundSelect {
    /// Original statement text.
    pub sql: String,
    /// Tables in FROM.
    pub tables: Vec<TableId>,
    /// The base columns the query reads, first-use order, deduplicated.
    /// These are what the executor materializes per qualifying row; the
    /// SELECT-list shape (including aggregates) lives in `analytics`.
    pub projections: Vec<ColumnRef>,
    /// Selection predicates.
    pub predicates: Vec<Predicate>,
    /// Join conditions.
    pub joins: Vec<(ColumnRef, ColumnRef)>,
    /// SELECT-list shape, GROUP BY, ORDER BY and LIMIT.
    pub analytics: Analytics,
}

/// Build a [`Schema`] from the `CREATE TABLE` statements of a script.
///
/// Reproduction constraints (documented, checked):
/// * the first column of every table must be its `INTEGER PRIMARY KEY`
///   (dense surrogate, replicated on the device);
/// * `REFERENCES` must target the referenced table's primary key.
pub fn bind_schema(stmts: &[Statement]) -> Result<Schema> {
    let creates: Vec<&CreateTable> = stmts
        .iter()
        .filter_map(|s| match s {
            Statement::CreateTable(ct) => Some(ct),
            _ => None,
        })
        .collect();
    if creates.is_empty() {
        return Err(GhostError::sql("script contains no CREATE TABLE"));
    }
    let mut b = SchemaBuilder::new();
    for ct in &creates {
        let first = ct
            .columns
            .first()
            .ok_or_else(|| GhostError::sql(format!("table {} has no columns", ct.name)))?;
        if !first.primary_key {
            return Err(GhostError::unsupported(format!(
                "table {}: the first column must be the PRIMARY KEY",
                ct.name
            )));
        }
        if !matches!(first.ty, Some(TypeDecl::Integer) | None) {
            return Err(GhostError::unsupported(format!(
                "table {}: primary keys must be INTEGER",
                ct.name
            )));
        }
        if first.hidden {
            return Err(GhostError::unsupported(format!(
                "table {}: primary keys are replicated on the device and \
                 cannot be HIDDEN (paper §2)",
                ct.name
            )));
        }
        let mut slot = b.table(&ct.name, &first.name);
        for col in &ct.columns[1..] {
            if col.primary_key {
                return Err(GhostError::unsupported(format!(
                    "table {}: only the first column may be PRIMARY KEY",
                    ct.name
                )));
            }
            let vis = if col.hidden {
                Visibility::Hidden
            } else {
                Visibility::Visible
            };
            if let Some((target, _target_col)) = &col.references {
                if col.ty.is_some() && col.ty != Some(TypeDecl::Integer) {
                    return Err(GhostError::unsupported(format!(
                        "table {}: foreign key {} must be INTEGER",
                        ct.name, col.name
                    )));
                }
                slot = slot.foreign_key(&col.name, target, vis);
            } else {
                let ty = match col.ty {
                    Some(TypeDecl::Integer) | None => DataType::Integer,
                    Some(TypeDecl::Date) => DataType::Date,
                    Some(TypeDecl::Char(n)) => DataType::Char(n),
                };
                slot = slot.column(&col.name, ty, vis);
            }
        }
        let _ = slot; // slot borrows the builder; end its scope here
    }
    let schema = b.build()?;
    // REFERENCES must point at primary keys.
    for ct in &creates {
        for col in &ct.columns {
            if let Some((target, target_col)) = &col.references {
                let tid = schema.resolve_table(target)?;
                let pk_name = &schema.table(tid).columns[0].name;
                if !pk_name.eq_ignore_ascii_case(target_col) {
                    return Err(GhostError::unsupported(format!(
                        "{}.{} references {}.{}, which is not its primary key",
                        ct.name, col.name, target, target_col
                    )));
                }
            }
        }
    }
    Ok(schema)
}

/// The bound pieces of an INSERT: the resolved target table and every
/// row's literals coerced against the column types (in declaration
/// order, primary key first). Row-level integrity — dense PK, FK range —
/// is the storage layer's `validate_row`, which the engine runs against
/// its *live* cardinalities at apply time.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundInsert {
    /// Target table.
    pub table: TableId,
    /// Coerced rows in statement order.
    pub rows: Vec<Vec<Value>>,
}

/// Bind a parsed INSERT against the schema: resolve the table and
/// type-coerce every literal (arity and type errors surface here, before
/// any state changes).
pub fn bind_insert(schema: &Schema, stmt: &InsertStmt) -> Result<BoundInsert> {
    let tid = schema.resolve_table(&stmt.table)?;
    let tdef = schema.table(tid);
    let mut rows = Vec::with_capacity(stmt.rows.len());
    for (ri, lits) in stmt.rows.iter().enumerate() {
        if lits.len() != tdef.columns.len() {
            return Err(GhostError::sql(format!(
                "INSERT row {ri}: {} value(s) for {} column(s) of {}",
                lits.len(),
                tdef.columns.len(),
                tdef.name
            )));
        }
        let mut row = Vec::with_capacity(lits.len());
        for (cdef, lit) in tdef.columns.iter().zip(lits) {
            row.push(coerce_literal(lit, cdef.ty)?);
        }
        rows.push(row);
    }
    Ok(BoundInsert { table: tid, rows })
}

/// Coerce a literal against a column type.
pub fn coerce_literal(lit: &Literal, ty: DataType) -> Result<Value> {
    match (lit, ty) {
        (Literal::Int(v), DataType::Integer) => Ok(Value::Int(*v)),
        (Literal::Str(s), DataType::Char(cap)) => {
            if s.len() > cap as usize {
                return Err(GhostError::sql(format!(
                    "string literal exceeds CHAR({cap})"
                )));
            }
            Ok(Value::Text(s.clone()))
        }
        (Literal::Str(s), DataType::Date) => Ok(Value::Date(Date::parse(s)?)),
        (Literal::DateLit(s), DataType::Date) => Ok(Value::Date(Date::parse(s)?)),
        (lit, ty) => Err(GhostError::sql(format!(
            "literal {lit:?} incompatible with column type {ty}"
        ))),
    }
}

/// The bound pieces of a `DELETE`: the resolved target table and the
/// `WHERE` conjuncts as ordinary [`Predicate`]s over it. The engine
/// resolves the predicates to row ids through the normal
/// planner/executor — a delete is a query that ends in a mutation.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundDelete {
    /// Original statement text.
    pub sql: String,
    /// Target table.
    pub table: TableId,
    /// Conjunctive predicates (empty = every row).
    pub predicates: Vec<Predicate>,
}

/// The bound pieces of an `UPDATE` (same filter shape as
/// [`BoundDelete`], plus the coerced assignments).
#[derive(Debug, Clone, PartialEq)]
pub struct BoundUpdate {
    /// Original statement text.
    pub sql: String,
    /// Target table.
    pub table: TableId,
    /// `(column, new value)` assignments, literals coerced.
    pub assignments: Vec<(ColumnId, Value)>,
    /// Conjunctive predicates (empty = every row).
    pub predicates: Vec<Predicate>,
}

/// Bind a mutation's `WHERE` conjuncts against its single target table:
/// only `column OP literal` atoms are legal (a join condition has no
/// meaning when one table is in scope).
fn bind_mutation_filter(
    schema: &Schema,
    table: TableId,
    atoms: &[WhereAtom],
) -> Result<Vec<Predicate>> {
    let scope = FromScope {
        schema,
        entries: vec![(table, vec![schema.table(table).name.clone()])],
    };
    let mut predicates = Vec::new();
    for atom in atoms {
        match atom {
            WhereAtom::Compare { col, op, value } => {
                let cref = scope.resolve(col)?;
                let ty = schema.column_def(cref).ty;
                predicates.push(Predicate {
                    column: cref,
                    op: *op,
                    value: coerce_literal(value, ty)?,
                });
            }
            WhereAtom::Between { col, lo, hi } => {
                let cref = scope.resolve(col)?;
                let ty = schema.column_def(cref).ty;
                predicates.push(Predicate {
                    column: cref,
                    op: ghostdb_types::ScalarOp::Ge,
                    value: coerce_literal(lo, ty)?,
                });
                predicates.push(Predicate {
                    column: cref,
                    op: ghostdb_types::ScalarOp::Le,
                    value: coerce_literal(hi, ty)?,
                });
            }
            WhereAtom::Join { .. } => {
                return Err(GhostError::unsupported(
                    "mutation WHERE clauses cannot contain join conditions".to_string(),
                ))
            }
        }
    }
    Ok(predicates)
}

/// Bind a parsed `DELETE` against the schema.
pub fn bind_delete(schema: &Schema, stmt: &DeleteStmt) -> Result<BoundDelete> {
    let table = schema.resolve_table(&stmt.table)?;
    Ok(BoundDelete {
        sql: stmt.text.clone(),
        table,
        predicates: bind_mutation_filter(schema, table, &stmt.where_atoms)?,
    })
}

/// Bind a parsed `UPDATE` against the schema: resolve and coerce every
/// assignment (duplicate targets rejected), and restrict the targets to
/// **attribute** columns — primary keys are the identity the tombstone
/// layer is built on, and foreign keys are the join skeleton the SKTs
/// and key indexes precompute; rewriting either is not a value update.
pub fn bind_update(schema: &Schema, stmt: &UpdateStmt) -> Result<BoundUpdate> {
    let table = schema.resolve_table(&stmt.table)?;
    let mut assignments: Vec<(ColumnId, Value)> = Vec::with_capacity(stmt.assignments.len());
    for (name, lit) in &stmt.assignments {
        let cref = schema.resolve_column(table, name)?;
        let def = schema.column_def(cref);
        match def.role {
            ColumnRole::Attribute => {}
            ColumnRole::PrimaryKey => {
                return Err(GhostError::unsupported(format!(
                    "UPDATE of primary key {} (row identity is immutable)",
                    schema.column_name(cref)
                )))
            }
            ColumnRole::ForeignKey(_) => {
                return Err(GhostError::unsupported(format!(
                    "UPDATE of foreign key {} (delete and re-insert to re-parent a row)",
                    schema.column_name(cref)
                )))
            }
        }
        if assignments.iter().any(|(c, _)| *c == cref.column) {
            return Err(GhostError::sql(format!(
                "duplicate SET target {}",
                schema.column_name(cref)
            )));
        }
        assignments.push((cref.column, coerce_literal(lit, def.ty)?));
    }
    if assignments.is_empty() {
        return Err(GhostError::sql("UPDATE with no SET assignments"));
    }
    Ok(BoundUpdate {
        sql: stmt.text.clone(),
        table,
        assignments,
        predicates: bind_mutation_filter(schema, table, &stmt.where_atoms)?,
    })
}

struct FromScope<'a> {
    schema: &'a Schema,
    /// (table id, names it answers to).
    entries: Vec<(TableId, Vec<String>)>,
}

impl FromScope<'_> {
    fn resolve(&self, q: &QualCol) -> Result<ColumnRef> {
        match &q.table {
            Some(t) => {
                let tid = self
                    .entries
                    .iter()
                    .find(|(_, names)| names.iter().any(|n| n.eq_ignore_ascii_case(t)))
                    .map(|(id, _)| *id)
                    .ok_or_else(|| GhostError::sql(format!("table or alias {t:?} not in FROM")))?;
                self.schema.resolve_column(tid, &q.column)
            }
            None => {
                let mut hits = Vec::new();
                for (tid, _) in &self.entries {
                    if let Ok(cref) = self.schema.resolve_column(*tid, &q.column) {
                        hits.push(cref);
                    }
                }
                match hits.len() {
                    1 => Ok(hits[0]),
                    0 => Err(GhostError::sql(format!(
                        "column {:?} not found in FROM tables",
                        q.column
                    ))),
                    _ => Err(GhostError::sql(format!(
                        "column {:?} is ambiguous",
                        q.column
                    ))),
                }
            }
        }
    }
}

/// Bind a parsed SELECT against the schema: resolve the FROM scope, the
/// SELECT list (plain columns and aggregates), the WHERE conjuncts
/// (`BETWEEN` desugars into a `>= lo` / `<= hi` pair here), GROUP BY,
/// ORDER BY and LIMIT.
pub fn bind_select(schema: &Schema, _tree: &TreeSchema, stmt: &SelectStmt) -> Result<BoundSelect> {
    let mut entries = Vec::new();
    for (name, alias) in &stmt.from {
        let tid = schema.resolve_table(name)?;
        let mut names = vec![name.clone(), schema.table(tid).name.clone()];
        if let Some(a) = &schema.table(tid).alias {
            names.push(a.clone());
        }
        if let Some(a) = alias {
            names.push(a.clone());
        }
        entries.push((tid, names));
    }
    let scope = FromScope { schema, entries };

    // SELECT list → output items; `projections` accumulates the distinct
    // base columns in first-use order.
    let mut projections: Vec<ColumnRef> = Vec::new();
    let intern = |projections: &mut Vec<ColumnRef>, c: ColumnRef| {
        if !projections.contains(&c) {
            projections.push(c);
        }
    };
    let mut output = Vec::new();
    for item in &stmt.items {
        match item {
            SelectItem::Column(q) => {
                let cref = scope.resolve(q)?;
                intern(&mut projections, cref);
                output.push(OutputItem::Column(cref));
            }
            SelectItem::Agg { func, arg } => {
                let arg = match arg {
                    Some(q) => {
                        let cref = scope.resolve(q)?;
                        if func.needs_arithmetic()
                            && schema.column_def(cref).ty != DataType::Integer
                        {
                            return Err(GhostError::unsupported(format!(
                                "{func}({}) needs an INTEGER operand, not {}",
                                schema.column_name(cref),
                                schema.column_def(cref).ty
                            )));
                        }
                        intern(&mut projections, cref);
                        Some(cref)
                    }
                    None => None,
                };
                output.push(OutputItem::Agg { func: *func, arg });
            }
        }
    }

    let mut group_by = Vec::new();
    for q in &stmt.group_by {
        let cref = scope.resolve(q)?;
        intern(&mut projections, cref);
        group_by.push(cref);
    }
    // Every plain output column must be a grouping key once the query
    // groups (explicitly, or implicitly by aggregating).
    let has_agg = output.iter().any(OutputItem::is_aggregate);
    if has_agg || !group_by.is_empty() {
        for item in &output {
            if let OutputItem::Column(c) = item {
                if !group_by.contains(c) {
                    return Err(GhostError::sql(format!(
                        "column {} must appear in GROUP BY (it is not aggregated)",
                        schema.column_name(*c)
                    )));
                }
            }
        }
    }

    // ORDER BY keys name a SELECT-list item, by column or 1-based
    // ordinal.
    let mut order_by = Vec::new();
    for oi in &stmt.order_by {
        let item = match &oi.target {
            OrderTarget::Ordinal(n) => {
                if *n < 1 || *n as usize > output.len() {
                    return Err(GhostError::sql(format!(
                        "ORDER BY ordinal {n} out of range 1..={}",
                        output.len()
                    )));
                }
                *n as usize - 1
            }
            OrderTarget::Column(q) => {
                let cref = scope.resolve(q)?;
                output
                    .iter()
                    .position(|it| matches!(it, OutputItem::Column(c) if *c == cref))
                    .ok_or_else(|| {
                        GhostError::sql(format!(
                            "ORDER BY column {} is not in the SELECT list",
                            schema.column_name(cref)
                        ))
                    })?
            }
        };
        order_by.push(OrderKey {
            item,
            desc: oi.desc,
        });
    }

    let mut predicates = Vec::new();
    let mut joins = Vec::new();
    for atom in &stmt.where_atoms {
        match atom {
            WhereAtom::Compare { col, op, value } => {
                let cref = scope.resolve(col)?;
                let ty = schema.column_def(cref).ty;
                let v = coerce_literal(value, ty)?;
                predicates.push(Predicate {
                    column: cref,
                    op: *op,
                    value: v,
                });
            }
            WhereAtom::Between { col, lo, hi } => {
                let cref = scope.resolve(col)?;
                let ty = schema.column_def(cref).ty;
                predicates.push(Predicate {
                    column: cref,
                    op: ScalarOp::Ge,
                    value: coerce_literal(lo, ty)?,
                });
                predicates.push(Predicate {
                    column: cref,
                    op: ScalarOp::Le,
                    value: coerce_literal(hi, ty)?,
                });
            }
            WhereAtom::Join { left, right } => {
                joins.push((scope.resolve(left)?, scope.resolve(right)?));
            }
        }
    }
    Ok(BoundSelect {
        sql: stmt.text.clone(),
        tables: scope.entries.iter().map(|(t, _)| *t).collect(),
        projections,
        predicates,
        joins,
        analytics: Analytics {
            output,
            group_by,
            order_by,
            limit: stmt.limit,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statements;
    use ghostdb_types::ScalarOp;

    const DDL: &str = "\
        CREATE TABLE Doctor ( \
          DocID INTEGER PRIMARY KEY, \
          Name CHAR(40), \
          Country CHAR(20)); \
        CREATE TABLE Medicine ( \
          MedID INTEGER PRIMARY KEY, \
          Name CHAR(40), \
          Type CHAR(20)); \
        CREATE TABLE Visit ( \
          VisID INTEGER PRIMARY KEY, \
          Date DATE, \
          Purpose CHAR(100) HIDDEN, \
          DocID REFERENCES Doctor(DocID) HIDDEN); \
        CREATE TABLE Prescription ( \
          PreID INTEGER PRIMARY KEY, \
          Quantity INTEGER HIDDEN, \
          MedID REFERENCES Medicine(MedID) HIDDEN, \
          VisID REFERENCES Visit(VisID) HIDDEN);";

    fn schema() -> Schema {
        bind_schema(&parse_statements(DDL).unwrap()).unwrap()
    }

    #[test]
    fn schema_binds_with_visibility() {
        let s = schema();
        assert_eq!(s.table_count(), 4);
        let vis = s.resolve_table("Visit").unwrap();
        let purpose = s.resolve_column(vis, "Purpose").unwrap();
        assert!(s.is_hidden(purpose));
        let date = s.resolve_column(vis, "Date").unwrap();
        assert!(!s.is_hidden(date));
        let tree = TreeSchema::analyze(&s).unwrap();
        assert_eq!(tree.root(), s.resolve_table("Prescription").unwrap());
    }

    #[test]
    fn select_binds_paper_query() {
        let s = schema();
        let tree = TreeSchema::analyze(&s).unwrap();
        let stmts = parse_statements(
            "SELECT Med.Name, Pre.Quantity, Vis.Date \
             FROM Medicine Med, Prescription Pre, Visit Vis \
             WHERE Vis.Date > 05-11-2006 \
               AND Vis.Purpose = 'Sclerosis' \
               AND Med.Type = 'Antibiotic' \
               AND Med.MedID = Pre.MedID \
               AND Vis.VisID = Pre.VisID;",
        )
        .unwrap();
        let Statement::Select(sel) = &stmts[0] else {
            panic!()
        };
        let bound = bind_select(&s, &tree, sel).unwrap();
        assert_eq!(bound.tables.len(), 3);
        assert_eq!(bound.projections.len(), 3);
        assert_eq!(bound.predicates.len(), 3);
        assert_eq!(bound.joins.len(), 2);
        assert_eq!(bound.predicates[0].op, ScalarOp::Gt);
        assert_eq!(
            bound.predicates[0].value,
            Value::Date(Date::parse("2006-11-05").unwrap())
        );
    }

    #[test]
    fn between_desugars_to_range_pair() {
        let s = schema();
        let tree = TreeSchema::analyze(&s).unwrap();
        let stmts = parse_statements(
            "SELECT Pre.PreID FROM Prescription Pre WHERE Pre.Quantity BETWEEN 2 AND 8",
        )
        .unwrap();
        let Statement::Select(sel) = &stmts[0] else {
            panic!()
        };
        let bound = bind_select(&s, &tree, sel).unwrap();
        assert_eq!(bound.predicates.len(), 2);
        assert_eq!(bound.predicates[0].op, ScalarOp::Ge);
        assert_eq!(bound.predicates[0].value, Value::Int(2));
        assert_eq!(bound.predicates[1].op, ScalarOp::Le);
        assert_eq!(bound.predicates[1].value, Value::Int(8));
        assert_eq!(bound.predicates[0].column, bound.predicates[1].column);
        assert!(bound.analytics.is_plain());
    }

    #[test]
    fn aggregates_group_and_order_bind() {
        use ghostdb_catalog::OutputItem;
        use ghostdb_types::AggFunc;
        let s = schema();
        let tree = TreeSchema::analyze(&s).unwrap();
        let stmts = parse_statements(
            "SELECT Vis.Purpose, COUNT(*), SUM(Pre.Quantity) \
             FROM Prescription Pre, Visit Vis \
             WHERE Vis.VisID = Pre.VisID \
             GROUP BY Vis.Purpose \
             ORDER BY 3 DESC, Vis.Purpose \
             LIMIT 4",
        )
        .unwrap();
        let Statement::Select(sel) = &stmts[0] else {
            panic!()
        };
        let bound = bind_select(&s, &tree, sel).unwrap();
        // Base columns deduplicated in first-use order: Purpose, Quantity.
        assert_eq!(bound.projections.len(), 2);
        assert_eq!(bound.analytics.output.len(), 3);
        assert!(matches!(
            bound.analytics.output[1],
            OutputItem::Agg {
                func: AggFunc::Count,
                arg: None
            }
        ));
        assert_eq!(bound.analytics.group_by, vec![bound.projections[0]]);
        assert_eq!(bound.analytics.order_by.len(), 2);
        assert_eq!(bound.analytics.order_by[0].item, 2);
        assert!(bound.analytics.order_by[0].desc);
        assert_eq!(bound.analytics.order_by[1].item, 0);
        assert_eq!(bound.analytics.limit, Some(4));
        assert!(bound.analytics.has_aggregates());
    }

    #[test]
    fn analytic_misuse_rejected() {
        let s = schema();
        let tree = TreeSchema::analyze(&s).unwrap();
        let cases = [
            // Plain column outside GROUP BY.
            ("SELECT Vis.Date, COUNT(*) FROM Visit Vis", "GROUP BY"),
            // SUM over a text column.
            ("SELECT SUM(Vis.Purpose) FROM Visit Vis", "INTEGER"),
            // AVG over a date column.
            ("SELECT AVG(Vis.Date) FROM Visit Vis", "INTEGER"),
            // ORDER BY ordinal out of range.
            ("SELECT Vis.Date FROM Visit Vis ORDER BY 2", "out of range"),
            // ORDER BY a column that is not projected.
            (
                "SELECT Vis.Date FROM Visit Vis ORDER BY Vis.VisID",
                "not in the SELECT list",
            ),
        ];
        for (sql, needle) in cases {
            let stmts = parse_statements(sql).unwrap();
            let Statement::Select(sel) = &stmts[0] else {
                panic!()
            };
            let err = bind_select(&s, &tree, sel).unwrap_err().to_string();
            assert!(err.contains(needle), "{sql}: {err}");
        }
        // GROUP BY without aggregates (DISTINCT-like) binds fine.
        let stmts = parse_statements("SELECT Vis.Date FROM Visit Vis GROUP BY Vis.Date").unwrap();
        let Statement::Select(sel) = &stmts[0] else {
            panic!()
        };
        assert!(bind_select(&s, &tree, sel).is_ok());
    }

    #[test]
    fn literal_coercions() {
        assert_eq!(
            coerce_literal(&Literal::Int(5), DataType::Integer).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            coerce_literal(&Literal::Str("2001-02-03".into()), DataType::Date).unwrap(),
            Value::Date(Date::from_ymd(2001, 2, 3).unwrap())
        );
        assert!(coerce_literal(&Literal::Int(5), DataType::Date).is_err());
        assert!(coerce_literal(&Literal::Str("toolongtext".into()), DataType::Char(3)).is_err());
    }

    #[test]
    fn delete_and_update_bind() {
        let s = schema();
        let stmts = parse_statements(
            "DELETE FROM Visit WHERE Purpose = 'Checkup'; \
             UPDATE Visit SET Purpose = 'Recovered' WHERE VisID >= 3; \
             UPDATE Visit SET VisID = 9; \
             UPDATE Visit SET DocID = 0; \
             UPDATE Visit SET Purpose = 'a', Purpose = 'b'; \
             DELETE FROM Visit WHERE DocID = Doctor.DocID;",
        )
        .unwrap();
        let Statement::Delete(del) = &stmts[0] else {
            panic!()
        };
        let bound = bind_delete(&s, del).unwrap();
        assert_eq!(bound.table, s.resolve_table("Visit").unwrap());
        assert_eq!(bound.predicates.len(), 1);
        assert_eq!(bound.predicates[0].value, Value::Text("Checkup".into()));

        let Statement::Update(upd) = &stmts[1] else {
            panic!()
        };
        let bound = bind_update(&s, upd).unwrap();
        assert_eq!(bound.assignments.len(), 1);
        assert_eq!(bound.predicates.len(), 1);

        // PK / FK / duplicate targets and join filters are rejected.
        let Statement::Update(pk) = &stmts[2] else {
            panic!()
        };
        assert!(bind_update(&s, pk)
            .unwrap_err()
            .to_string()
            .contains("primary key"));
        let Statement::Update(fk) = &stmts[3] else {
            panic!()
        };
        assert!(bind_update(&s, fk)
            .unwrap_err()
            .to_string()
            .contains("foreign key"));
        let Statement::Update(dup) = &stmts[4] else {
            panic!()
        };
        assert!(bind_update(&s, dup)
            .unwrap_err()
            .to_string()
            .contains("duplicate"));
        let Statement::Delete(join) = &stmts[5] else {
            panic!()
        };
        assert!(bind_delete(&s, join)
            .unwrap_err()
            .to_string()
            .contains("join"));
    }

    #[test]
    fn hidden_primary_key_rejected() {
        let err = bind_schema(
            &parse_statements("CREATE TABLE T (id INTEGER PRIMARY KEY HIDDEN);").unwrap(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("cannot be HIDDEN"));
    }

    #[test]
    fn pk_must_be_first() {
        let err = bind_schema(
            &parse_statements("CREATE TABLE T (x INTEGER, id INTEGER PRIMARY KEY);").unwrap(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("first column"));
    }

    #[test]
    fn fk_must_reference_pk() {
        let err = bind_schema(
            &parse_statements(
                "CREATE TABLE A (aid INTEGER PRIMARY KEY, nm CHAR(5)); \
                 CREATE TABLE B (bid INTEGER PRIMARY KEY, a REFERENCES A(nm));",
            )
            .unwrap(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("not its primary key"));
    }

    #[test]
    fn ambiguous_unqualified_column() {
        let s = schema();
        let tree = TreeSchema::analyze(&s).unwrap();
        let stmts =
            parse_statements("SELECT Name FROM Doctor, Medicine WHERE Doctor.DocID = Doctor.DocID")
                .unwrap();
        let Statement::Select(sel) = &stmts[0] else {
            panic!()
        };
        assert!(bind_select(&s, &tree, sel).is_err());
    }
}
