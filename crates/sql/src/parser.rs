//! Recursive-descent parser for the SQL subset.

use ghostdb_types::{AggFunc, GhostError, Result, ScalarOp};

use crate::ast::{
    ColumnDecl, CreateTable, DeleteStmt, InsertStmt, Literal, OrderItem, OrderTarget, QualCol,
    SelectItem, SelectStmt, Statement, TypeDecl, UpdateStmt, WhereAtom,
};
use crate::lexer::{tokenize, Token, TokenKind};

struct Parser<'a> {
    toks: Vec<Token>,
    pos: usize,
    text: &'a str,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&TokenKind> {
        self.toks.get(self.pos).map(|t| &t.kind)
    }

    fn peek2(&self) -> Option<&TokenKind> {
        self.toks.get(self.pos + 1).map(|t| &t.kind)
    }

    fn here(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|t| t.pos)
            .unwrap_or(self.text.len())
    }

    fn next(&mut self) -> Option<TokenKind> {
        let t = self.toks.get(self.pos).map(|t| t.kind.clone());
        self.pos += 1;
        t
    }

    fn err(&self, msg: impl Into<String>) -> GhostError {
        GhostError::sql_at(msg, self.here())
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        match self.next() {
            Some(k) if &k == kind => Ok(()),
            other => Err(self.err(format!("expected {kind:?}, found {other:?}"))),
        }
    }

    /// Consume an identifier (any case) and return it.
    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(TokenKind::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    /// Peek: is the next token the given keyword (case-insensitive)?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(TokenKind::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    /// Consume the given keyword or error.
    fn kw(&mut self, kw: &str) -> Result<()> {
        if self.at_kw(kw) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}")))
        }
    }

    /// Consume the keyword if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.at_kw("CREATE") {
            self.create_table().map(Statement::CreateTable)
        } else if self.at_kw("SELECT") {
            self.select().map(Statement::Select)
        } else if self.at_kw("EXPLAIN") {
            self.kw("EXPLAIN")?;
            self.kw("ANALYZE")?;
            // Record only the SELECT itself as the statement text: it is
            // what actually executes (and crosses the spied bus).
            let start = self.here();
            let mut sel = self.select()?;
            sel.text = self.text[start..].trim().to_string();
            Ok(Statement::ExplainAnalyze(sel))
        } else if self.at_kw("INSERT") {
            self.insert().map(Statement::Insert)
        } else if self.at_kw("DELETE") {
            self.delete().map(Statement::Delete)
        } else if self.at_kw("UPDATE") {
            self.update().map(Statement::Update)
        } else {
            Err(self.err("expected CREATE TABLE, SELECT, INSERT, DELETE or UPDATE"))
        }
    }

    fn type_decl(&mut self) -> Result<TypeDecl> {
        let name = self.ident()?;
        match name.to_ascii_uppercase().as_str() {
            "INTEGER" | "INT" => Ok(TypeDecl::Integer),
            "DATE" => Ok(TypeDecl::Date),
            "CHAR" | "VARCHAR" => {
                self.expect(&TokenKind::LParen)?;
                let n = match self.next() {
                    Some(TokenKind::Int(v)) if v > 0 && v <= u16::MAX as i64 => v as u16,
                    other => return Err(self.err(format!("bad CHAR length {other:?}"))),
                };
                self.expect(&TokenKind::RParen)?;
                Ok(TypeDecl::Char(n))
            }
            other => Err(self.err(format!("unknown type {other}"))),
        }
    }

    fn create_table(&mut self) -> Result<CreateTable> {
        self.kw("CREATE")?;
        self.kw("TABLE")?;
        let name = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.ident()?;
            // Type is optional when REFERENCES follows directly (the
            // paper writes `DocID REFERENCES Doctor(DocID) HIDDEN`).
            let ty = if self.at_kw("REFERENCES")
                || self.at_kw("HIDDEN")
                || self.at_kw("PRIMARY")
                || matches!(self.peek(), Some(TokenKind::Comma | TokenKind::RParen))
            {
                None
            } else {
                Some(self.type_decl()?)
            };
            let mut decl = ColumnDecl {
                name: col_name,
                ty,
                primary_key: false,
                hidden: false,
                references: None,
            };
            loop {
                if self.eat_kw("PRIMARY") {
                    self.kw("KEY")?;
                    decl.primary_key = true;
                } else if self.eat_kw("HIDDEN") {
                    decl.hidden = true;
                } else if self.eat_kw("REFERENCES") {
                    let t = self.ident()?;
                    self.expect(&TokenKind::LParen)?;
                    let c = self.ident()?;
                    self.expect(&TokenKind::RParen)?;
                    decl.references = Some((t, c));
                } else {
                    break;
                }
            }
            columns.push(decl);
            match self.next() {
                Some(TokenKind::Comma) => continue,
                Some(TokenKind::RParen) => break,
                other => return Err(self.err(format!("expected , or ) found {other:?}"))),
            }
        }
        let _ = self.eat_semi();
        Ok(CreateTable { name, columns })
    }

    fn eat_semi(&mut self) -> bool {
        if matches!(self.peek(), Some(TokenKind::Semi)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn qual_col(&mut self) -> Result<QualCol> {
        let first = self.ident()?;
        if matches!(self.peek(), Some(TokenKind::Dot)) {
            self.pos += 1;
            let col = self.ident()?;
            Ok(QualCol {
                table: Some(first),
                column: col,
            })
        } else {
            Ok(QualCol {
                table: None,
                column: first,
            })
        }
    }

    fn literal(&mut self) -> Result<Literal> {
        match self.next() {
            Some(TokenKind::Int(v)) => Ok(Literal::Int(v)),
            Some(TokenKind::Str(s)) => Ok(Literal::Str(s)),
            Some(TokenKind::DateLit(s)) => Ok(Literal::DateLit(s)),
            other => Err(self.err(format!("expected literal, found {other:?}"))),
        }
    }

    /// One SELECT-list item: an aggregate call when an aggregate function
    /// name is directly followed by `(`, a plain column otherwise (so a
    /// column legitimately named `count` still parses).
    fn select_item(&mut self) -> Result<SelectItem> {
        if let (Some(TokenKind::Ident(name)), Some(TokenKind::LParen)) = (self.peek(), self.peek2())
        {
            if let Some(func) = AggFunc::parse(name) {
                self.pos += 2; // name + (
                let arg = if matches!(self.peek(), Some(TokenKind::Star)) {
                    if func != AggFunc::Count {
                        return Err(self.err(format!("{func}(*) is not supported — only COUNT(*)")));
                    }
                    self.pos += 1;
                    None
                } else {
                    Some(self.qual_col()?)
                };
                self.expect(&TokenKind::RParen)?;
                return Ok(SelectItem::Agg { func, arg });
            }
        }
        Ok(SelectItem::Column(self.qual_col()?))
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.kw("SELECT")?;
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if matches!(self.peek(), Some(TokenKind::Comma)) {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.kw("FROM")?;
        let mut from = Vec::new();
        // Words that end the FROM list and therefore cannot be aliases.
        const CLAUSE_KWS: &[&str] = &["WHERE", "AND", "GROUP", "ORDER", "LIMIT"];
        loop {
            let table = self.ident()?;
            // Optional alias (not a keyword).
            let alias = match self.peek() {
                Some(TokenKind::Ident(s))
                    if !CLAUSE_KWS.iter().any(|k| s.eq_ignore_ascii_case(k)) =>
                {
                    let a = s.clone();
                    self.pos += 1;
                    Some(a)
                }
                _ => None,
            };
            from.push((table, alias));
            if matches!(self.peek(), Some(TokenKind::Comma)) {
                self.pos += 1;
            } else {
                break;
            }
        }
        let mut where_atoms = Vec::new();
        if self.eat_kw("WHERE") {
            loop {
                where_atoms.push(self.where_atom()?);
                if !self.eat_kw("AND") {
                    break;
                }
            }
        }
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.kw("BY")?;
            loop {
                group_by.push(self.qual_col()?);
                if matches!(self.peek(), Some(TokenKind::Comma)) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.kw("BY")?;
            loop {
                let target = match self.peek() {
                    Some(TokenKind::Int(n)) => {
                        let n = *n;
                        self.pos += 1;
                        OrderTarget::Ordinal(n)
                    }
                    _ => OrderTarget::Column(self.qual_col()?),
                };
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    let _ = self.eat_kw("ASC");
                    false
                };
                order_by.push(OrderItem { target, desc });
                if matches!(self.peek(), Some(TokenKind::Comma)) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.next() {
                Some(TokenKind::Int(n)) if n >= 0 => Some(n as u64),
                other => return Err(self.err(format!("LIMIT needs a row count, found {other:?}"))),
            }
        } else {
            None
        };
        let _ = self.eat_semi();
        Ok(SelectStmt {
            text: self.text.to_string(),
            items,
            from,
            where_atoms,
            group_by,
            order_by,
            limit,
        })
    }

    fn where_atom(&mut self) -> Result<WhereAtom> {
        let left = self.qual_col()?;
        if self.eat_kw("BETWEEN") {
            // `col BETWEEN lo AND hi`: the AND belongs to the atom, so it
            // is consumed here and the conjunct loop never sees it.
            let lo = self.literal()?;
            self.kw("AND")?;
            let hi = self.literal()?;
            return Ok(WhereAtom::Between { col: left, lo, hi });
        }
        let op = match self.next() {
            Some(TokenKind::Eq) => ScalarOp::Eq,
            Some(TokenKind::Lt) => ScalarOp::Lt,
            Some(TokenKind::Le) => ScalarOp::Le,
            Some(TokenKind::Gt) => ScalarOp::Gt,
            Some(TokenKind::Ge) => ScalarOp::Ge,
            other => return Err(self.err(format!("expected comparison, found {other:?}"))),
        };
        // Column-vs-column (join) only for equality.
        if matches!(self.peek(), Some(TokenKind::Ident(_))) {
            if op != ScalarOp::Eq {
                return Err(self.err("only equality joins are supported"));
            }
            let right = self.qual_col()?;
            return Ok(WhereAtom::Join { left, right });
        }
        let value = self.literal()?;
        Ok(WhereAtom::Compare {
            col: left,
            op,
            value,
        })
    }

    fn insert(&mut self) -> Result<InsertStmt> {
        self.kw("INSERT")?;
        self.kw("INTO")?;
        let table = self.ident()?;
        self.kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&TokenKind::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.literal()?);
                match self.next() {
                    Some(TokenKind::Comma) => continue,
                    Some(TokenKind::RParen) => break,
                    other => return Err(self.err(format!("expected , or ) found {other:?}"))),
                }
            }
            rows.push(row);
            if matches!(self.peek(), Some(TokenKind::Comma)) {
                self.pos += 1;
            } else {
                break;
            }
        }
        let _ = self.eat_semi();
        Ok(InsertStmt { table, rows })
    }

    /// Shared `WHERE` clause of DELETE/UPDATE (optional; conjuncts).
    fn where_clause(&mut self) -> Result<Vec<WhereAtom>> {
        let mut atoms = Vec::new();
        if self.eat_kw("WHERE") {
            loop {
                atoms.push(self.where_atom()?);
                if !self.eat_kw("AND") {
                    break;
                }
            }
        }
        Ok(atoms)
    }

    fn delete(&mut self) -> Result<DeleteStmt> {
        self.kw("DELETE")?;
        self.kw("FROM")?;
        let table = self.ident()?;
        let where_atoms = self.where_clause()?;
        let _ = self.eat_semi();
        Ok(DeleteStmt {
            text: self.text.to_string(),
            table,
            where_atoms,
        })
    }

    fn update(&mut self) -> Result<UpdateStmt> {
        self.kw("UPDATE")?;
        let table = self.ident()?;
        self.kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&TokenKind::Eq)?;
            assignments.push((col, self.literal()?));
            if matches!(self.peek(), Some(TokenKind::Comma)) {
                self.pos += 1;
            } else {
                break;
            }
        }
        let where_atoms = self.where_clause()?;
        let _ = self.eat_semi();
        Ok(UpdateStmt {
            text: self.text.to_string(),
            table,
            assignments,
            where_atoms,
        })
    }
}

/// Parse a script of `;`-separated statements.
pub fn parse_statements(input: &str) -> Result<Vec<Statement>> {
    let toks = tokenize(input)?;
    let mut p = Parser {
        toks,
        pos: 0,
        text: input,
    };
    let mut out = Vec::new();
    while p.peek().is_some() {
        out.push(p.statement()?);
        while p.eat_semi() {}
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_create_table() {
        let stmts = parse_statements(
            "CREATE TABLE Visit ( \
               VisID INTEGER PRIMARY KEY, \
               Date DATE, \
               Purpose CHAR(100) HIDDEN, \
               DocID REFERENCES Doctor(DocID) HIDDEN, \
               PatID REFERENCES Patient(PatID) HIDDEN);",
        )
        .unwrap();
        let Statement::CreateTable(ct) = &stmts[0] else {
            panic!("not a create table")
        };
        assert_eq!(ct.name, "Visit");
        assert_eq!(ct.columns.len(), 5);
        assert!(ct.columns[0].primary_key);
        assert!(!ct.columns[0].hidden);
        assert_eq!(ct.columns[2].ty, Some(TypeDecl::Char(100)));
        assert!(ct.columns[2].hidden);
        assert_eq!(
            ct.columns[3].references,
            Some(("Doctor".into(), "DocID".into()))
        );
        assert!(ct.columns[3].ty.is_none());
        assert!(ct.columns[3].hidden);
    }

    #[test]
    fn parses_the_paper_query() {
        let stmts = parse_statements(
            "SELECT Med.Name, Pre.Quantity, Vis.Date \
             FROM Medicine Med, Prescription Pre, Visit Vis \
             WHERE Vis.Date > 05-11-2006 /*VISIBLE*/ \
               AND Vis.Purpose = \u{201C}Sclerosis\u{201D} /*HIDDEN*/ \
               AND Med.Type = \u{201C}Antibiotic\u{201D} /*VISIBLE*/ \
               AND Med.MedID = Pre.MedID \
               AND Vis.VisID = Pre.VisID;",
        )
        .unwrap();
        let Statement::Select(sel) = &stmts[0] else {
            panic!("not a select")
        };
        assert_eq!(sel.items.len(), 3);
        assert_eq!(sel.from.len(), 3);
        assert_eq!(sel.from[0], ("Medicine".into(), Some("Med".into())));
        assert_eq!(sel.where_atoms.len(), 5);
        assert!(matches!(
            &sel.where_atoms[0],
            WhereAtom::Compare {
                op: ScalarOp::Gt,
                value: Literal::DateLit(d),
                ..
            } if d == "05-11-2006"
        ));
        assert!(matches!(&sel.where_atoms[3], WhereAtom::Join { .. }));
    }

    #[test]
    fn parses_explain_analyze() {
        let stmts = parse_statements(
            "EXPLAIN ANALYZE SELECT Vis.Date FROM Visit Vis WHERE Vis.Date > 05-11-2006;",
        )
        .unwrap();
        let Statement::ExplainAnalyze(sel) = &stmts[0] else {
            panic!("not an explain analyze")
        };
        assert_eq!(sel.from, vec![("Visit".into(), Some("Vis".into()))]);
        // The recorded statement text is the bare SELECT — the prefix is
        // a driver directive, not part of the executed query.
        assert!(sel.text.starts_with("SELECT"), "{}", sel.text);

        // ANALYZE is mandatory (plain EXPLAIN is the explain() API).
        assert!(parse_statements("EXPLAIN SELECT Date FROM Visit;").is_err());
    }

    #[test]
    fn parses_insert() {
        let stmts =
            parse_statements("INSERT INTO Medicine VALUES (0, 'Aspirin'), (1, 'Statin');").unwrap();
        let Statement::Insert(ins) = &stmts[0] else {
            panic!("not an insert")
        };
        assert_eq!(ins.table, "Medicine");
        assert_eq!(ins.rows.len(), 2);
        assert_eq!(ins.rows[1][1], Literal::Str("Statin".into()));
    }

    #[test]
    fn parses_delete_and_update() {
        let stmts = parse_statements(
            "DELETE FROM Visit WHERE Purpose = 'Checkup' AND Severity >= 3; \
             DELETE FROM Visit; \
             UPDATE Visit SET Purpose = 'Recovered', Severity = 0 WHERE VisID = 7;",
        )
        .unwrap();
        let Statement::Delete(del) = &stmts[0] else {
            panic!("not a delete")
        };
        assert_eq!(del.table, "Visit");
        assert_eq!(del.where_atoms.len(), 2);
        let Statement::Delete(all) = &stmts[1] else {
            panic!("not a delete")
        };
        assert!(all.where_atoms.is_empty());
        let Statement::Update(upd) = &stmts[2] else {
            panic!("not an update")
        };
        assert_eq!(upd.table, "Visit");
        assert_eq!(
            upd.assignments,
            vec![
                ("Purpose".into(), Literal::Str("Recovered".into())),
                ("Severity".into(), Literal::Int(0)),
            ]
        );
        assert_eq!(upd.where_atoms.len(), 1);
        // Malformed variants.
        assert!(parse_statements("DELETE Visit").is_err());
        assert!(parse_statements("UPDATE Visit WHERE x = 1").is_err());
        assert!(parse_statements("UPDATE Visit SET").is_err());
    }

    #[test]
    fn multiple_statements() {
        let stmts = parse_statements(
            "CREATE TABLE A (x INTEGER PRIMARY KEY); \
             CREATE TABLE B (y INTEGER PRIMARY KEY);",
        )
        .unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn error_cases() {
        assert!(parse_statements("DROP TABLE x").is_err());
        assert!(parse_statements("SELECT FROM t").is_err());
        assert!(parse_statements("CREATE TABLE t (a BLOB)").is_err());
        assert!(parse_statements("SELECT a FROM t WHERE a > b").is_err()); // non-eq join
        assert!(parse_statements("SELECT a FROM t WHERE").is_err());
    }

    #[test]
    fn unqualified_columns_and_no_where() {
        let stmts = parse_statements("SELECT Name FROM Medicine").unwrap();
        let Statement::Select(sel) = &stmts[0] else {
            panic!()
        };
        let SelectItem::Column(col) = &sel.items[0] else {
            panic!("not a plain column")
        };
        assert_eq!(col.table, None);
        assert!(sel.where_atoms.is_empty());
        assert!(sel.group_by.is_empty());
        assert!(sel.order_by.is_empty());
        assert_eq!(sel.limit, None);
    }

    #[test]
    fn parses_between() {
        let stmts = parse_statements(
            "SELECT v.a FROM v WHERE v.a BETWEEN 3 AND 9 AND v.b = 1 AND v.c BETWEEN 0 AND 2",
        )
        .unwrap();
        let Statement::Select(sel) = &stmts[0] else {
            panic!()
        };
        assert_eq!(sel.where_atoms.len(), 3);
        assert!(matches!(
            &sel.where_atoms[0],
            WhereAtom::Between {
                lo: Literal::Int(3),
                hi: Literal::Int(9),
                ..
            }
        ));
        assert!(matches!(&sel.where_atoms[1], WhereAtom::Compare { .. }));
        assert!(matches!(&sel.where_atoms[2], WhereAtom::Between { .. }));
        // BETWEEN missing its AND.
        assert!(parse_statements("SELECT a FROM t WHERE a BETWEEN 1 2").is_err());
    }

    #[test]
    fn parses_aggregates_group_order_limit() {
        use ghostdb_types::AggFunc;
        let stmts = parse_statements(
            "SELECT Vis.Purpose, COUNT(*), SUM(Pre.Quantity), avg(Pre.Quantity) \
             FROM Prescription Pre, Visit Vis \
             WHERE Vis.VisID = Pre.VisID \
             GROUP BY Vis.Purpose \
             ORDER BY 3 DESC, Vis.Purpose ASC \
             LIMIT 5;",
        )
        .unwrap();
        let Statement::Select(sel) = &stmts[0] else {
            panic!()
        };
        assert_eq!(sel.items.len(), 4);
        assert!(matches!(
            &sel.items[1],
            SelectItem::Agg {
                func: AggFunc::Count,
                arg: None
            }
        ));
        assert!(matches!(
            &sel.items[2],
            SelectItem::Agg {
                func: AggFunc::Sum,
                arg: Some(q)
            } if q.column == "Quantity"
        ));
        assert!(matches!(
            &sel.items[3],
            SelectItem::Agg {
                func: AggFunc::Avg,
                ..
            }
        ));
        assert_eq!(sel.group_by.len(), 1);
        assert_eq!(sel.group_by[0].column, "Purpose");
        assert_eq!(sel.order_by.len(), 2);
        assert!(matches!(
            &sel.order_by[0],
            OrderItem {
                target: OrderTarget::Ordinal(3),
                desc: true
            }
        ));
        assert!(matches!(
            &sel.order_by[1],
            OrderItem {
                target: OrderTarget::Column(q),
                desc: false
            } if q.column == "Purpose"
        ));
        assert_eq!(sel.limit, Some(5));
        // A column named like a function, not followed by `(`, stays a
        // plain column.
        let stmts = parse_statements("SELECT count FROM t").unwrap();
        let Statement::Select(sel) = &stmts[0] else {
            panic!()
        };
        assert!(matches!(&sel.items[0], SelectItem::Column(_)));
        // MIN/MAX parse; SUM(*) does not; LIMIT needs an integer.
        assert!(parse_statements("SELECT MIN(a), MAX(b) FROM t").is_ok());
        assert!(parse_statements("SELECT SUM(*) FROM t").is_err());
        assert!(parse_statements("SELECT a FROM t LIMIT x").is_err());
        assert!(parse_statements("SELECT a FROM t GROUP a").is_err());
    }
}
