//! Recursive-descent parser for the SQL subset.

use ghostdb_types::{GhostError, Result, ScalarOp};

use crate::ast::{
    ColumnDecl, CreateTable, DeleteStmt, InsertStmt, Literal, QualCol, SelectStmt, Statement,
    TypeDecl, UpdateStmt, WhereAtom,
};
use crate::lexer::{tokenize, Token, TokenKind};

struct Parser<'a> {
    toks: Vec<Token>,
    pos: usize,
    text: &'a str,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&TokenKind> {
        self.toks.get(self.pos).map(|t| &t.kind)
    }

    fn here(&self) -> usize {
        self.toks
            .get(self.pos)
            .map(|t| t.pos)
            .unwrap_or(self.text.len())
    }

    fn next(&mut self) -> Option<TokenKind> {
        let t = self.toks.get(self.pos).map(|t| t.kind.clone());
        self.pos += 1;
        t
    }

    fn err(&self, msg: impl Into<String>) -> GhostError {
        GhostError::sql_at(msg, self.here())
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        match self.next() {
            Some(k) if &k == kind => Ok(()),
            other => Err(self.err(format!("expected {kind:?}, found {other:?}"))),
        }
    }

    /// Consume an identifier (any case) and return it.
    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(TokenKind::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    /// Peek: is the next token the given keyword (case-insensitive)?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(TokenKind::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    /// Consume the given keyword or error.
    fn kw(&mut self, kw: &str) -> Result<()> {
        if self.at_kw(kw) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}")))
        }
    }

    /// Consume the keyword if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.at_kw("CREATE") {
            self.create_table().map(Statement::CreateTable)
        } else if self.at_kw("SELECT") {
            self.select().map(Statement::Select)
        } else if self.at_kw("INSERT") {
            self.insert().map(Statement::Insert)
        } else if self.at_kw("DELETE") {
            self.delete().map(Statement::Delete)
        } else if self.at_kw("UPDATE") {
            self.update().map(Statement::Update)
        } else {
            Err(self.err("expected CREATE TABLE, SELECT, INSERT, DELETE or UPDATE"))
        }
    }

    fn type_decl(&mut self) -> Result<TypeDecl> {
        let name = self.ident()?;
        match name.to_ascii_uppercase().as_str() {
            "INTEGER" | "INT" => Ok(TypeDecl::Integer),
            "DATE" => Ok(TypeDecl::Date),
            "CHAR" | "VARCHAR" => {
                self.expect(&TokenKind::LParen)?;
                let n = match self.next() {
                    Some(TokenKind::Int(v)) if v > 0 && v <= u16::MAX as i64 => v as u16,
                    other => return Err(self.err(format!("bad CHAR length {other:?}"))),
                };
                self.expect(&TokenKind::RParen)?;
                Ok(TypeDecl::Char(n))
            }
            other => Err(self.err(format!("unknown type {other}"))),
        }
    }

    fn create_table(&mut self) -> Result<CreateTable> {
        self.kw("CREATE")?;
        self.kw("TABLE")?;
        let name = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.ident()?;
            // Type is optional when REFERENCES follows directly (the
            // paper writes `DocID REFERENCES Doctor(DocID) HIDDEN`).
            let ty = if self.at_kw("REFERENCES")
                || self.at_kw("HIDDEN")
                || self.at_kw("PRIMARY")
                || matches!(self.peek(), Some(TokenKind::Comma | TokenKind::RParen))
            {
                None
            } else {
                Some(self.type_decl()?)
            };
            let mut decl = ColumnDecl {
                name: col_name,
                ty,
                primary_key: false,
                hidden: false,
                references: None,
            };
            loop {
                if self.eat_kw("PRIMARY") {
                    self.kw("KEY")?;
                    decl.primary_key = true;
                } else if self.eat_kw("HIDDEN") {
                    decl.hidden = true;
                } else if self.eat_kw("REFERENCES") {
                    let t = self.ident()?;
                    self.expect(&TokenKind::LParen)?;
                    let c = self.ident()?;
                    self.expect(&TokenKind::RParen)?;
                    decl.references = Some((t, c));
                } else {
                    break;
                }
            }
            columns.push(decl);
            match self.next() {
                Some(TokenKind::Comma) => continue,
                Some(TokenKind::RParen) => break,
                other => return Err(self.err(format!("expected , or ) found {other:?}"))),
            }
        }
        let _ = self.eat_semi();
        Ok(CreateTable { name, columns })
    }

    fn eat_semi(&mut self) -> bool {
        if matches!(self.peek(), Some(TokenKind::Semi)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn qual_col(&mut self) -> Result<QualCol> {
        let first = self.ident()?;
        if matches!(self.peek(), Some(TokenKind::Dot)) {
            self.pos += 1;
            let col = self.ident()?;
            Ok(QualCol {
                table: Some(first),
                column: col,
            })
        } else {
            Ok(QualCol {
                table: None,
                column: first,
            })
        }
    }

    fn literal(&mut self) -> Result<Literal> {
        match self.next() {
            Some(TokenKind::Int(v)) => Ok(Literal::Int(v)),
            Some(TokenKind::Str(s)) => Ok(Literal::Str(s)),
            Some(TokenKind::DateLit(s)) => Ok(Literal::DateLit(s)),
            other => Err(self.err(format!("expected literal, found {other:?}"))),
        }
    }

    fn select(&mut self) -> Result<SelectStmt> {
        self.kw("SELECT")?;
        let mut projections = Vec::new();
        loop {
            projections.push(self.qual_col()?);
            if matches!(self.peek(), Some(TokenKind::Comma)) {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.kw("FROM")?;
        let mut from = Vec::new();
        loop {
            let table = self.ident()?;
            // Optional alias (not a keyword).
            let alias = match self.peek() {
                Some(TokenKind::Ident(s))
                    if !s.eq_ignore_ascii_case("WHERE") && !s.eq_ignore_ascii_case("AND") =>
                {
                    let a = s.clone();
                    self.pos += 1;
                    Some(a)
                }
                _ => None,
            };
            from.push((table, alias));
            if matches!(self.peek(), Some(TokenKind::Comma)) {
                self.pos += 1;
            } else {
                break;
            }
        }
        let mut where_atoms = Vec::new();
        if self.eat_kw("WHERE") {
            loop {
                where_atoms.push(self.where_atom()?);
                if !self.eat_kw("AND") {
                    break;
                }
            }
        }
        let _ = self.eat_semi();
        Ok(SelectStmt {
            text: self.text.to_string(),
            projections,
            from,
            where_atoms,
        })
    }

    fn where_atom(&mut self) -> Result<WhereAtom> {
        let left = self.qual_col()?;
        let op = match self.next() {
            Some(TokenKind::Eq) => ScalarOp::Eq,
            Some(TokenKind::Lt) => ScalarOp::Lt,
            Some(TokenKind::Le) => ScalarOp::Le,
            Some(TokenKind::Gt) => ScalarOp::Gt,
            Some(TokenKind::Ge) => ScalarOp::Ge,
            other => return Err(self.err(format!("expected comparison, found {other:?}"))),
        };
        // Column-vs-column (join) only for equality.
        if matches!(self.peek(), Some(TokenKind::Ident(_))) {
            if op != ScalarOp::Eq {
                return Err(self.err("only equality joins are supported"));
            }
            let right = self.qual_col()?;
            return Ok(WhereAtom::Join { left, right });
        }
        let value = self.literal()?;
        Ok(WhereAtom::Compare {
            col: left,
            op,
            value,
        })
    }

    fn insert(&mut self) -> Result<InsertStmt> {
        self.kw("INSERT")?;
        self.kw("INTO")?;
        let table = self.ident()?;
        self.kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&TokenKind::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.literal()?);
                match self.next() {
                    Some(TokenKind::Comma) => continue,
                    Some(TokenKind::RParen) => break,
                    other => return Err(self.err(format!("expected , or ) found {other:?}"))),
                }
            }
            rows.push(row);
            if matches!(self.peek(), Some(TokenKind::Comma)) {
                self.pos += 1;
            } else {
                break;
            }
        }
        let _ = self.eat_semi();
        Ok(InsertStmt { table, rows })
    }

    /// Shared `WHERE` clause of DELETE/UPDATE (optional; conjuncts).
    fn where_clause(&mut self) -> Result<Vec<WhereAtom>> {
        let mut atoms = Vec::new();
        if self.eat_kw("WHERE") {
            loop {
                atoms.push(self.where_atom()?);
                if !self.eat_kw("AND") {
                    break;
                }
            }
        }
        Ok(atoms)
    }

    fn delete(&mut self) -> Result<DeleteStmt> {
        self.kw("DELETE")?;
        self.kw("FROM")?;
        let table = self.ident()?;
        let where_atoms = self.where_clause()?;
        let _ = self.eat_semi();
        Ok(DeleteStmt {
            text: self.text.to_string(),
            table,
            where_atoms,
        })
    }

    fn update(&mut self) -> Result<UpdateStmt> {
        self.kw("UPDATE")?;
        let table = self.ident()?;
        self.kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&TokenKind::Eq)?;
            assignments.push((col, self.literal()?));
            if matches!(self.peek(), Some(TokenKind::Comma)) {
                self.pos += 1;
            } else {
                break;
            }
        }
        let where_atoms = self.where_clause()?;
        let _ = self.eat_semi();
        Ok(UpdateStmt {
            text: self.text.to_string(),
            table,
            assignments,
            where_atoms,
        })
    }
}

/// Parse a script of `;`-separated statements.
pub fn parse_statements(input: &str) -> Result<Vec<Statement>> {
    let toks = tokenize(input)?;
    let mut p = Parser {
        toks,
        pos: 0,
        text: input,
    };
    let mut out = Vec::new();
    while p.peek().is_some() {
        out.push(p.statement()?);
        while p.eat_semi() {}
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_create_table() {
        let stmts = parse_statements(
            "CREATE TABLE Visit ( \
               VisID INTEGER PRIMARY KEY, \
               Date DATE, \
               Purpose CHAR(100) HIDDEN, \
               DocID REFERENCES Doctor(DocID) HIDDEN, \
               PatID REFERENCES Patient(PatID) HIDDEN);",
        )
        .unwrap();
        let Statement::CreateTable(ct) = &stmts[0] else {
            panic!("not a create table")
        };
        assert_eq!(ct.name, "Visit");
        assert_eq!(ct.columns.len(), 5);
        assert!(ct.columns[0].primary_key);
        assert!(!ct.columns[0].hidden);
        assert_eq!(ct.columns[2].ty, Some(TypeDecl::Char(100)));
        assert!(ct.columns[2].hidden);
        assert_eq!(
            ct.columns[3].references,
            Some(("Doctor".into(), "DocID".into()))
        );
        assert!(ct.columns[3].ty.is_none());
        assert!(ct.columns[3].hidden);
    }

    #[test]
    fn parses_the_paper_query() {
        let stmts = parse_statements(
            "SELECT Med.Name, Pre.Quantity, Vis.Date \
             FROM Medicine Med, Prescription Pre, Visit Vis \
             WHERE Vis.Date > 05-11-2006 /*VISIBLE*/ \
               AND Vis.Purpose = \u{201C}Sclerosis\u{201D} /*HIDDEN*/ \
               AND Med.Type = \u{201C}Antibiotic\u{201D} /*VISIBLE*/ \
               AND Med.MedID = Pre.MedID \
               AND Vis.VisID = Pre.VisID;",
        )
        .unwrap();
        let Statement::Select(sel) = &stmts[0] else {
            panic!("not a select")
        };
        assert_eq!(sel.projections.len(), 3);
        assert_eq!(sel.from.len(), 3);
        assert_eq!(sel.from[0], ("Medicine".into(), Some("Med".into())));
        assert_eq!(sel.where_atoms.len(), 5);
        assert!(matches!(
            &sel.where_atoms[0],
            WhereAtom::Compare {
                op: ScalarOp::Gt,
                value: Literal::DateLit(d),
                ..
            } if d == "05-11-2006"
        ));
        assert!(matches!(&sel.where_atoms[3], WhereAtom::Join { .. }));
    }

    #[test]
    fn parses_insert() {
        let stmts =
            parse_statements("INSERT INTO Medicine VALUES (0, 'Aspirin'), (1, 'Statin');").unwrap();
        let Statement::Insert(ins) = &stmts[0] else {
            panic!("not an insert")
        };
        assert_eq!(ins.table, "Medicine");
        assert_eq!(ins.rows.len(), 2);
        assert_eq!(ins.rows[1][1], Literal::Str("Statin".into()));
    }

    #[test]
    fn parses_delete_and_update() {
        let stmts = parse_statements(
            "DELETE FROM Visit WHERE Purpose = 'Checkup' AND Severity >= 3; \
             DELETE FROM Visit; \
             UPDATE Visit SET Purpose = 'Recovered', Severity = 0 WHERE VisID = 7;",
        )
        .unwrap();
        let Statement::Delete(del) = &stmts[0] else {
            panic!("not a delete")
        };
        assert_eq!(del.table, "Visit");
        assert_eq!(del.where_atoms.len(), 2);
        let Statement::Delete(all) = &stmts[1] else {
            panic!("not a delete")
        };
        assert!(all.where_atoms.is_empty());
        let Statement::Update(upd) = &stmts[2] else {
            panic!("not an update")
        };
        assert_eq!(upd.table, "Visit");
        assert_eq!(
            upd.assignments,
            vec![
                ("Purpose".into(), Literal::Str("Recovered".into())),
                ("Severity".into(), Literal::Int(0)),
            ]
        );
        assert_eq!(upd.where_atoms.len(), 1);
        // Malformed variants.
        assert!(parse_statements("DELETE Visit").is_err());
        assert!(parse_statements("UPDATE Visit WHERE x = 1").is_err());
        assert!(parse_statements("UPDATE Visit SET").is_err());
    }

    #[test]
    fn multiple_statements() {
        let stmts = parse_statements(
            "CREATE TABLE A (x INTEGER PRIMARY KEY); \
             CREATE TABLE B (y INTEGER PRIMARY KEY);",
        )
        .unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn error_cases() {
        assert!(parse_statements("DROP TABLE x").is_err());
        assert!(parse_statements("SELECT FROM t").is_err());
        assert!(parse_statements("CREATE TABLE t (a BLOB)").is_err());
        assert!(parse_statements("SELECT a FROM t WHERE a > b").is_err()); // non-eq join
        assert!(parse_statements("SELECT a FROM t WHERE").is_err());
    }

    #[test]
    fn unqualified_columns_and_no_where() {
        let stmts = parse_statements("SELECT Name FROM Medicine").unwrap();
        let Statement::Select(sel) = &stmts[0] else {
            panic!()
        };
        assert_eq!(sel.projections[0].table, None);
        assert!(sel.where_atoms.is_empty());
    }
}
