//! SQL subset: lexer, parser and binder.
//!
//! GhostDB's promise (paper §1) is "minimal changes to schema definitions
//! and **no changes to the SQL query text**": hiding is declared with a
//! single extra `HIDDEN` keyword in `CREATE TABLE`, and query texts are
//! ordinary SQL. This crate accepts the paper's statements verbatim —
//! including its `/*VISIBLE*/`-style comments, unquoted `05-11-2006` date
//! literals and typographic quotes — plus the analytic forms layered on
//! top of the SPJ core: `BETWEEN` range predicates, `COUNT`/`SUM`/`AVG`/
//! `MIN`/`MAX` aggregates with `GROUP BY`, and `ORDER BY`/`LIMIT` (see
//! `docs/SQL.md` for the dialect reference). Everything binds against the
//! catalog:
//!
//! ```
//! use ghostdb_sql::parse_statements;
//! let stmts = parse_statements(
//!     "CREATE TABLE Visit ( \
//!        VisID INTEGER PRIMARY KEY, \
//!        Date DATE, \
//!        Purpose CHAR(100) HIDDEN);",
//! ).unwrap();
//! assert_eq!(stmts.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod binder;
mod lexer;
mod parser;

pub use ast::{
    ColumnDecl, CreateTable, DeleteStmt, InsertStmt, Literal, OrderItem, OrderTarget, QualCol,
    SelectItem, SelectStmt, Statement, TypeDecl, UpdateStmt, WhereAtom,
};
pub use binder::{
    bind_delete, bind_insert, bind_schema, bind_select, bind_update, coerce_literal, BoundDelete,
    BoundInsert, BoundSelect, BoundUpdate,
};
pub use lexer::{tokenize, Token, TokenKind};
pub use parser::parse_statements;
