//! Tokenizer for the SQL subset.
//!
//! Quirks inherited from the paper verbatim:
//!
//! * block comments `/*VISIBLE*/` and line comments `-- ...` are skipped;
//! * `05-11-2006` (no quotes) lexes as a **date literal**;
//! * both ASCII quotes (`'`, `"`) and the typographic quotes (`“ ”`, `‘ ’`)
//!   that PDF copy-paste produces delimit strings.

use ghostdb_types::{GhostError, Result};

/// What a token is.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (classification happens in the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Unquoted date literal (`05-11-2006` or `2006-11-05`).
    DateLit(String),
    /// Quoted string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A token plus its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token class and payload.
    pub kind: TokenKind,
    /// Byte offset in the statement text.
    pub pos: usize,
}

const OPEN_QUOTES: [char; 4] = ['\'', '"', '\u{201C}', '\u{2018}'];

fn closing_for(open: char) -> Vec<char> {
    match open {
        '\'' => vec!['\''],
        '"' => vec!['"'],
        '\u{201C}' => vec!['\u{201D}', '\u{201C}'],
        '\u{2018}' => vec!['\u{2019}', '\u{2018}'],
        _ => vec![open],
    }
}

/// Tokenize a statement string.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let chars: Vec<(usize, char)> = input.char_indices().collect();
    let n = chars.len();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < n {
        let (pos, c) = chars[i];
        // Whitespace.
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == '-' && i + 1 < n && chars[i + 1].1 == '-' {
            while i < n && chars[i].1 != '\n' {
                i += 1;
            }
            continue;
        }
        // Unary minus before a number: only where a value may start
        // (after a comparison, comma, or opening paren), so the dashes of
        // date literals (05-11-2006) keep their meaning.
        if c == '-' && i + 1 < n && chars[i + 1].1.is_ascii_digit() {
            let unary_ok = matches!(
                out.last().map(|t: &Token| &t.kind),
                None | Some(
                    TokenKind::Comma
                        | TokenKind::LParen
                        | TokenKind::Eq
                        | TokenKind::Lt
                        | TokenKind::Le
                        | TokenKind::Gt
                        | TokenKind::Ge
                )
            );
            if unary_ok {
                let start = i;
                i += 1;
                while i < n && chars[i].1.is_ascii_digit() {
                    i += 1;
                }
                let text: String = chars[start..i].iter().map(|&(_, ch)| ch).collect();
                let v: i64 = text
                    .parse()
                    .map_err(|_| GhostError::sql_at(format!("bad number {text:?}"), pos))?;
                out.push(Token {
                    kind: TokenKind::Int(v),
                    pos,
                });
                continue;
            }
        }
        if c == '/' && i + 1 < n && chars[i + 1].1 == '*' {
            i += 2;
            loop {
                if i + 1 >= n {
                    return Err(GhostError::sql_at("unterminated comment", pos));
                }
                if chars[i].1 == '*' && chars[i + 1].1 == '/' {
                    i += 2;
                    break;
                }
                i += 1;
            }
            continue;
        }
        // Strings.
        if OPEN_QUOTES.contains(&c) {
            let closers = closing_for(c);
            let mut s = String::new();
            i += 1;
            loop {
                if i >= n {
                    return Err(GhostError::sql_at("unterminated string", pos));
                }
                let ch = chars[i].1;
                if closers.contains(&ch) {
                    i += 1;
                    break;
                }
                s.push(ch);
                i += 1;
            }
            out.push(Token {
                kind: TokenKind::Str(s),
                pos,
            });
            continue;
        }
        // Numbers and unquoted dates.
        if c.is_ascii_digit() {
            let start = i;
            while i < n && chars[i].1.is_ascii_digit() {
                i += 1;
            }
            // Date literal: digits '-' digits '-' digits.
            if i < n && chars[i].1 == '-' {
                let save = i;
                let mut j = i + 1;
                let d2 = j;
                while j < n && chars[j].1.is_ascii_digit() {
                    j += 1;
                }
                if j > d2 && j < n && chars[j].1 == '-' {
                    let d3 = j + 1;
                    let mut k = d3;
                    while k < n && chars[k].1.is_ascii_digit() {
                        k += 1;
                    }
                    if k > d3 {
                        let text: String = chars[start..k].iter().map(|&(_, ch)| ch).collect();
                        out.push(Token {
                            kind: TokenKind::DateLit(text),
                            pos,
                        });
                        i = k;
                        continue;
                    }
                }
                i = save;
            }
            let text: String = chars[start..i].iter().map(|&(_, ch)| ch).collect();
            let v: i64 = text
                .parse()
                .map_err(|_| GhostError::sql_at(format!("bad number {text:?}"), pos))?;
            out.push(Token {
                kind: TokenKind::Int(v),
                pos,
            });
            continue;
        }
        // Identifiers.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (chars[i].1.is_alphanumeric() || chars[i].1 == '_') {
                i += 1;
            }
            let text: String = chars[start..i].iter().map(|&(_, ch)| ch).collect();
            out.push(Token {
                kind: TokenKind::Ident(text),
                pos,
            });
            continue;
        }
        // Symbols.
        let kind = match c {
            '(' => TokenKind::LParen,
            ')' => TokenKind::RParen,
            ',' => TokenKind::Comma,
            ';' => TokenKind::Semi,
            '.' => TokenKind::Dot,
            '*' => TokenKind::Star,
            '=' => TokenKind::Eq,
            '<' => {
                if i + 1 < n && chars[i + 1].1 == '=' {
                    i += 1;
                    TokenKind::Le
                } else {
                    TokenKind::Lt
                }
            }
            '>' => {
                if i + 1 < n && chars[i + 1].1 == '=' {
                    i += 1;
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            other => {
                return Err(GhostError::sql_at(
                    format!("unexpected character {other:?}"),
                    pos,
                ))
            }
        };
        out.push(Token { kind, pos });
        i += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("SELECT a.b, c FROM t;"),
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Ident("a".into()),
                TokenKind::Dot,
                TokenKind::Ident("b".into()),
                TokenKind::Comma,
                TokenKind::Ident("c".into()),
                TokenKind::Ident("FROM".into()),
                TokenKind::Ident("t".into()),
                TokenKind::Semi,
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            kinds("a >= 1 b <= 2 c > 3 d < 4 e = 5"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ge,
                TokenKind::Int(1),
                TokenKind::Ident("b".into()),
                TokenKind::Le,
                TokenKind::Int(2),
                TokenKind::Ident("c".into()),
                TokenKind::Gt,
                TokenKind::Int(3),
                TokenKind::Ident("d".into()),
                TokenKind::Lt,
                TokenKind::Int(4),
                TokenKind::Ident("e".into()),
                TokenKind::Eq,
                TokenKind::Int(5),
            ]
        );
    }

    #[test]
    fn paper_comments_are_skipped() {
        let toks = kinds("Vis.Date > 05-11-2006 /*VISIBLE*/ -- trailing\nAND");
        assert_eq!(
            toks,
            vec![
                TokenKind::Ident("Vis".into()),
                TokenKind::Dot,
                TokenKind::Ident("Date".into()),
                TokenKind::Gt,
                TokenKind::DateLit("05-11-2006".into()),
                TokenKind::Ident("AND".into()),
            ]
        );
    }

    #[test]
    fn date_literals_both_orders() {
        assert_eq!(
            kinds("05-11-2006 2006-11-05"),
            vec![
                TokenKind::DateLit("05-11-2006".into()),
                TokenKind::DateLit("2006-11-05".into()),
            ]
        );
        // A lone minus after a number is not a date.
        assert!(tokenize("5-x").is_err()); // '-x' unexpected? Actually '-'
                                           // starts a comment only when
                                           // doubled; single '-' errors.
    }

    #[test]
    fn negative_literals_where_values_start() {
        assert_eq!(
            kinds("a = -5 b > -77"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Eq,
                TokenKind::Int(-5),
                TokenKind::Ident("b".into()),
                TokenKind::Gt,
                TokenKind::Int(-77),
            ]
        );
        assert_eq!(
            kinds("(-1, -2)"),
            vec![
                TokenKind::LParen,
                TokenKind::Int(-1),
                TokenKind::Comma,
                TokenKind::Int(-2),
                TokenKind::RParen,
            ]
        );
        // Date dashes still lex as dates, not subtraction.
        assert_eq!(
            kinds("d > 05-11-2006"),
            vec![
                TokenKind::Ident("d".into()),
                TokenKind::Gt,
                TokenKind::DateLit("05-11-2006".into()),
            ]
        );
    }

    #[test]
    fn quote_styles() {
        assert_eq!(
            kinds("'abc' \"def\" \u{201C}Sclerosis\u{201D}"),
            vec![
                TokenKind::Str("abc".into()),
                TokenKind::Str("def".into()),
                TokenKind::Str("Sclerosis".into()),
            ]
        );
    }

    #[test]
    fn error_positions() {
        let err = tokenize("abc ? def").unwrap_err();
        assert!(err.to_string().contains("byte 4"), "{err}");
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("/* unterminated").is_err());
    }
}
