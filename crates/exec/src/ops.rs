//! Streaming id-list operators.

use ghostdb_types::{GhostError, IdBlock, IdStream, Result, RowId, SimClock};

/// N-ary merge intersection of ascending id streams — the "Merge" box of
/// the paper's Figure 6 plans: all pre-filtered anchor-id lists must
/// agree.
///
/// The merge is **block-at-a-time**: results are produced into an
/// [`IdBlock`], inputs are advanced with
/// [`seek_at_least`](IdStream::seek_at_least) (galloping past whole
/// posting pages instead of pulling one id per virtual call), and the
/// CPU clock is charged **once per block** with the batch's accumulated
/// cursor advances instead of once per id. RAM stays O(1): one cursor
/// per input plus one output block.
///
/// Scalar consumers keep working: [`next_id`](IdStream::next_id) drains
/// an internal block. [`ScalarMergeIntersect`] preserves the id-at-a-time
/// algorithm as the correctness foil and benchmark baseline.
pub struct MergeIntersect<'a> {
    inputs: Vec<Box<dyn IdStream + 'a>>,
    /// CPU cost per cursor advance, charged to the device clock.
    clock: SimClock,
    tuple_op_ns: u64,
    advanced: u64,
    emitted: u64,
    /// Buffer for scalar (`next_id`) consumers.
    buf: IdBlock,
    buf_pos: usize,
    /// Set once any input is exhausted: no further id can agree.
    done: bool,
}

impl<'a> MergeIntersect<'a> {
    /// Intersect `inputs` (each ascending). With a single input this is a
    /// pass-through.
    pub fn new(inputs: Vec<Box<dyn IdStream + 'a>>, clock: SimClock, tuple_op_ns: u64) -> Self {
        MergeIntersect {
            inputs,
            clock,
            tuple_op_ns,
            advanced: 0,
            emitted: 0,
            buf: IdBlock::new(),
            buf_pos: 0,
            done: false,
        }
    }

    /// Cursor advances (pulls and seeks) so far ("tuples processed").
    pub fn tuples_in(&self) -> u64 {
        self.advanced
    }

    /// Ids emitted so far.
    pub fn tuples_out(&self) -> u64 {
        self.emitted
    }

    /// Produce the next output block directly into `out`. The clock is
    /// charged once, for every cursor advance the block required.
    fn fill(&mut self, out: &mut IdBlock) -> Result<()> {
        out.clear();
        if self.inputs.is_empty() {
            return Err(GhostError::exec("intersection of zero streams"));
        }
        if self.done {
            return Ok(());
        }
        let mut advances = 0u64;
        let r = self.fill_inner(out, &mut advances);
        self.advanced += advances;
        self.clock.advance(self.tuple_op_ns * advances);
        r
    }

    fn fill_inner(&mut self, out: &mut IdBlock, advances: &mut u64) -> Result<()> {
        let n = self.inputs.len();
        if n == 1 {
            // Pass-through: one virtual call moves a whole block.
            self.inputs[0].next_block(out)?;
            *advances += out.len() as u64;
            self.emitted += out.len() as u64;
            // A short-but-nonempty block proves nothing; only an empty
            // pull marks the end.
            if out.is_empty() {
                self.done = true;
            }
            return Ok(());
        }
        // Pivot from stream 0; every other stream must gallop to it.
        let mut candidate = {
            *advances += 1;
            match self.inputs[0].next_id()? {
                Some(id) => id,
                None => {
                    self.done = true;
                    return Ok(());
                }
            }
        };
        let mut agreed = 1usize; // streams known to contain candidate
        let mut i = 1usize;
        loop {
            if agreed == n {
                out.push(candidate);
                self.emitted += 1;
                if out.is_full() {
                    // The emitted candidate is consumed everywhere, so
                    // the next fill restarts cleanly with a fresh pull.
                    return Ok(());
                }
                *advances += 1;
                match self.inputs[0].next_id()? {
                    Some(id) => candidate = id,
                    None => {
                        self.done = true;
                        return Ok(());
                    }
                }
                agreed = 1;
                i = 1;
                continue;
            }
            *advances += 1;
            match self.inputs[i].seek_at_least(candidate)? {
                None => {
                    self.done = true;
                    return Ok(());
                }
                Some(id) if id == candidate => {
                    agreed += 1;
                    i = (i + 1) % n;
                }
                Some(id) => {
                    // Overshot: id becomes the new candidate (stream i is
                    // the one stream known to contain it).
                    candidate = id;
                    agreed = 1;
                    i = (i + 1) % n;
                }
            }
        }
    }
}

impl IdStream for MergeIntersect<'_> {
    fn next_id(&mut self) -> Result<Option<RowId>> {
        loop {
            if self.buf_pos < self.buf.len() {
                let id = self.buf.as_slice()[self.buf_pos];
                self.buf_pos += 1;
                return Ok(Some(id));
            }
            if self.done && self.buf_pos >= self.buf.len() {
                return Ok(None);
            }
            let mut blk = std::mem::take(&mut self.buf);
            let r = self.fill(&mut blk);
            self.buf = blk;
            self.buf_pos = 0;
            r?;
            if self.buf.is_empty() {
                return Ok(None);
            }
        }
    }

    fn next_block(&mut self, block: &mut IdBlock) -> Result<()> {
        // Drain any scalar leftover first so mixed consumers never skip.
        if self.buf_pos < self.buf.len() {
            block.clear();
            let taken = block.extend_from_slice(&self.buf.as_slice()[self.buf_pos..]);
            self.buf_pos += taken;
            return Ok(());
        }
        self.fill(block)
    }
}

/// The seed's id-at-a-time merge intersection, retained verbatim as the
/// scalar baseline: equivalence tests prove the blocked merge emits the
/// identical id sequence, and `benches/vectorized.rs` measures the gap.
pub struct ScalarMergeIntersect<'a> {
    inputs: Vec<Box<dyn IdStream + 'a>>,
    clock: SimClock,
    tuple_op_ns: u64,
    advanced: u64,
    emitted: u64,
}

impl<'a> ScalarMergeIntersect<'a> {
    /// Intersect `inputs` (each ascending), advancing one id per call.
    pub fn new(inputs: Vec<Box<dyn IdStream + 'a>>, clock: SimClock, tuple_op_ns: u64) -> Self {
        ScalarMergeIntersect {
            inputs,
            clock,
            tuple_op_ns,
            advanced: 0,
            emitted: 0,
        }
    }

    /// Ids pulled from inputs so far.
    pub fn tuples_in(&self) -> u64 {
        self.advanced
    }

    /// Ids emitted so far.
    pub fn tuples_out(&self) -> u64 {
        self.emitted
    }

    fn pull(&mut self, i: usize) -> Result<Option<RowId>> {
        self.advanced += 1;
        self.clock.advance(self.tuple_op_ns);
        self.inputs[i].next_id()
    }
}

impl IdStream for ScalarMergeIntersect<'_> {
    fn next_id(&mut self) -> Result<Option<RowId>> {
        if self.inputs.is_empty() {
            return Err(GhostError::exec("intersection of zero streams"));
        }
        let mut candidate = match self.pull(0)? {
            Some(id) => id,
            None => return Ok(None),
        };
        let n = self.inputs.len();
        let mut agreed = 1usize;
        let mut i = 1usize;
        loop {
            if agreed == n {
                self.emitted += 1;
                return Ok(Some(candidate));
            }
            loop {
                match self.pull(i)? {
                    None => return Ok(None),
                    Some(id) if id < candidate => continue,
                    Some(id) if id == candidate => {
                        agreed += 1;
                        i = (i + 1) % n;
                        break;
                    }
                    Some(id) => {
                        candidate = id;
                        agreed = 1;
                        i = (i + 1) % n;
                        break;
                    }
                }
            }
        }
    }
}

/// The no-predicate source: every anchor id in order.
#[derive(Debug)]
pub struct FullScanSource {
    next: u32,
    rows: u32,
}

impl FullScanSource {
    /// Scan ids `0..rows`.
    pub fn new(rows: u32) -> Self {
        FullScanSource { next: 0, rows }
    }
}

impl IdStream for FullScanSource {
    fn next_id(&mut self) -> Result<Option<RowId>> {
        if self.next >= self.rows {
            return Ok(None);
        }
        let id = RowId(self.next);
        self.next += 1;
        Ok(Some(id))
    }

    fn next_block(&mut self, block: &mut IdBlock) -> Result<()> {
        block.clear();
        let end = self
            .rows
            .min(self.next.saturating_add(ghostdb_types::BLOCK_CAP as u32));
        for id in self.next..end {
            block.push(RowId(id));
        }
        self.next = end;
        Ok(())
    }

    fn seek_at_least(&mut self, target: RowId) -> Result<Option<RowId>> {
        self.next = self.next.max(target.0);
        self.next_id()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = (self.rows - self.next.min(self.rows)) as usize;
        (rest, Some(rest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_types::{collect_ids, ScalarFallback, VecIdStream};

    fn ids(v: Vec<u32>) -> Vec<RowId> {
        v.into_iter().map(RowId).collect()
    }

    fn intersect(lists: Vec<Vec<u32>>) -> Vec<RowId> {
        let inputs: Vec<Box<dyn IdStream>> = lists
            .into_iter()
            .map(|l| Box::new(VecIdStream::new(ids(l))) as Box<dyn IdStream>)
            .collect();
        let mut m = MergeIntersect::new(inputs, SimClock::new(), 1);
        collect_ids(&mut m).unwrap()
    }

    fn intersect_scalar(lists: Vec<Vec<u32>>) -> Vec<RowId> {
        let inputs: Vec<Box<dyn IdStream>> = lists
            .into_iter()
            .map(|l| Box::new(ScalarFallback(VecIdStream::new(ids(l)))) as Box<dyn IdStream>)
            .collect();
        let mut m = ScalarMergeIntersect::new(inputs, SimClock::new(), 1);
        collect_ids(&mut m).unwrap()
    }

    #[test]
    fn two_way_intersection() {
        assert_eq!(
            intersect(vec![vec![1, 3, 5, 7, 9], vec![2, 3, 4, 7, 10]]),
            ids(vec![3, 7])
        );
    }

    #[test]
    fn three_way_intersection() {
        assert_eq!(
            intersect(vec![
                vec![1, 2, 3, 4, 5, 6],
                vec![2, 4, 6, 8],
                vec![1, 4, 6, 9],
            ]),
            ids(vec![4, 6])
        );
    }

    #[test]
    fn disjoint_is_empty() {
        assert_eq!(intersect(vec![vec![1, 3], vec![2, 4]]), ids(vec![]));
        assert_eq!(intersect(vec![vec![], vec![1, 2]]), ids(vec![]));
    }

    #[test]
    fn single_input_passthrough() {
        assert_eq!(intersect(vec![vec![5, 6, 7]]), ids(vec![5, 6, 7]));
    }

    #[test]
    fn identical_streams() {
        assert_eq!(
            intersect(vec![vec![1, 2, 3], vec![1, 2, 3]]),
            ids(vec![1, 2, 3])
        );
    }

    #[test]
    fn blocked_matches_scalar_baseline() {
        // Deterministic pseudo-random lists exercising overshoot chains,
        // long skip runs, and results spanning multiple blocks.
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move |m: u32| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as u32) % m
        };
        for &(n_lists, len, stride) in &[
            (2usize, 5_000u32, 3u32),
            (3, 2_000, 7),
            (4, 800, 2),
            (2, 3_000, 1),
        ] {
            let mut lists: Vec<Vec<u32>> = Vec::new();
            for _ in 0..n_lists {
                let mut v: Vec<u32> = (0..len).map(|_| next(len * stride)).collect();
                v.sort_unstable();
                v.dedup();
                lists.push(v);
            }
            assert_eq!(
                intersect(lists.clone()),
                intersect_scalar(lists),
                "case ({n_lists}, {len}, {stride})"
            );
        }
    }

    #[test]
    fn mixed_scalar_and_block_pulls_never_skip() {
        let a: Vec<u32> = (0..4_000).map(|i| i * 2).collect();
        let b: Vec<u32> = (0..4_000).map(|i| i * 3).collect();
        let expect: Vec<RowId> = intersect(vec![a.clone(), b.clone()]);
        let inputs: Vec<Box<dyn IdStream>> = vec![
            Box::new(VecIdStream::new(ids(a))),
            Box::new(VecIdStream::new(ids(b))),
        ];
        let mut m = MergeIntersect::new(inputs, SimClock::new(), 1);
        let mut got = Vec::new();
        let mut block = IdBlock::new();
        // Alternate: a few scalar pulls, then a block pull.
        loop {
            let mut progressed = false;
            for _ in 0..3 {
                if let Some(id) = m.next_id().unwrap() {
                    got.push(id);
                    progressed = true;
                }
            }
            m.next_block(&mut block).unwrap();
            if !block.is_empty() {
                got.extend_from_slice(block.as_slice());
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn intersection_charges_cpu_time() {
        let clock = SimClock::new();
        let inputs: Vec<Box<dyn IdStream>> = vec![
            Box::new(VecIdStream::new(ids(vec![1, 2, 3]))),
            Box::new(VecIdStream::new(ids(vec![3]))),
        ];
        let mut m = MergeIntersect::new(inputs, clock.clone(), 100);
        collect_ids(&mut m).unwrap();
        assert!(clock.now().0 >= 400, "clock {:?}", clock.now());
        assert!(m.tuples_in() >= 4);
        assert_eq!(m.tuples_out(), 1);
    }

    #[test]
    fn scalar_merge_charges_per_pull() {
        let clock = SimClock::new();
        let inputs: Vec<Box<dyn IdStream>> = vec![
            Box::new(VecIdStream::new(ids(vec![1, 2, 3]))),
            Box::new(VecIdStream::new(ids(vec![3]))),
        ];
        let mut m = ScalarMergeIntersect::new(inputs, clock.clone(), 100);
        collect_ids(&mut m).unwrap();
        assert!(clock.now().0 >= 400, "clock {:?}", clock.now());
        assert!(m.tuples_in() >= 4);
        assert_eq!(m.tuples_out(), 1);
    }

    #[test]
    fn full_scan_counts_up() {
        let mut s = FullScanSource::new(4);
        assert_eq!(collect_ids(&mut s).unwrap(), ids(vec![0, 1, 2, 3]));
    }

    #[test]
    fn full_scan_blocks_and_seeks() {
        let mut s = FullScanSource::new(3_000);
        let mut b = IdBlock::new();
        s.next_block(&mut b).unwrap();
        assert_eq!(b.len(), ghostdb_types::BLOCK_CAP);
        assert_eq!(s.seek_at_least(RowId(2_500)).unwrap(), Some(RowId(2_500)));
        assert_eq!(s.seek_at_least(RowId(9_999)).unwrap(), None);
    }
}
