//! Streaming id-list operators.

use ghostdb_types::{GhostError, IdStream, Result, RowId, SimClock};

/// N-ary merge intersection of ascending id streams.
///
/// This is the "Merge" box of the paper's Figure 6 plans: all
/// pre-filtered anchor-id lists must agree. O(1) RAM — one cursor per
/// input — and one CPU tuple-op charged per advanced cursor.
pub struct MergeIntersect<'a> {
    inputs: Vec<Box<dyn IdStream + 'a>>,
    /// CPU cost per advance, charged to the device clock.
    clock: SimClock,
    tuple_op_ns: u64,
    advanced: u64,
    emitted: u64,
}

impl<'a> MergeIntersect<'a> {
    /// Intersect `inputs` (each ascending). With a single input this is a
    /// pass-through.
    pub fn new(inputs: Vec<Box<dyn IdStream + 'a>>, clock: SimClock, tuple_op_ns: u64) -> Self {
        MergeIntersect {
            inputs,
            clock,
            tuple_op_ns,
            advanced: 0,
            emitted: 0,
        }
    }

    /// Ids pulled from inputs so far ("tuples processed").
    pub fn tuples_in(&self) -> u64 {
        self.advanced
    }

    /// Ids emitted so far.
    pub fn tuples_out(&self) -> u64 {
        self.emitted
    }

    fn pull(&mut self, i: usize) -> Result<Option<RowId>> {
        self.advanced += 1;
        self.clock.advance(self.tuple_op_ns);
        self.inputs[i].next_id()
    }
}

impl IdStream for MergeIntersect<'_> {
    fn next_id(&mut self) -> Result<Option<RowId>> {
        if self.inputs.is_empty() {
            return Err(GhostError::exec("intersection of zero streams"));
        }
        // Candidate from stream 0; every other stream must reach it.
        let mut candidate = match self.pull(0)? {
            Some(id) => id,
            None => return Ok(None),
        };
        let n = self.inputs.len();
        let mut agreed = 1usize; // streams currently known to contain candidate
        let mut i = 1usize;
        loop {
            if agreed == n {
                self.emitted += 1;
                return Ok(Some(candidate));
            }
            // Advance stream i until >= candidate.
            loop {
                match self.pull(i)? {
                    None => return Ok(None),
                    Some(id) if id < candidate => continue,
                    Some(id) if id == candidate => {
                        agreed += 1;
                        i = (i + 1) % n;
                        break;
                    }
                    Some(id) => {
                        // Overshot: id becomes the new candidate.
                        candidate = id;
                        agreed = 1;
                        i = (i + 1) % n;
                        break;
                    }
                }
            }
        }
    }
}

/// The no-predicate source: every anchor id in order.
#[derive(Debug)]
pub struct FullScanSource {
    next: u32,
    rows: u32,
}

impl FullScanSource {
    /// Scan ids `0..rows`.
    pub fn new(rows: u32) -> Self {
        FullScanSource { next: 0, rows }
    }
}

impl IdStream for FullScanSource {
    fn next_id(&mut self) -> Result<Option<RowId>> {
        if self.next >= self.rows {
            return Ok(None);
        }
        let id = RowId(self.next);
        self.next += 1;
        Ok(Some(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_types::{collect_ids, VecIdStream};

    fn ids(v: Vec<u32>) -> Vec<RowId> {
        v.into_iter().map(RowId).collect()
    }

    fn intersect(lists: Vec<Vec<u32>>) -> Vec<RowId> {
        let inputs: Vec<Box<dyn IdStream>> = lists
            .into_iter()
            .map(|l| Box::new(VecIdStream::new(ids(l))) as Box<dyn IdStream>)
            .collect();
        let mut m = MergeIntersect::new(inputs, SimClock::new(), 1);
        collect_ids(&mut m).unwrap()
    }

    #[test]
    fn two_way_intersection() {
        assert_eq!(
            intersect(vec![vec![1, 3, 5, 7, 9], vec![2, 3, 4, 7, 10]]),
            ids(vec![3, 7])
        );
    }

    #[test]
    fn three_way_intersection() {
        assert_eq!(
            intersect(vec![
                vec![1, 2, 3, 4, 5, 6],
                vec![2, 4, 6, 8],
                vec![1, 4, 6, 9],
            ]),
            ids(vec![4, 6])
        );
    }

    #[test]
    fn disjoint_is_empty() {
        assert_eq!(intersect(vec![vec![1, 3], vec![2, 4]]), ids(vec![]));
        assert_eq!(intersect(vec![vec![], vec![1, 2]]), ids(vec![]));
    }

    #[test]
    fn single_input_passthrough() {
        assert_eq!(intersect(vec![vec![5, 6, 7]]), ids(vec![5, 6, 7]));
    }

    #[test]
    fn identical_streams() {
        assert_eq!(
            intersect(vec![vec![1, 2, 3], vec![1, 2, 3]]),
            ids(vec![1, 2, 3])
        );
    }

    #[test]
    fn intersection_charges_cpu_time() {
        let clock = SimClock::new();
        let inputs: Vec<Box<dyn IdStream>> = vec![
            Box::new(VecIdStream::new(ids(vec![1, 2, 3]))),
            Box::new(VecIdStream::new(ids(vec![3]))),
        ];
        let mut m = MergeIntersect::new(inputs, clock.clone(), 100);
        collect_ids(&mut m).unwrap();
        assert!(clock.now().0 >= 400, "clock {:?}", clock.now());
        assert!(m.tuples_in() >= 4);
        assert_eq!(m.tuples_out(), 1);
    }

    #[test]
    fn full_scan_counts_up() {
        let mut s = FullScanSource::new(4);
        assert_eq!(collect_ids(&mut s).unwrap(), ids(vec![0, 1, 2, 3]));
    }
}
