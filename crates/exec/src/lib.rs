//! Query processing: plans, operators, cost model, optimizer, executor.
//!
//! This crate implements the paper's §4 end to end:
//!
//! * **Pre-filtering** — push selections before the (index-precomputed)
//!   joins: hidden predicates probe climbing indexes; visible predicates
//!   are delegated to the PC and their id lists *translated* to the
//!   query anchor through the climbing key indexes; all anchor-id lists
//!   are merge-intersected; the SKT delivers the joined rows.
//! * **Post-filtering** — unselective visible predicates are instead
//!   turned into device-RAM Bloom filters probed while streaming SKT
//!   rows, with an exact flash-temp verification so false positives never
//!   reach results.
//! * **Cross-filtering** — predicates on the same table combine *before*
//!   climbing: the hidden index is probed at the table's own level,
//!   intersected with the delegated visible ids, and the (smaller)
//!   combined list is translated once.
//!
//! * **Analytic epilogue** — aggregates (`COUNT`/`SUM`/`AVG`/`MIN`/
//!   `MAX`), `GROUP BY`, `ORDER BY` and `LIMIT` fold the projected rows
//!   *on the device* before anything is sealed for the PC, so hidden
//!   aggregate operands never cross the bus; the epilogue's group table
//!   and top-k buffer are charged to the 64 KB RAM budget like every
//!   other operator (see [`agg`](Epilogue)).
//!
//! The optimizer enumerates the "large panel of candidate plans" the
//! paper describes and costs them against the device model; the executor
//! runs any of them — including hand-built ones, which is what the demo's
//! phase 2/3 GUI (and our `plan_game` example) exposes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agg;
mod analyze;
mod baseline;
mod cost;
mod executor;
mod ops;
mod optimizer;
mod pc;
mod plan;
mod query;
mod stats;
mod temp;

pub use agg::Epilogue;
pub use analyze::{attach_actuals, plan_nodes, render_plan, NodeActuals, PlanNode};
pub use baseline::{
    climbing_translate_count, grace_hash_join_count, join_index_count, BaselineReport,
};
pub use cost::{CostModel, PlanCardinalities};
pub use executor::{execute, ExecContext, PipelineMode};
pub use ops::{FullScanSource, MergeIntersect, ScalarMergeIntersect};
pub use optimizer::{enumerate_plans, plan_all_post, plan_all_pre, CostedPlan, Optimizer};
pub use pc::{PairStream, PcLink, VecPairStream};
pub use plan::{Plan, PostStep, Source};
pub use query::{OutputExpr, QuerySpec};
pub use stats::{ExecReport, OpStats, ResultSet};
pub use temp::{IdTemp, VisibleTemp};
