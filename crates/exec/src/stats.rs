//! Per-operator statistics and result sets.
//!
//! Demo phase 2: "A click on any plan operator displays a popup with
//! additional statistics about this operator (number of processed tuples,
//! local RAM consumption and processing time)." [`OpStats`] is that
//! popup; [`ExecReport`] aggregates a whole execution for the comparison
//! charts (Figure 6).

use ghostdb_flash::FlashStats;
use ghostdb_types::{format_ns, Value};

/// Statistics for one plan operator.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpStats {
    /// Operator name (e.g. `climbing-index`, `bloom-filter`).
    pub name: String,
    /// Operand description (which predicate / column).
    pub detail: String,
    /// Tuples pulled into the operator.
    pub tuples_in: u64,
    /// Tuples emitted.
    pub tuples_out: u64,
    /// Simulated time attributable to this operator, ns.
    pub sim_ns: u64,
    /// Peak device RAM attributed to this operator, bytes.
    pub ram_peak: usize,
    /// Numeric per-operator actuals beyond the tuple counts: blocks
    /// pulled, `seek_at_least` gallops, Bloom probes/hits, liveness
    /// drops. Counts and sizes only — never column values.
    pub attrs: Vec<(&'static str, u64)>,
}

impl OpStats {
    /// One-line rendering for the demo tables.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{:<22} {:<38} in={:<9} out={:<9} ram={:<7} time={}",
            self.name,
            self.detail,
            self.tuples_in,
            self.tuples_out,
            self.ram_peak,
            format_ns(self.sim_ns)
        );
        for (k, v) in &self.attrs {
            out.push_str(&format!(" {k}={v}"));
        }
        out
    }
}

/// Aggregate report for one query execution.
#[derive(Debug, Clone, Default)]
pub struct ExecReport {
    /// Plan label ("P1", "P2", custom).
    pub plan_label: String,
    /// Per-operator statistics in pipeline order.
    pub ops: Vec<OpStats>,
    /// Total simulated execution time, ns.
    pub total_ns: u64,
    /// Device RAM high-water mark across the execution, bytes.
    pub ram_peak: usize,
    /// Result rows produced.
    pub result_rows: u64,
    /// Bytes that crossed the bus toward the device (visible data in).
    pub bus_bytes_to_device: u64,
    /// Bytes that crossed the bus toward the PC (requests out).
    pub bus_bytes_to_pc: u64,
    /// Flash operations during execution.
    pub flash: FlashStats,
}

impl ExecReport {
    /// Multi-line rendering (the demo's operator table).
    pub fn render(&self) -> String {
        let mut out = format!(
            "plan {}: {} row(s), total {}, ram peak {} B, bus {}/{} B (to dev/to pc), \
             flash {} reads / {} programs\n",
            self.plan_label,
            self.result_rows,
            format_ns(self.total_ns),
            self.ram_peak,
            self.bus_bytes_to_device,
            self.bus_bytes_to_pc,
            self.flash.page_reads,
            self.flash.page_programs,
        );
        for op in &self.ops {
            out.push_str("  ");
            out.push_str(&op.render());
            out.push('\n');
        }
        out
    }
}

/// A materialized query result (device-internal; `ghostdb-core` seals it
/// before presentation).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResultSet {
    /// Column headers (`Table.Column`).
    pub columns: Vec<String>,
    /// Rows in anchor-id order.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows were produced.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as a simple aligned table (examples / demo).
    pub fn render(&self, max_rows: usize) -> String {
        let mut out = self.columns.join(" | ");
        out.push('\n');
        out.push_str(&"-".repeat(out.len().min(100)));
        out.push('\n');
        for row in self.rows.iter().take(max_rows) {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            out.push_str(&cells.join(" | "));
            out.push('\n');
        }
        if self.rows.len() > max_rows {
            out.push_str(&format!("... ({} more rows)\n", self.rows.len() - max_rows));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_stats_render_contains_fields() {
        let s = OpStats {
            name: "bloom-probe".into(),
            detail: "Medicine.Type = 'Antibiotic'".into(),
            tuples_in: 100,
            tuples_out: 10,
            sim_ns: 15_000_000,
            ram_peak: 2048,
            attrs: vec![("probes", 100), ("hits", 12)],
        };
        let r = s.render();
        assert!(r.contains("bloom-probe"));
        assert!(r.contains("in=100"));
        assert!(r.contains("15.00 ms"));
        assert!(r.contains("probes=100"));
        assert!(r.contains("hits=12"));
    }

    #[test]
    fn report_render_lists_ops() {
        let mut rep = ExecReport {
            plan_label: "P1".into(),
            total_ns: 25_000_000_000,
            result_rows: 42,
            ..Default::default()
        };
        rep.ops.push(OpStats {
            name: "merge".into(),
            ..Default::default()
        });
        let r = rep.render();
        assert!(r.contains("plan P1"));
        assert!(r.contains("25.00 s"));
        assert!(r.contains("merge"));
    }

    #[test]
    fn result_set_render_truncates() {
        let rs = ResultSet {
            columns: vec!["A".into()],
            rows: (0..10).map(|i| vec![Value::Int(i)]).collect(),
        };
        let r = rs.render(3);
        assert!(r.contains("7 more rows"));
        assert_eq!(rs.len(), 10);
    }
}
