//! The device-side plan executor: a **block-at-a-time pull pipeline**
//! with O(pages) device RAM.
//!
//! The unit of exchange on the hot path is an [`IdBlock`] (up to
//! [`BLOCK_CAP`](ghostdb_types::BLOCK_CAP) ids), not a single id: each
//! stage moves a block per virtual call, and clock/stat charges are
//! accumulated per block instead of per id. Stages:
//!
//! 1. **Prologue** — for every Bloom post-filter and every projected
//!    visible column, fetch the (predicate-filtered) column from the PC
//!    once into a flash temp. Bloom filters fill from the same transfer,
//!    buffered into batches and inserted via
//!    [`BlockedBloomFilter::insert_batch`] with one clock charge per
//!    batch.
//! 2. **Sources** — each pre-filtering source yields an ascending
//!    anchor-id stream (climbing probe, delegate+translate, scan, or
//!    cross-filter group). Posting streams serve whole blocks with
//!    chunked flash reads.
//! 3. **Merge** — sources are merge-intersected by the galloping
//!    [`MergeIntersect`]: the pivot advances via
//!    [`seek_at_least`](IdStream::seek_at_least), which binary-searches
//!    fixed-width posting lists on flash instead of pulling one id per
//!    virtual call, and the CPU clock is charged once per output block.
//! 4. **SKT access** — candidate blocks fill a RAM-budget-sized batch of
//!    Subtree Key Table rows (page-batched fetches).
//! 5. **Post steps** — Bloom probes run over the whole batch
//!    ([`BlockedBloomFilter::probe_batch`]: one cache-line touch per
//!    probe, one clock charge per batch), positives are confirmed
//!    exactly against the flash temps in one sequential merge-scan, and
//!    hidden verifies drop the rest.
//! 6. **Project** — hidden attributes read from the hidden store,
//!    visible attributes probed from the flash temps; rows stream out.
//! 7. **Epilogue** (analytic queries only) — aggregates, `GROUP BY`,
//!    `ORDER BY` and `LIMIT` fold the projected rows device-side
//!    through [`crate::Epilogue`] before the result is sealed, so
//!    hidden aggregate operands never reach the bus; plain SPJ queries
//!    skip this stage entirely and keep the seed's operator list. A
//!    bare `LIMIT` saturates the epilogue and stops the candidate pull
//!    early.
//!
//! Every stage records the demo's per-operator statistics (tuples, RAM,
//! simulated time). [`PipelineMode::Scalar`] re-runs the same plan with
//! the seed's id-at-a-time operators (the default `IdStream` method
//! bodies); both modes must produce byte-identical results and identical
//! tuple counts — `tests/properties.rs` proves it on random plans.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ghostdb_bloom::BlockedBloomFilter;
use ghostdb_catalog::{ColumnRole, Predicate, Schema, TreeSchema};
use ghostdb_flash::Volume;
use ghostdb_index::{IndexSet, TRANSLATE_SORT_RAM};
use ghostdb_ram::{RamBudget, RamScope};
use ghostdb_storage::{HiddenStore, KeyRange};
use ghostdb_types::{
    ColumnId, DeviceConfig, GhostError, IdBlock, IdStream, LiveFilter, Result, RowId,
    ScalarFallback, SimClock, TableId, Value, BLOCK_CAP,
};

use crate::agg::Epilogue;
use crate::ops::{FullScanSource, MergeIntersect, ScalarMergeIntersect};
use crate::pc::PcLink;
use crate::plan::{Plan, PostStep, Source};
use crate::query::QuerySpec;
use crate::stats::{ExecReport, OpStats, ResultSet};
use crate::temp::{IdTemp, TempProber, VisibleTemp};

/// Which operator implementations the executor wires together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PipelineMode {
    /// Block-at-a-time pull with galloping merges and batched Bloom
    /// charges (the production path).
    #[default]
    Blocked,
    /// The seed's id-at-a-time operators, kept as the correctness foil
    /// and benchmark baseline: every stream is forced through the
    /// default scalar `IdStream` methods.
    Scalar,
}

/// Everything the executor needs about one device + PC pairing.
pub struct ExecContext<'a> {
    /// The schema.
    pub schema: &'a Schema,
    /// Tree analysis of the schema.
    pub tree: &'a TreeSchema,
    /// Hardware model.
    pub config: &'a DeviceConfig,
    /// The device clock (shared with flash and bus).
    pub clock: SimClock,
    /// Device flash volume.
    pub volume: &'a Volume,
    /// Device RAM budget.
    pub ram: &'a RamBudget,
    /// Hidden column store.
    pub hidden: &'a HiddenStore,
    /// SKTs and climbing indexes.
    pub indexes: &'a IndexSet,
    /// Handle to the untrusted PC.
    pub pc: &'a dyn PcLink,
    /// Operator implementation choice (blocked unless a verification
    /// pass asks for the scalar foil).
    pub pipeline: PipelineMode,
}

impl ExecContext<'_> {
    fn sort_ram(&self) -> usize {
        (self.ram.available() / 4).clamp(1024, TRANSLATE_SORT_RAM)
    }

    fn bloom_ram(&self) -> usize {
        (self.ram.available() / 4).clamp(512, 8 * 1024)
    }

    fn pred_str(&self, p: &Predicate) -> String {
        format!("{} {} {}", self.schema.column_name(p.column), p.op, p.value)
    }
}

/// Shared instrumentation for a boxed stream.
#[derive(Debug, Default)]
struct StreamMeter {
    ns: AtomicU64,
    out: AtomicU64,
    /// Blocks pulled through `next_block`.
    blocks: AtomicU64,
    /// `seek_at_least` calls (the merge's gallops into this stream).
    seeks: AtomicU64,
}

/// Instrumented id stream: measures simulated time spent inside (its own
/// work plus upstream flash/bus pulls) and counts emitted ids.
struct Timed<'a> {
    inner: Box<dyn IdStream + 'a>,
    clock: SimClock,
    meter: Arc<StreamMeter>,
}

impl IdStream for Timed<'_> {
    fn next_id(&mut self) -> Result<Option<RowId>> {
        let t0 = self.clock.now();
        let r = self.inner.next_id();
        self.meter
            .ns
            .fetch_add(self.clock.now().since(t0), Ordering::Relaxed);
        if let Ok(Some(_)) = r {
            self.meter.out.fetch_add(1, Ordering::Relaxed);
        }
        r
    }

    fn next_block(&mut self, block: &mut IdBlock) -> Result<()> {
        let t0 = self.clock.now();
        let r = self.inner.next_block(block);
        self.meter
            .ns
            .fetch_add(self.clock.now().since(t0), Ordering::Relaxed);
        if r.is_ok() {
            self.meter.blocks.fetch_add(1, Ordering::Relaxed);
            self.meter
                .out
                .fetch_add(block.len() as u64, Ordering::Relaxed);
        }
        r
    }

    fn seek_at_least(&mut self, target: RowId) -> Result<Option<RowId>> {
        // Forward so galloping reaches the wrapped stream; the merge
        // above us owns the tuple accounting for skipped ids.
        self.meter.seeks.fetch_add(1, Ordering::Relaxed);
        let t0 = self.clock.now();
        let r = self.inner.seek_at_least(target);
        self.meter
            .ns
            .fetch_add(self.clock.now().since(t0), Ordering::Relaxed);
        if let Ok(Some(_)) = r {
            self.meter.out.fetch_add(1, Ordering::Relaxed);
        }
        r
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

struct BuiltSource<'a> {
    stream: Box<dyn IdStream + 'a>,
    meter: Arc<StreamMeter>,
    stats: OpStats,
}

/// Feeds ids into a Bloom filter in [`BLOCK_CAP`] batches: one
/// `insert_batch` and one hash-cost clock charge per batch instead of
/// per id. All three executor fill sites share this. Callers must
/// [`flush`](Self::flush) after the last id.
struct BatchedBloomFill<'b> {
    bloom: &'b mut BlockedBloomFilter,
    clock: SimClock,
    /// Clock cost per inserted key (`hash_ns * k`).
    key_ns: u64,
    pending: Vec<u64>,
}

impl<'b> BatchedBloomFill<'b> {
    fn new(bloom: &'b mut BlockedBloomFilter, clock: SimClock, hash_ns: u64) -> Self {
        let key_ns = hash_ns * bloom.k() as u64;
        BatchedBloomFill {
            bloom,
            clock,
            key_ns,
            pending: Vec::with_capacity(BLOCK_CAP),
        }
    }

    fn push(&mut self, key: u64) {
        self.pending.push(key);
        if self.pending.len() == BLOCK_CAP {
            self.flush();
        }
    }

    fn flush(&mut self) {
        self.bloom.insert_batch(&self.pending);
        self.clock.advance(self.key_ns * self.pending.len() as u64);
        self.pending.clear();
    }
}

/// The merge operator for the context's pipeline mode.
fn make_merge<'a>(
    ctx: &ExecContext<'_>,
    inputs: Vec<Box<dyn IdStream + 'a>>,
) -> Box<dyn IdStream + 'a> {
    match ctx.pipeline {
        PipelineMode::Blocked => Box::new(MergeIntersect::new(
            inputs,
            ctx.clock.clone(),
            ctx.config.cpu.tuple_op_ns,
        )),
        PipelineMode::Scalar => Box::new(ScalarMergeIntersect::new(
            inputs,
            ctx.clock.clone(),
            ctx.config.cpu.tuple_op_ns,
        )),
    }
}

/// Execute `plan` for `spec` and return results plus the report.
pub fn execute(
    ctx: &ExecContext<'_>,
    spec: &QuerySpec,
    plan: &Plan,
) -> Result<(ResultSet, ExecReport)> {
    plan.validate(ctx.schema, spec)?;
    ctx.ram.reset_peak();
    let t_start = ctx.clock.now();
    let flash_start = ctx.volume.nand().stats();
    let bus_start = ctx.pc.bus_stats();
    let mut report_ops: Vec<OpStats> = Vec::new();

    // The query text speaks the *logical* id space (dense primary keys
    // over live rows); stored data — flash segments, postings, the PC's
    // columns — lives in the *physical* space tombstones are defined
    // over. Translate every PK/FK predicate constant once, up front
    // (identity unless rows have been deleted since the last flush), and
    // use the translated set everywhere below.
    let preds: Vec<Predicate> = spec
        .predicates
        .iter()
        .map(|p| ctx.hidden.physical_predicate(ctx.schema, p))
        .collect();

    // ---- Prologue: fetch visible columns into flash temps ----
    // One visible predicate per table may restrict that table's fetches
    // (any conjunct is a sound filter).
    let filter_pred_of: HashMap<TableId, &Predicate> = {
        let mut m = HashMap::new();
        for p in &preds {
            if !ctx.schema.is_hidden(p.column) {
                m.entry(p.column.table).or_insert(p);
            }
        }
        m
    };

    let fetch_scope = RamScope::new(ctx.ram);
    let fetch_one = |cref: ghostdb_catalog::ColumnRef,
                     filter: Option<&Predicate>,
                     bloom: Option<&mut BlockedBloomFilter>|
     -> Result<(VisibleTemp, OpStats)> {
        let def = ctx.schema.column_def(cref);
        let t0 = ctx.clock.now();
        let mut pairs = ctx.pc.fetch_column(cref.table, cref.column, filter)?;
        let temp = match bloom {
            Some(b) => {
                let mut fill = BatchedBloomFill::new(b, ctx.clock.clone(), ctx.config.cpu.hash_ns);
                let temp = {
                    let mut hook = |id: RowId| fill.push(id.0 as u64);
                    VisibleTemp::build(
                        ctx.volume,
                        &fetch_scope,
                        def.ty,
                        pairs.as_mut(),
                        Some(&mut hook),
                    )?
                };
                fill.flush();
                temp
            }
            None => VisibleTemp::build(ctx.volume, &fetch_scope, def.ty, pairs.as_mut(), None)?,
        };
        let stats = OpStats {
            name: "fetch-column".into(),
            detail: format!(
                "{}{}",
                ctx.schema.column_name(cref),
                filter
                    .map(|p| format!(" where {}", ctx.pred_str(p)))
                    .unwrap_or_default()
            ),
            tuples_in: temp.len(),
            tuples_out: temp.len(),
            sim_ns: ctx.clock.now().since(t0),
            ram_peak: fetch_scope.peak(),
            attrs: Vec::new(),
        };
        Ok((temp, stats))
    };

    // Projection temps, keyed by column.
    let mut proj_temps: HashMap<(u16, u16), VisibleTemp> = HashMap::new();
    for cref in &spec.projections {
        let def = ctx.schema.column_def(*cref);
        if def.visibility.is_hidden() || matches!(def.role, ColumnRole::PrimaryKey) {
            continue;
        }
        let key = (cref.table.0, cref.column.0);
        if proj_temps.contains_key(&key) {
            continue;
        }
        let filter = filter_pred_of.get(&cref.table).copied();
        let (temp, stats) = fetch_one(*cref, filter, None)?;
        report_ops.push(stats);
        proj_temps.insert(key, temp);
    }

    // Bloom post-filters: filter + an exact-verify temp per predicate.
    struct BloomStep<'p> {
        pred: &'p Predicate,
        bloom: BlockedBloomFilter,
        /// Temp holding exactly the ids satisfying the predicate. Either
        /// shared with a projection temp (same filter) or private.
        verify: VerifySource,
        build_stats: OpStats,
    }
    enum VerifySource {
        /// A projection temp fetched with this very predicate as filter.
        Shared((u16, u16)),
        /// A private id-only temp (ids delegated via EvalPredicate).
        Own(usize),
    }
    let bloom_scope = RamScope::new(ctx.ram);
    let mut own_verify_temps: Vec<IdTemp> = Vec::new();
    let mut bloom_steps: Vec<BloomStep<'_>> = Vec::new();
    for step in &plan.post {
        let PostStep::BloomVisible { pred } = step else {
            continue;
        };
        let p = &preds[*pred];
        let n_est = ctx.hidden.row_count(p.column.table) as usize;
        let mut bloom =
            BlockedBloomFilter::within_ram(&bloom_scope, n_est.max(16), ctx.bloom_ram())?;
        let key = (p.column.table.0, p.column.column.0);
        let shared = proj_temps.contains_key(&key)
            && filter_pred_of.get(&p.column.table).copied() == Some(p);
        let t0 = ctx.clock.now();
        let verify;
        let inserted;
        if shared {
            // The projection temp already holds exactly the qualifying
            // ids; replay them into the bloom from flash (cheaper than a
            // second bus transfer).
            let temp = proj_temps.get(&key).expect("checked");
            let ids = temp_ids(temp, &bloom_scope)?;
            let mut fill =
                BatchedBloomFill::new(&mut bloom, ctx.clock.clone(), ctx.config.cpu.hash_ns);
            for id in &ids {
                fill.push(id.0 as u64);
            }
            fill.flush();
            inserted = ids.len() as u64;
            verify = VerifySource::Shared(key);
        } else {
            // Ids only: EvalPredicate is a far smaller transfer than
            // fetching (id, value) pairs, and membership is all the
            // verification needs.
            let mut ids = ctx.pc.eval_predicate(p)?;
            let mut fill =
                BatchedBloomFill::new(&mut bloom, ctx.clock.clone(), ctx.config.cpu.hash_ns);
            let temp = {
                let mut hook = |id: RowId| fill.push(id.0 as u64);
                IdTemp::build(ctx.volume, &fetch_scope, ids.as_mut(), Some(&mut hook))?
            };
            fill.flush();
            inserted = temp.len();
            own_verify_temps.push(temp);
            verify = VerifySource::Own(own_verify_temps.len() - 1);
        }
        let build_stats = OpStats {
            name: "bloom-build".into(),
            detail: format!(
                "{} ({} ids, {} B, fpr~{:.4})",
                ctx.pred_str(p),
                inserted,
                bloom.bytes(),
                bloom.estimated_fpr()
            ),
            tuples_in: inserted,
            tuples_out: inserted,
            sim_ns: ctx.clock.now().since(t0),
            ram_peak: bloom.bytes(),
            attrs: Vec::new(),
        };
        bloom_steps.push(BloomStep {
            pred: p,
            bloom,
            verify,
            build_stats,
        });
    }

    // Hidden verify steps: precompute key ranges.
    struct VerifyStep<'p> {
        pred: &'p Predicate,
        range: Option<KeyRange>,
        checked: u64,
        passed: u64,
        ns: u64,
    }
    let mut verify_steps: Vec<VerifyStep<'_>> = Vec::new();
    for step in &plan.post {
        if let PostStep::HiddenVerify { pred } = step {
            let p = &preds[*pred];
            let range = ctx
                .hidden
                .key_range(p.column.table, p.column.column, p.op, &p.value)?;
            verify_steps.push(VerifyStep {
                pred: p,
                range,
                checked: 0,
                passed: 0,
                ns: 0,
            });
        }
    }

    // Post steps run (and report) in the plan's declared order — the
    // same order the cost model estimates and the plan tree renders —
    // so a hidden verify placed before a Bloom probe really does shrink
    // that probe's batch.
    enum PostOp {
        /// Index into `bloom_steps`.
        Bloom(usize),
        /// Index into `verify_steps`.
        Verify(usize),
    }
    let post_order: Vec<PostOp> = {
        let (mut b, mut v) = (0usize, 0usize);
        plan.post
            .iter()
            .map(|s| match s {
                PostStep::BloomVisible { .. } => {
                    b += 1;
                    PostOp::Bloom(b - 1)
                }
                PostStep::HiddenVerify { .. } => {
                    v += 1;
                    PostOp::Verify(v - 1)
                }
            })
            .collect()
    };

    // ---- Sources ----
    let mut built: Vec<BuiltSource<'_>> = Vec::new();
    for source in &plan.sources {
        built.push(build_source(ctx, spec, &preds, source)?);
    }
    let anchor_rows = ctx.hidden.row_count(spec.anchor);
    let mut source_meta: Vec<(OpStats, Arc<StreamMeter>)> = Vec::new();
    let merge_meter = Arc::new(StreamMeter::default());
    let n_sources = built.len();
    let candidates_inner: Box<dyn IdStream + '_> = if built.is_empty() {
        Box::new(FullScanSource::new(anchor_rows))
    } else if built.len() == 1 {
        let s = built.pop().expect("one source");
        source_meta.push((s.stats, s.meter));
        s.stream
    } else {
        let mut inputs = Vec::new();
        for s in built {
            source_meta.push((s.stats, s.meter));
            inputs.push(s.stream);
        }
        make_merge(ctx, inputs)
    };
    // Tombstone-resident deletes: drop dead anchors block-at-a-time
    // before any SKT fetch. (RESTRICT semantics guarantee a live anchor
    // joins only live subtree rows, so this one choke point covers the
    // whole pipeline; a no-op while everything is live.)
    let anchor_live = ctx.hidden.liveness(spec.anchor);
    // When tombstones are in play, meter the stream *below* the live
    // filter too: drops = ids entering it minus ids surviving it.
    let live_meter: Option<Arc<StreamMeter>> = if anchor_live.all_live() {
        None
    } else {
        Some(Arc::new(StreamMeter::default()))
    };
    let candidates_inner: Box<dyn IdStream + '_> = match &live_meter {
        None => candidates_inner,
        Some(meter) => Box::new(LiveFilter::new(
            Box::new(Timed {
                inner: candidates_inner,
                clock: ctx.clock.clone(),
                meter: meter.clone(),
            }),
            anchor_live,
        )),
    };
    let mut candidates = Timed {
        inner: candidates_inner,
        clock: ctx.clock.clone(),
        meter: merge_meter.clone(),
    };

    // ---- SKT cursor (or pseudo rows for leaf anchors) ----
    let skt_scope = RamScope::new(ctx.ram);
    let has_children = !ctx.tree.children(spec.anchor).is_empty();
    let skt = if has_children {
        Some(ctx.indexes.skt(spec.anchor)?)
    } else {
        None
    };
    let mut cursor = match skt {
        Some(s) => Some(s.cursor(&skt_scope)?),
        None => None,
    };
    let col_of = |table: TableId| -> Result<usize> {
        match skt {
            Some(s) => s.column_of(table),
            None if table == spec.anchor => Ok(0),
            None => Err(GhostError::exec("leaf anchor cannot reach other tables")),
        }
    };

    // Precompute projection dispatch. Stored PK/FK values are physical
    // ids; results present the logical (live-rank) view, so key
    // projections carry the table whose liveness renumbers them.
    enum Proj {
        Pk {
            table: TableId,
            col: usize,
        },
        Hidden {
            table: TableId,
            column: ColumnId,
            col: usize,
            fk_target: Option<TableId>,
        },
        Visible {
            key: (u16, u16),
            col: usize,
            fk_target: Option<TableId>,
        },
    }
    let mut projs: Vec<Proj> = Vec::new();
    for cref in &spec.projections {
        let def = ctx.schema.column_def(*cref);
        let col = col_of(cref.table)?;
        let fk_target = match def.role {
            ColumnRole::ForeignKey(t) => Some(t),
            _ => None,
        };
        projs.push(match (&def.role, def.visibility.is_hidden()) {
            (ColumnRole::PrimaryKey, _) => Proj::Pk {
                table: cref.table,
                col,
            },
            (_, true) => Proj::Hidden {
                table: cref.table,
                column: cref.column,
                col,
                fk_target,
            },
            (_, false) => Proj::Visible {
                key: (cref.table.0, cref.column.0),
                col,
                fk_target,
            },
        });
    }
    // Present a stored (physical) key value in the logical space.
    let logical_key = |target: Option<TableId>, v: Value| -> Value {
        match (target, &v) {
            (Some(t), Value::Int(id)) if !ctx.hidden.liveness(t).all_live() => {
                Value::Int(ctx.hidden.live_rank(t, RowId(*id as u32)) as i64)
            }
            _ => v,
        }
    };

    // Probers over all temps.
    let probe_scope = RamScope::new(ctx.ram);
    let mut proj_probers: HashMap<(u16, u16), TempProber<'_>> = HashMap::new();
    for (key, temp) in &proj_temps {
        proj_probers.insert(*key, temp.prober(&probe_scope)?);
    }

    // ---- Stream candidates in RAM-sized batches ----
    //
    // Bloom positives are confirmed in bulk: the batch's member ids are
    // sorted in RAM and merged against ONE sequential scan of the temp,
    // instead of a per-candidate flash binary search — the difference
    // between O(batch · log n) page opens and O(temp pages) per batch.
    let n_cols = match skt {
        Some(s) => s.table_order().len(),
        None => 1,
    };
    let row_width = n_cols * std::mem::size_of::<RowId>();
    // Half the remaining RAM for the batch, keeping headroom for the
    // verification scans' page buffers; preallocated exactly so the
    // tracked vector never grows past its share.
    let page = ctx.volume.page_size();
    let batch_cap =
        ((ctx.ram.available() / 2).saturating_sub(2 * page) / row_width.max(1)).clamp(16, 8192);
    let batch_scope = RamScope::new(ctx.ram);
    let mut batch: ghostdb_ram::TrackedVec<RowId> =
        ghostdb_ram::TrackedVec::with_capacity(&batch_scope, batch_cap * n_cols)?;

    let mut skt_ns = 0u64;
    let mut skt_in = 0u64;
    // Per Bloom step: (probes, bloom hits, exact-confirmed, sim ns).
    let mut bloom_runtime = vec![(0u64, 0u64, 0u64, 0u64); bloom_steps.len()];
    let mut project_ns = 0u64;
    let mut rows_out = 0u64;
    let mut result = ResultSet {
        columns: spec.output_columns(ctx.schema),
        rows: Vec::new(),
    };
    // Analytic epilogue: present only when the query aggregates, groups,
    // orders or limits. `None` keeps the plain SPJ fast path (and its
    // exact operator list) untouched.
    let mut epilogue =
        Epilogue::for_spec(spec, ctx.clock.clone(), ctx.config.cpu.tuple_op_ns, ctx.ram)?;

    // Candidate ids arrive block-at-a-time; the block outlives one batch
    // (a batch may be smaller or larger than a block).
    let mut cand_block = IdBlock::new();
    let mut cand_pos = 0usize;
    // Scratch for the batched Bloom probes, reused across batches.
    let mut probe_keys: Vec<u64> = Vec::new();
    let mut probe_rows: Vec<usize> = Vec::new();
    let mut probe_hits: Vec<bool> = Vec::new();
    let mut exhausted = false;
    while !exhausted {
        // Phase 1: fill the batch with SKT rows.
        batch.clear();
        let mut batch_rows = 0usize;
        while batch_rows < batch_cap {
            if cand_pos == cand_block.len() {
                candidates.next_block(&mut cand_block)?;
                cand_pos = 0;
                if cand_block.is_empty() {
                    exhausted = true;
                    break;
                }
            }
            let id = cand_block.as_slice()[cand_pos];
            cand_pos += 1;
            let t0 = ctx.clock.now();
            skt_in += 1;
            match cursor.as_mut() {
                Some(cur) => {
                    for rid in cur.fetch(id)?.ids {
                        batch.push(rid)?;
                    }
                }
                None => batch.push(id)?,
            }
            batch_rows += 1;
            skt_ns += ctx.clock.now().since(t0);
        }
        if batch_rows == 0 {
            break;
        }
        let rows = |b: &ghostdb_ram::TrackedVec<RowId>, i: usize| -> Vec<RowId> {
            b.as_slice()[i * n_cols..(i + 1) * n_cols].to_vec()
        };
        let mut alive = vec![true; batch_rows];

        // Phases 2+3: post steps in plan order. A Bloom step
        // batch-probes then batch-confirms; a hidden verify
        // random-reads each survivor.
        for post_op in &post_order {
            match *post_op {
                PostOp::Bloom(bi) => {
                    let b = &mut bloom_steps[bi];
                    let t0 = ctx.clock.now();
                    let member_col = col_of(b.pred.column.table)?;
                    // Gather the surviving members and probe them in one
                    // batch: one cache-line touch per key, one clock
                    // charge for all.
                    probe_keys.clear();
                    probe_rows.clear();
                    for (i, a) in alive.iter().enumerate() {
                        if *a {
                            probe_keys.push(batch.as_slice()[i * n_cols + member_col].0 as u64);
                            probe_rows.push(i);
                        }
                    }
                    bloom_runtime[bi].0 += probe_keys.len() as u64;
                    ctx.clock.advance(
                        ctx.config.cpu.hash_ns * b.bloom.k() as u64 * probe_keys.len() as u64,
                    );
                    b.bloom.probe_batch(&probe_keys, &mut probe_hits);
                    let mut positives: Vec<(RowId, usize)> = Vec::new();
                    for ((&key, &row), &hit) in probe_keys.iter().zip(&probe_rows).zip(&probe_hits)
                    {
                        if hit {
                            positives.push((RowId(key as u32), row));
                        } else {
                            alive[row] = false;
                        }
                    }
                    bloom_runtime[bi].1 += positives.len() as u64;
                    // Exact confirmation: one sequential scan of the temp
                    // per batch (skipped entirely when the Bloom filter
                    // cleared the whole batch), so false positives never
                    // reach results.
                    if !positives.is_empty() {
                        positives.sort_unstable();
                        ctx.clock
                            .advance(ctx.config.cpu.tuple_op_ns * positives.len() as u64);
                        let mut scan = match &b.verify {
                            VerifySource::Shared(key) => proj_temps
                                .get(key)
                                .ok_or_else(|| GhostError::exec("missing shared verify temp"))?
                                .id_scan(&probe_scope)?,
                            VerifySource::Own(i) => own_verify_temps[*i].scan(&probe_scope)?,
                        };
                        let mut current = scan.next_id()?;
                        for (member, i) in positives {
                            while let Some(t) = current {
                                if t >= member {
                                    break;
                                }
                                current = scan.next_id()?;
                            }
                            if current == Some(member) {
                                bloom_runtime[bi].2 += 1;
                            } else {
                                alive[i] = false;
                            }
                        }
                    }
                    bloom_runtime[bi].3 += ctx.clock.now().since(t0);
                }
                PostOp::Verify(vi) => {
                    let v = &mut verify_steps[vi];
                    let t0 = ctx.clock.now();
                    let member_col = col_of(v.pred.column.table)?;
                    for (i, a) in alive.iter_mut().enumerate() {
                        if !*a {
                            continue;
                        }
                        v.checked += 1;
                        let member = batch.as_slice()[i * n_cols + member_col];
                        ctx.clock.advance(ctx.config.cpu.tuple_op_ns);
                        // Base rows test their stored key against the
                        // precomputed range; delta rows compare values in
                        // RAM (exact even for delta-dictionary strings).
                        let pass = ctx.hidden.matches_at(
                            v.pred.column.table,
                            v.pred.column.column,
                            member,
                            v.pred.op,
                            &v.pred.value,
                            v.range,
                        )?;
                        if pass {
                            v.passed += 1;
                        } else {
                            *a = false;
                        }
                    }
                    v.ns += ctx.clock.now().since(t0);
                }
            }
        }

        // Phase 4: projection of survivors.
        't_project: for (i, a) in alive.iter().enumerate() {
            if !*a {
                continue;
            }
            let t0 = ctx.clock.now();
            let row_ids = rows(&batch, i);
            let mut row: Vec<Value> = Vec::with_capacity(projs.len());
            for p in &projs {
                ctx.clock.advance(ctx.config.cpu.tuple_op_ns);
                match p {
                    Proj::Pk { table, col } => row.push(Value::Int(
                        ctx.hidden.live_rank(*table, row_ids[*col]) as i64,
                    )),
                    Proj::Hidden {
                        table,
                        column,
                        col,
                        fk_target,
                    } => {
                        let v = ctx
                            .hidden
                            .value(&probe_scope, *table, *column, row_ids[*col])?;
                        row.push(logical_key(*fk_target, v));
                    }
                    Proj::Visible {
                        key,
                        col,
                        fk_target,
                    } => {
                        let prober = proj_probers
                            .get_mut(key)
                            .ok_or_else(|| GhostError::exec("missing projection temp"))?;
                        match prober.probe(row_ids[*col])? {
                            Some(v) => row.push(logical_key(*fk_target, v)),
                            None => {
                                // The fetch was filtered by a predicate
                                // this candidate fails — drop it
                                // (exactness net).
                                project_ns += ctx.clock.now().since(t0);
                                continue 't_project;
                            }
                        }
                    }
                }
            }
            project_ns += ctx.clock.now().since(t0);
            rows_out += 1;
            match epilogue.as_mut() {
                Some(epi) => {
                    if !epi.push(row)? {
                        // A bare LIMIT is satisfied — stop pulling.
                        exhausted = true;
                        break 't_project;
                    }
                }
                None => result.rows.push(row),
            }
        }
    }
    drop(batch);

    // ---- Assemble the report ----
    let total_gallops: u64 = source_meta
        .iter()
        .map(|(_, m)| m.seeks.load(Ordering::Relaxed))
        .sum();
    for (mut stats, meter) in source_meta {
        stats.sim_ns += meter.ns.load(Ordering::Relaxed);
        stats.tuples_out = meter.out.load(Ordering::Relaxed);
        stats.tuples_in = stats.tuples_out;
        stats.attrs = vec![
            ("blocks", meter.blocks.load(Ordering::Relaxed)),
            ("gallops", meter.seeks.load(Ordering::Relaxed)),
        ];
        report_ops.push(stats);
    }
    if n_sources > 1 {
        report_ops.push(OpStats {
            name: "merge-intersect".into(),
            detail: format!("{n_sources} source(s)"),
            tuples_in: merge_meter.out.load(Ordering::Relaxed),
            tuples_out: merge_meter.out.load(Ordering::Relaxed),
            sim_ns: merge_meter.ns.load(Ordering::Relaxed),
            ram_peak: 0,
            attrs: vec![
                ("blocks", merge_meter.blocks.load(Ordering::Relaxed)),
                ("gallops", total_gallops),
            ],
        });
    }
    let mut skt_attrs = vec![("blocks", merge_meter.blocks.load(Ordering::Relaxed))];
    if let Some(m) = &live_meter {
        let entered = m.out.load(Ordering::Relaxed);
        let survived = merge_meter.out.load(Ordering::Relaxed);
        skt_attrs.push(("live_drops", entered.saturating_sub(survived)));
    }
    report_ops.push(OpStats {
        name: if has_children {
            "access-skt"
        } else {
            "anchor-rows"
        }
        .into(),
        detail: ctx.schema.table(spec.anchor).name.clone(),
        tuples_in: skt_in,
        tuples_out: skt_in,
        sim_ns: skt_ns,
        ram_peak: skt_scope.peak(),
        attrs: skt_attrs,
    });
    for post_op in &post_order {
        match *post_op {
            PostOp::Bloom(bi) => {
                let b = &bloom_steps[bi];
                report_ops.push(b.build_stats.clone());
                let (probes, hits, confirmed, ns) = bloom_runtime[bi];
                report_ops.push(OpStats {
                    name: "bloom-probe".into(),
                    detail: ctx.pred_str(b.pred),
                    tuples_in: probes,
                    tuples_out: confirmed,
                    sim_ns: ns,
                    ram_peak: 0,
                    attrs: vec![("probes", probes), ("hits", hits), ("confirmed", confirmed)],
                });
            }
            PostOp::Verify(vi) => {
                let v = &verify_steps[vi];
                report_ops.push(OpStats {
                    name: "hidden-verify".into(),
                    detail: ctx.pred_str(v.pred),
                    tuples_in: v.checked,
                    tuples_out: v.passed,
                    sim_ns: v.ns,
                    ram_peak: 0,
                    attrs: Vec::new(),
                });
            }
        }
    }
    report_ops.push(OpStats {
        name: "project".into(),
        detail: result.columns.join(", "),
        tuples_in: rows_out,
        tuples_out: rows_out,
        sim_ns: project_ns,
        ram_peak: probe_scope.peak(),
        attrs: Vec::new(),
    });
    if let Some(epi) = epilogue {
        let (rows, epi_ops) = epi.finish()?;
        result.rows = rows;
        report_ops.extend(epi_ops);
    }

    drop(proj_probers);
    for (_, temp) in proj_temps.into_iter() {
        temp.free()?;
    }
    for temp in own_verify_temps.into_iter() {
        temp.free()?;
    }

    let bus_end = ctx.pc.bus_stats();
    let report = ExecReport {
        plan_label: plan.label.clone(),
        ops: report_ops,
        total_ns: ctx.clock.now().since(t_start),
        ram_peak: ctx.ram.peak(),
        result_rows: result.rows.len() as u64,
        bus_bytes_to_device: bus_end.0 - bus_start.0,
        bus_bytes_to_pc: bus_end.1 - bus_start.1,
        flash: ctx.volume.nand().stats().since(&flash_start),
    };
    Ok((result, report))
}

/// Read back the stored ids of a temp (bloom rebuild path).
fn temp_ids(temp: &VisibleTemp, scope: &RamScope) -> Result<Vec<RowId>> {
    let mut prober = temp.prober(scope)?;
    let mut out = Vec::with_capacity(temp.len() as usize);
    for i in 0..temp.len() {
        out.push(prober.record_id(i)?);
    }
    Ok(out)
}

fn build_source<'a>(
    ctx: &'a ExecContext<'_>,
    spec: &QuerySpec,
    preds: &[Predicate],
    source: &Source,
) -> Result<BuiltSource<'a>> {
    let scope = RamScope::new(ctx.ram);
    let t0 = ctx.clock.now();
    let anchor = spec.anchor;
    let (stream, name, detail): (Box<dyn IdStream + 'a>, &str, String) = match source {
        Source::HiddenIndexClimb { pred } => {
            let p = &preds[*pred];
            let idx = ctx.indexes.value_index(p.column)?;
            // Base key range for the flash directory; the index's RAM
            // delta is matched by value inside lookup_pred, so rows
            // inserted after load (even with strings outside the base
            // dictionary) are found too.
            let range = ctx
                .hidden
                .key_range(p.column.table, p.column.column, p.op, &p.value)?;
            let stream: Box<dyn IdStream + 'a> =
                Box::new(idx.lookup_pred(&scope, p.op, &p.value, range, anchor, ctx.sort_ram())?);
            (stream, "climbing-index", ctx.pred_str(p))
        }
        Source::HiddenScanTranslate { pred } => {
            let p = &preds[*pred];
            // Delta-aware scan: flash base filtered through the key
            // range, RAM delta by value comparison.
            let mut scan = ctx.hidden.predicate_scan(
                &scope,
                p.column.table,
                p.column.column,
                p.op,
                &p.value,
            )?;
            // One comparison per tuple the scan actually examines (zero
            // base rows when the key range proves emptiness).
            ctx.clock
                .advance(ctx.config.cpu.tuple_op_ns * scan.planned_rows());
            let stream: Box<dyn IdStream + 'a> = if p.column.table == anchor {
                Box::new(scan)
            } else {
                let kidx = ctx.indexes.key_index(p.column.table)?;
                Box::new(kidx.translate(&scope, &mut scan, anchor, ctx.sort_ram())?)
            };
            (stream, "scan+translate", ctx.pred_str(p))
        }
        Source::VisibleDelegate { pred } => {
            let p = &preds[*pred];
            let mut delegated = ctx.pc.eval_predicate(p)?;
            let stream: Box<dyn IdStream + 'a> = if p.column.table == anchor {
                delegated
            } else {
                let kidx = ctx.indexes.key_index(p.column.table)?;
                Box::new(kidx.translate(&scope, delegated.as_mut(), anchor, ctx.sort_ram())?)
            };
            (stream, "delegate+translate", ctx.pred_str(p))
        }
        Source::CrossGroup {
            table,
            hidden,
            visible,
        } => {
            let mut level_streams: Vec<Box<dyn IdStream + 'a>> = Vec::new();
            for &i in hidden {
                let p = &preds[i];
                let idx = ctx.indexes.value_index(p.column)?;
                let range =
                    ctx.hidden
                        .key_range(p.column.table, p.column.column, p.op, &p.value)?;
                level_streams.push(Box::new(idx.lookup_pred(
                    &scope,
                    p.op,
                    &p.value,
                    range,
                    *table,
                    ctx.sort_ram(),
                )?));
            }
            for &i in visible {
                let p = &preds[i];
                level_streams.push(ctx.pc.eval_predicate(p)?);
            }
            let mut combined: Box<dyn IdStream + 'a> = if level_streams.len() == 1 {
                level_streams.pop().expect("one")
            } else {
                make_merge(ctx, level_streams)
            };
            let stream: Box<dyn IdStream + 'a> = if *table == anchor {
                combined
            } else {
                let kidx = ctx.indexes.key_index(*table)?;
                Box::new(kidx.translate(&scope, combined.as_mut(), anchor, ctx.sort_ram())?)
            };
            (
                stream,
                "cross-filter",
                format!(
                    "{} ({} hidden, {} visible)",
                    ctx.schema.table(*table).name,
                    hidden.len(),
                    visible.len()
                ),
            )
        }
    };
    let setup_ns = ctx.clock.now().since(t0);
    // The scalar foil: strip every stream down to id-at-a-time pulls.
    let stream: Box<dyn IdStream + 'a> = match ctx.pipeline {
        PipelineMode::Blocked => stream,
        PipelineMode::Scalar => Box::new(ScalarFallback(stream)),
    };
    let meter = Arc::new(StreamMeter::default());
    Ok(BuiltSource {
        stream: Box::new(Timed {
            inner: stream,
            clock: ctx.clock.clone(),
            meter: meter.clone(),
        }),
        meter,
        stats: OpStats {
            name: name.into(),
            detail,
            tuples_in: 0,
            tuples_out: 0,
            sim_ns: setup_ns,
            ram_peak: scope.peak(),
            attrs: Vec::new(),
        },
    })
}
