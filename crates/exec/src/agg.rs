//! The analytic epilogue: device-side aggregation, ordering and LIMIT.
//!
//! Projected rows leave the pipeline's Phase 4 one at a time; when the
//! query carries aggregates, `GROUP BY`, `ORDER BY` or `LIMIT`, they are
//! folded here — **on the device** — before anything is sealed for the
//! PC. That placement is the point: for `SELECT SUM(hidden) … GROUP BY
//! visible`, hidden operands are consumed inside the fold and only the
//! group keys plus the scalar results ever reach the bus
//! (`tests/leak_freedom.rs` greps every frame to prove it).
//!
//! # RAM contract
//!
//! The epilogue's state is charged to the 64 KB device budget through a
//! [`RamScope`] guard that is resized as state grows:
//!
//! * the **fold** holds one accumulator row per distinct group;
//! * **`ORDER BY` + `LIMIT k`** holds a bounded top-k buffer of at most
//!   `k` rows (the eviction order is exactly equivalent to a stable sort
//!   followed by truncation);
//! * **`ORDER BY`** without `LIMIT` buffers the full result — the only
//!   unbounded case, and it fails with `OutOfDeviceRam` rather than
//!   silently spilling.
//!
//! # Reference semantics
//!
//! * Groups are emitted in **first-seen order** (insertion order of the
//!   group key) unless `ORDER BY` says otherwise.
//! * Sorting is **stable**: ties keep arrival order.
//! * `AVG` is integer division **truncating toward zero**; `SUM`/`AVG`
//!   accumulate in 128 bits and error (rather than wrap) if the total
//!   leaves the 64-bit `INTEGER` range.
//! * With **zero qualifying rows** and no `GROUP BY`, the query yields
//!   one all-zero row if every SELECT item is a `COUNT`, and no rows
//!   otherwise (this dialect has no NULL to return for an empty `SUM`).

use std::cmp::Ordering as CmpOrdering;
use std::collections::HashMap;

use ghostdb_catalog::OrderKey;
use ghostdb_ram::{RamBudget, RamScope, ScopedGuard};
use ghostdb_types::{AggFunc, GhostError, Result, SimClock, Value};

use crate::query::{OutputExpr, QuerySpec};
use crate::stats::OpStats;

/// One running aggregate.
enum Acc {
    Count(u64),
    Sum(i128),
    Avg { sum: i128, n: u64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl Acc {
    fn new(func: AggFunc) -> Acc {
        match func {
            AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => Acc::Sum(0),
            AggFunc::Avg => Acc::Avg { sum: 0, n: 0 },
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
        }
    }

    fn update(&mut self, arg: Option<&Value>) -> Result<()> {
        let int = || -> Result<i128> {
            arg.and_then(Value::as_int)
                .map(i128::from)
                .ok_or_else(|| GhostError::exec("aggregate operand is not an INTEGER"))
        };
        match self {
            Acc::Count(n) => *n += 1,
            Acc::Sum(s) => *s += int()?,
            Acc::Avg { sum, n } => {
                *sum += int()?;
                *n += 1;
            }
            Acc::Min(cur) => {
                let v = arg.ok_or_else(|| GhostError::exec("MIN needs an operand"))?;
                let replace = match cur {
                    None => true,
                    Some(c) => v.cmp_same_type(c)? == CmpOrdering::Less,
                };
                if replace {
                    *cur = Some(v.clone());
                }
            }
            Acc::Max(cur) => {
                let v = arg.ok_or_else(|| GhostError::exec("MAX needs an operand"))?;
                let replace = match cur {
                    None => true,
                    Some(c) => v.cmp_same_type(c)? == CmpOrdering::Greater,
                };
                if replace {
                    *cur = Some(v.clone());
                }
            }
        }
        Ok(())
    }

    fn finish(self) -> Result<Value> {
        match self {
            Acc::Count(n) => Ok(Value::Int(n as i64)),
            Acc::Sum(s) => i64::try_from(s)
                .map(Value::Int)
                .map_err(|_| GhostError::exec("SUM exceeds the INTEGER range")),
            Acc::Avg { sum, n } => {
                // Groups only exist once a row arrived, so n > 0 here.
                Ok(Value::Int((sum / n as i128) as i64))
            }
            Acc::Min(v) | Acc::Max(v) => {
                v.ok_or_else(|| GhostError::exec("MIN/MAX finished with no input"))
            }
        }
    }
}

/// One output slot of a group: either the (constant) group-key column
/// value captured from the group's first row, or a running aggregate.
enum Slot {
    Val(Value),
    Acc(Acc),
}

struct Group {
    slots: Vec<Slot>,
}

enum State {
    /// No aggregates, no GROUP BY: rows pass through the output mapping
    /// (and, with ORDER BY/LIMIT, a buffer). `(row, arrival)` pairs keep
    /// ties stable.
    Pass { rows: Vec<(Vec<Value>, u64)> },
    /// Aggregate fold keyed by the GROUP BY values; `groups` preserves
    /// first-seen order, `index` finds a key's group in O(1).
    Fold {
        groups: Vec<Group>,
        index: HashMap<Vec<Value>, usize>,
    },
}

/// Rough device-RAM footprint of a value (enum + payload).
fn value_bytes(v: &Value) -> usize {
    match v {
        Value::Text(s) => 32 + s.len(),
        _ => 16,
    }
}

fn row_bytes(row: &[Value]) -> usize {
    24 + row.iter().map(value_bytes).sum::<usize>()
}

/// Compare two buffered rows by the ORDER BY keys, arrival breaking ties
/// (types within an output item are uniform post-binding, so a mismatch
/// cannot occur; `Equal` is the safe fallback).
fn cmp_rows(order_by: &[OrderKey], a: &(Vec<Value>, u64), b: &(Vec<Value>, u64)) -> CmpOrdering {
    for k in order_by {
        let o = a.0[k.item]
            .cmp_same_type(&b.0[k.item])
            .unwrap_or(CmpOrdering::Equal);
        let o = if k.desc { o.reverse() } else { o };
        if o != CmpOrdering::Equal {
            return o;
        }
    }
    a.1.cmp(&b.1)
}

/// The epilogue operator. Built per query when the spec needs one;
/// plain SPJ queries skip it entirely and keep the seed's exact
/// operator list.
pub struct Epilogue {
    clock: SimClock,
    tuple_ns: u64,
    output: Vec<OutputExpr>,
    group_by: Vec<usize>,
    order_by: Vec<OrderKey>,
    limit: Option<u64>,
    state: State,
    scope: RamScope,
    guard: ScopedGuard,
    bytes: usize,
    rows_in: u64,
    ns: u64,
}

impl Epilogue {
    /// Build the epilogue for `spec`, or `None` when the query is plain
    /// SPJ (identity output, no grouping, ordering or limit) and rows
    /// can stream straight into the result set.
    pub fn for_spec(
        spec: &QuerySpec,
        clock: SimClock,
        tuple_ns: u64,
        ram: &RamBudget,
    ) -> Result<Option<Epilogue>> {
        if spec.is_plain_output()
            && spec.group_by.is_empty()
            && spec.order_by.is_empty()
            && spec.limit.is_none()
        {
            return Ok(None);
        }
        let fold = spec.has_aggregates() || !spec.group_by.is_empty();
        let state = if fold {
            State::Fold {
                groups: Vec::new(),
                index: HashMap::new(),
            }
        } else {
            State::Pass { rows: Vec::new() }
        };
        let scope = RamScope::new(ram);
        let guard = scope.alloc(0)?;
        Ok(Some(Epilogue {
            clock,
            tuple_ns,
            output: spec.output.clone(),
            group_by: spec.group_by.clone(),
            order_by: spec.order_by.clone(),
            limit: spec.limit,
            state,
            scope,
            guard,
            bytes: 0,
            rows_in: 0,
            ns: 0,
        }))
    }

    fn charge(&mut self, items: u64) {
        let ns = self.tuple_ns * items;
        self.clock.advance(ns);
        self.ns += ns;
    }

    /// Consume one projected row. Returns `false` once the epilogue is
    /// saturated — a plain `LIMIT k` without `ORDER BY` needs no more
    /// input after `k` rows, and the executor may stop pulling.
    pub fn push(&mut self, row: Vec<Value>) -> Result<bool> {
        self.rows_in += 1;
        self.charge(self.output.len() as u64);
        let arrival = self.rows_in;
        match &mut self.state {
            State::Fold { groups, index } => {
                let key: Vec<Value> = self.group_by.iter().map(|&i| row[i].clone()).collect();
                let gi = match index.get(&key) {
                    Some(&gi) => gi,
                    None => {
                        let slots = self
                            .output
                            .iter()
                            .map(|item| match item {
                                OutputExpr::Column(i) => Slot::Val(row[*i].clone()),
                                OutputExpr::Agg { func, .. } => Slot::Acc(Acc::new(*func)),
                            })
                            .collect();
                        groups.push(Group { slots });
                        self.bytes += row_bytes(&key) + 24 * self.output.len();
                        self.guard.resize(self.bytes)?;
                        index.insert(key, groups.len() - 1);
                        groups.len() - 1
                    }
                };
                for (slot, item) in groups[gi].slots.iter_mut().zip(&self.output) {
                    if let (Slot::Acc(acc), OutputExpr::Agg { arg, .. }) = (slot, item) {
                        acc.update(arg.map(|i| &row[i]))?;
                    }
                }
                Ok(true)
            }
            State::Pass { rows } => {
                let out: Vec<Value> = self
                    .output
                    .iter()
                    .map(|item| match item {
                        OutputExpr::Column(i) => row[*i].clone(),
                        // Pass mode has no aggregates by construction.
                        OutputExpr::Agg { .. } => unreachable!("aggregate in pass-through"),
                    })
                    .collect();
                if self.order_by.is_empty() {
                    rows.push((out, arrival));
                    self.bytes += row_bytes(&rows.last().expect("just pushed").0);
                    self.guard.resize(self.bytes)?;
                    // Saturate a bare LIMIT: order is arrival order, so
                    // the first k rows are the answer.
                    Ok(match self.limit {
                        Some(k) => (rows.len() as u64) < k,
                        None => true,
                    })
                } else {
                    rows.push((out, arrival));
                    self.bytes += row_bytes(&rows.last().expect("just pushed").0);
                    if let Some(k) = self.limit {
                        if rows.len() as u64 > k {
                            // Bounded top-k: evict the worst row (the
                            // arrival tiebreak makes this equivalent to
                            // a stable sort + truncate).
                            let ns = self.tuple_ns * rows.len() as u64;
                            self.clock.advance(ns);
                            self.ns += ns;
                            let worst = (0..rows.len())
                                .max_by(|&a, &b| cmp_rows(&self.order_by, &rows[a], &rows[b]))
                                .expect("non-empty");
                            let evicted = rows.swap_remove(worst);
                            self.bytes -= row_bytes(&evicted.0);
                        }
                    }
                    self.guard.resize(self.bytes)?;
                    Ok(true)
                }
            }
        }
    }

    /// Finish the fold/sort and return the result rows plus the
    /// per-operator statistics to append to the report.
    pub fn finish(self) -> Result<(Vec<Vec<Value>>, Vec<OpStats>)> {
        let mut ops = Vec::new();
        let is_pass = matches!(self.state, State::Pass { .. });
        let mut rows: Vec<(Vec<Value>, u64)> = match self.state {
            State::Fold { groups, .. } => {
                let n_aggs = self
                    .output
                    .iter()
                    .filter(|i| matches!(i, OutputExpr::Agg { .. }))
                    .count();
                let mut out = Vec::with_capacity(groups.len());
                if groups.is_empty() && self.group_by.is_empty() {
                    // Zero qualifying rows, global aggregate: COUNTs are
                    // zero; anything else has no value to report.
                    let all_count = self.output.iter().all(|i| {
                        matches!(
                            i,
                            OutputExpr::Agg {
                                func: AggFunc::Count,
                                ..
                            }
                        )
                    });
                    if all_count {
                        out.push((vec![Value::Int(0); self.output.len()], 0));
                    }
                } else {
                    for (gi, g) in groups.into_iter().enumerate() {
                        let row = g
                            .slots
                            .into_iter()
                            .map(|s| match s {
                                Slot::Val(v) => Ok(v),
                                Slot::Acc(a) => a.finish(),
                            })
                            .collect::<Result<Vec<Value>>>()?;
                        out.push((row, gi as u64));
                    }
                }
                ops.push(OpStats {
                    name: "aggregate".into(),
                    detail: format!(
                        "{} group key(s), {} aggregate(s)",
                        self.group_by.len(),
                        n_aggs
                    ),
                    tuples_in: self.rows_in,
                    tuples_out: out.len() as u64,
                    sim_ns: self.ns,
                    ram_peak: self.scope.peak(),
                    attrs: Vec::new(),
                });
                out
            }
            State::Pass { rows } => rows,
        };

        if !self.order_by.is_empty() {
            let n = rows.len() as u64;
            let sort_cost = self.tuple_ns * n * (64 - n.leading_zeros() as u64);
            self.clock.advance(sort_cost);
            rows.sort_by(|a, b| cmp_rows(&self.order_by, a, b));
            let considered = if is_pass { self.rows_in } else { n };
            let mut out_n = n;
            if let Some(k) = self.limit {
                rows.truncate(k as usize);
                out_n = rows.len() as u64;
            }
            ops.push(OpStats {
                name: if self.limit.is_some() {
                    "top-k"
                } else {
                    "sort"
                }
                .into(),
                detail: format!(
                    "{} key(s){}",
                    self.order_by.len(),
                    self.limit
                        .map(|k| format!(", limit {k}"))
                        .unwrap_or_default()
                ),
                tuples_in: considered,
                tuples_out: out_n,
                sim_ns: self.ns + sort_cost,
                ram_peak: self.scope.peak(),
                attrs: Vec::new(),
            });
        } else if let Some(k) = self.limit {
            rows.truncate(k as usize);
        }

        Ok((rows.into_iter().map(|(r, _)| r).collect(), ops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock() -> SimClock {
        SimClock::new()
    }

    fn push_all(e: &mut Epilogue, rows: Vec<Vec<Value>>) {
        for r in rows {
            e.push(r).unwrap();
        }
    }

    fn spec_like(
        output: Vec<OutputExpr>,
        group_by: Vec<usize>,
        order_by: Vec<OrderKey>,
        limit: Option<u64>,
    ) -> Epilogue {
        // Build an Epilogue directly (bypassing QuerySpec) for unit tests.
        let ram = RamBudget::new(64 * 1024);
        let scope = RamScope::new(&ram);
        let guard = scope.alloc(0).unwrap();
        Epilogue {
            clock: clock(),
            tuple_ns: 1,
            output,
            group_by,
            order_by,
            limit,
            state: State::Fold {
                groups: Vec::new(),
                index: HashMap::new(),
            },
            scope,
            guard,
            bytes: 0,
            rows_in: 0,
            ns: 0,
        }
    }

    #[test]
    fn grouped_sum_first_seen_order() {
        let mut e = spec_like(
            vec![
                OutputExpr::Column(0),
                OutputExpr::Agg {
                    func: AggFunc::Sum,
                    arg: Some(1),
                },
            ],
            vec![0],
            vec![],
            None,
        );
        push_all(
            &mut e,
            vec![
                vec![Value::Int(2), Value::Int(10)],
                vec![Value::Int(1), Value::Int(5)],
                vec![Value::Int(2), Value::Int(7)],
            ],
        );
        let (rows, ops) = e.finish().unwrap();
        assert_eq!(
            rows,
            vec![
                vec![Value::Int(2), Value::Int(17)],
                vec![Value::Int(1), Value::Int(5)],
            ]
        );
        assert_eq!(ops[0].name, "aggregate");
        assert_eq!(ops[0].tuples_in, 3);
        assert_eq!(ops[0].tuples_out, 2);
    }

    #[test]
    fn avg_truncates_toward_zero() {
        let mut e = spec_like(
            vec![OutputExpr::Agg {
                func: AggFunc::Avg,
                arg: Some(0),
            }],
            vec![],
            vec![],
            None,
        );
        push_all(&mut e, vec![vec![Value::Int(-3)], vec![Value::Int(-4)]]);
        let (rows, _) = e.finish().unwrap();
        assert_eq!(rows, vec![vec![Value::Int(-3)]]); // -7/2 == -3 (trunc)
    }

    #[test]
    fn empty_input_count_vs_sum() {
        let e = spec_like(
            vec![OutputExpr::Agg {
                func: AggFunc::Count,
                arg: None,
            }],
            vec![],
            vec![],
            None,
        );
        let (rows, _) = e.finish().unwrap();
        assert_eq!(rows, vec![vec![Value::Int(0)]]);

        let e = spec_like(
            vec![OutputExpr::Agg {
                func: AggFunc::Sum,
                arg: Some(0),
            }],
            vec![],
            vec![],
            None,
        );
        let (rows, _) = e.finish().unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn sum_overflow_is_an_error() {
        let mut e = spec_like(
            vec![OutputExpr::Agg {
                func: AggFunc::Sum,
                arg: Some(0),
            }],
            vec![],
            vec![],
            None,
        );
        push_all(
            &mut e,
            vec![vec![Value::Int(i64::MAX)], vec![Value::Int(i64::MAX)]],
        );
        assert!(e.finish().unwrap_err().to_string().contains("SUM"));
    }

    #[test]
    fn top_k_equals_stable_sort_truncate() {
        // Build the bounded buffer via Pass state with ORDER BY + LIMIT.
        let ram = RamBudget::new(64 * 1024);
        let scope = RamScope::new(&ram);
        let mk = |limit| Epilogue {
            clock: clock(),
            tuple_ns: 1,
            output: vec![OutputExpr::Column(0), OutputExpr::Column(1)],
            group_by: vec![],
            order_by: vec![OrderKey {
                item: 0,
                desc: false,
            }],
            limit,
            state: State::Pass { rows: Vec::new() },
            scope: scope.clone(),
            guard: scope.alloc(0).unwrap(),
            bytes: 0,
            rows_in: 0,
            ns: 0,
        };
        let data: Vec<Vec<Value>> = (0..50)
            .map(|i| {
                vec![
                    Value::Int((i * 37) % 11), // duplicate sort keys
                    Value::Int(i),             // payload marks arrival
                ]
            })
            .collect();
        let mut bounded = mk(Some(7));
        push_all(&mut bounded, data.clone());
        let (got, ops) = bounded.finish().unwrap();
        assert_eq!(ops[0].name, "top-k");

        let mut full = mk(None);
        push_all(&mut full, data);
        let (mut want, _) = full.finish().unwrap();
        want.truncate(7);
        assert_eq!(got, want, "top-k must equal stable sort + truncate");
    }

    #[test]
    fn bare_limit_saturates() {
        let ram = RamBudget::new(64 * 1024);
        let scope = RamScope::new(&ram);
        let mut e = Epilogue {
            clock: clock(),
            tuple_ns: 1,
            output: vec![OutputExpr::Column(0)],
            group_by: vec![],
            order_by: vec![],
            limit: Some(2),
            state: State::Pass { rows: Vec::new() },
            guard: scope.alloc(0).unwrap(),
            scope,
            bytes: 0,
            rows_in: 0,
            ns: 0,
        };
        assert!(e.push(vec![Value::Int(1)]).unwrap());
        assert!(!e.push(vec![Value::Int(2)]).unwrap(), "saturated at limit");
        let (rows, _) = e.finish().unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn min_max_over_text() {
        let mut e = spec_like(
            vec![
                OutputExpr::Agg {
                    func: AggFunc::Min,
                    arg: Some(0),
                },
                OutputExpr::Agg {
                    func: AggFunc::Max,
                    arg: Some(0),
                },
            ],
            vec![],
            vec![],
            None,
        );
        for s in ["pear", "apple", "quince"] {
            e.push(vec![Value::Text(s.into())]).unwrap();
        }
        let (rows, _) = e.finish().unwrap();
        assert_eq!(
            rows,
            vec![vec![
                Value::Text("apple".into()),
                Value::Text("quince".into())
            ]]
        );
    }
}
