//! Physical plans: the paper's Pre-/Post-/Cross-filtering alternatives.

use ghostdb_catalog::Schema;
use ghostdb_types::{GhostError, Result, TableId};

use crate::query::QuerySpec;

/// How one (or a group of) selection predicate(s) contributes an
/// ascending anchor-id stream *before* the SKT access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Source {
    /// Hidden predicate via its climbing value index, probed directly at
    /// the anchor level ("reaching any other table ... in a single step").
    HiddenIndexClimb {
        /// Index into [`QuerySpec::predicates`].
        pred: usize,
    },
    /// Hidden predicate by scanning the stored column, then translating
    /// the matching ids to the anchor level (index-free fallback).
    HiddenScanTranslate {
        /// Index into [`QuerySpec::predicates`].
        pred: usize,
    },
    /// Visible predicate delegated to the PC; the returned id list is
    /// translated to the anchor through the climbing key index
    /// (Pre-filtering).
    VisibleDelegate {
        /// Index into [`QuerySpec::predicates`].
        pred: usize,
    },
    /// Cross-filtering: all listed predicates select on `table`; hidden
    /// ones probe their value indexes *at `table`'s own level*, visible
    /// ones are delegated, everything is intersected at that level, and
    /// the combined (smaller) list is translated to the anchor once.
    CrossGroup {
        /// The shared table.
        table: TableId,
        /// Hidden predicate indices (probed at `table` level).
        hidden: Vec<usize>,
        /// Visible predicate indices (delegated).
        visible: Vec<usize>,
    },
}

impl Source {
    /// Predicate indices consumed by this source.
    pub fn preds(&self) -> Vec<usize> {
        match self {
            Source::HiddenIndexClimb { pred }
            | Source::HiddenScanTranslate { pred }
            | Source::VisibleDelegate { pred } => vec![*pred],
            Source::CrossGroup {
                hidden, visible, ..
            } => hidden.iter().chain(visible).copied().collect(),
        }
    }
}

/// How a predicate filters SKT rows *after* the hidden joins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PostStep {
    /// Visible predicate: delegate once, build a Bloom filter over the
    /// returned ids and probe it per SKT row; an exact flash-temp lookup
    /// confirms Bloom positives, so results stay exact (Post-filtering,
    /// Figure 5).
    BloomVisible {
        /// Index into [`QuerySpec::predicates`].
        pred: usize,
    },
    /// Hidden predicate verified per candidate row by reading the stored
    /// value (one random flash read per row) — the "late hidden filter"
    /// alternative the demo's plan game exposes.
    HiddenVerify {
        /// Index into [`QuerySpec::predicates`].
        pred: usize,
    },
}

impl PostStep {
    /// Predicate index consumed by this step.
    pub fn pred(&self) -> usize {
        match self {
            PostStep::BloomVisible { pred } | PostStep::HiddenVerify { pred } => *pred,
        }
    }
}

/// A complete physical plan for a [`QuerySpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// Pre-filtering sources (intersected). Empty means a full anchor
    /// scan feeds the SKT.
    pub sources: Vec<Source>,
    /// Post-filtering steps, applied in order to each candidate row.
    pub post: Vec<PostStep>,
    /// Short label shown by explain/demo outputs (e.g. "P1").
    pub label: String,
}

impl Plan {
    /// Check that the plan covers each predicate exactly once and that
    /// its shapes are applicable (cross groups reference one table, ...).
    pub fn validate(&self, schema: &Schema, spec: &QuerySpec) -> Result<()> {
        let mut seen = vec![0usize; spec.predicates.len()];
        let mut mark = |i: usize| -> Result<()> {
            if i >= seen.len() {
                return Err(GhostError::exec(format!("plan references predicate {i}")));
            }
            seen[i] += 1;
            Ok(())
        };
        for s in &self.sources {
            for p in s.preds() {
                mark(p)?;
            }
            match s {
                Source::HiddenIndexClimb { pred } | Source::HiddenScanTranslate { pred } => {
                    if !schema.is_hidden(spec.predicates[*pred].column) {
                        return Err(GhostError::exec("hidden source over a visible predicate"));
                    }
                }
                Source::VisibleDelegate { pred } => {
                    if schema.is_hidden(spec.predicates[*pred].column) {
                        return Err(GhostError::exec(
                            "delegating a hidden predicate would leak it",
                        ));
                    }
                }
                Source::CrossGroup {
                    table,
                    hidden,
                    visible,
                } => {
                    if hidden.is_empty() && visible.len() < 2 {
                        return Err(GhostError::exec(
                            "cross group needs at least two predicates",
                        ));
                    }
                    for &i in hidden {
                        let p = &spec.predicates[i];
                        if p.column.table != *table || !schema.is_hidden(p.column) {
                            return Err(GhostError::exec("bad hidden member of cross group"));
                        }
                    }
                    for &i in visible {
                        let p = &spec.predicates[i];
                        if p.column.table != *table || schema.is_hidden(p.column) {
                            return Err(GhostError::exec("bad visible member of cross group"));
                        }
                    }
                }
            }
        }
        for step in &self.post {
            mark(step.pred())?;
            match step {
                PostStep::BloomVisible { pred } => {
                    if schema.is_hidden(spec.predicates[*pred].column) {
                        return Err(GhostError::exec(
                            "bloom post-filter on a hidden predicate would leak it",
                        ));
                    }
                }
                PostStep::HiddenVerify { pred } => {
                    if !schema.is_hidden(spec.predicates[*pred].column) {
                        return Err(GhostError::exec("hidden verify over a visible predicate"));
                    }
                }
            }
        }
        if let Some(i) = seen.iter().position(|&c| c != 1) {
            return Err(GhostError::exec(format!(
                "predicate {i} covered {} times (must be exactly 1)",
                seen[i]
            )));
        }
        Ok(())
    }

    /// Multi-line human description (the demo's plan view): the same
    /// operator tree `EXPLAIN ANALYZE` renders, without annotations.
    pub fn describe(&self, schema: &Schema, spec: &QuerySpec) -> String {
        let tree = crate::analyze::plan_nodes(schema, spec, self, None);
        crate::analyze::render_plan(&self.label, &tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_catalog::{Predicate, SchemaBuilder, TreeSchema, Visibility};
    use ghostdb_types::{ColumnId, DataType, ScalarOp, Value};

    fn setup() -> (Schema, QuerySpec) {
        let mut b = SchemaBuilder::new();
        b.table("Visit", "VisID")
            .column("Date", DataType::Integer, Visibility::Visible)
            .column("Purpose", DataType::Char(20), Visibility::Hidden);
        b.table("Prescription", "PreID")
            .foreign_key("VisID", "Visit", Visibility::Hidden);
        let schema = b.build().unwrap();
        let tree = TreeSchema::analyze(&schema).unwrap();
        let vis = schema.resolve_table("Visit").unwrap();
        let pre = schema.resolve_table("Prescription").unwrap();
        let spec = QuerySpec::bind(
            &schema,
            &tree,
            "...",
            vec![vis, pre],
            vec![],
            vec![
                Predicate::new(vis, ColumnId(1), ScalarOp::Gt, Value::Int(10)),
                Predicate::new(vis, ColumnId(2), ScalarOp::Eq, Value::Text("x".into())),
            ],
            vec![(
                schema.resolve_column(pre, "VisID").unwrap(),
                schema.resolve_column(vis, "VisID").unwrap(),
            )],
        )
        .unwrap();
        (schema, spec)
    }

    #[test]
    fn valid_pre_post_plan() {
        let (schema, spec) = setup();
        let plan = Plan {
            sources: vec![Source::HiddenIndexClimb { pred: 1 }],
            post: vec![PostStep::BloomVisible { pred: 0 }],
            label: "P2".into(),
        };
        plan.validate(&schema, &spec).unwrap();
        let d = plan.describe(&schema, &spec);
        assert!(d.contains("bloom-probe"));
        assert!(d.contains("HIDDEN"));
    }

    #[test]
    fn uncovered_predicate_rejected() {
        let (schema, spec) = setup();
        let plan = Plan {
            sources: vec![Source::HiddenIndexClimb { pred: 1 }],
            post: vec![],
            label: "bad".into(),
        };
        let err = plan.validate(&schema, &spec).unwrap_err();
        assert!(err.to_string().contains("covered 0 times"));
    }

    #[test]
    fn double_covered_predicate_rejected() {
        let (schema, spec) = setup();
        let plan = Plan {
            sources: vec![
                Source::VisibleDelegate { pred: 0 },
                Source::HiddenIndexClimb { pred: 1 },
            ],
            post: vec![PostStep::BloomVisible { pred: 0 }],
            label: "bad".into(),
        };
        assert!(plan.validate(&schema, &spec).is_err());
    }

    #[test]
    fn leaking_shapes_rejected() {
        let (schema, spec) = setup();
        // Delegating the hidden predicate would send "Purpose = x" to the PC.
        let plan = Plan {
            sources: vec![
                Source::VisibleDelegate { pred: 1 },
                Source::VisibleDelegate { pred: 0 },
            ],
            post: vec![],
            label: "leak".into(),
        };
        let err = plan.validate(&schema, &spec).unwrap_err();
        assert!(err.to_string().contains("leak"));
        // Bloom post-filter of a hidden predicate likewise.
        let plan = Plan {
            sources: vec![Source::VisibleDelegate { pred: 0 }],
            post: vec![PostStep::BloomVisible { pred: 1 }],
            label: "leak2".into(),
        };
        assert!(plan.validate(&schema, &spec).is_err());
    }

    #[test]
    fn cross_group_membership_checked() {
        let (schema, spec) = setup();
        let vis = schema.resolve_table("Visit").unwrap();
        let good = Plan {
            sources: vec![Source::CrossGroup {
                table: vis,
                hidden: vec![1],
                visible: vec![0],
            }],
            post: vec![],
            label: "X".into(),
        };
        good.validate(&schema, &spec).unwrap();
        let bad = Plan {
            sources: vec![Source::CrossGroup {
                table: vis,
                hidden: vec![0], // 0 is visible
                visible: vec![1],
            }],
            post: vec![],
            label: "X".into(),
        };
        assert!(bad.validate(&schema, &spec).is_err());
    }
}
