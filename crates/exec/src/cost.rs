//! The optimizer's cost model.
//!
//! Estimates simulated execution time from the same resources the
//! hardware model charges: flash page reads/programs, bus transfers and
//! CPU tuple operations. Selectivities come from the catalog's equi-depth
//! histograms (rebuilt at load and after every flush), including a
//! *joint* estimate for same-column range pairs — `x BETWEEN lo AND hi`
//! desugars to two conjuncts whose independence product badly
//! over-estimates on skewed data, so [`SchemaStats::range_selectivity`]
//! replaces it. Foreign keys are assumed uniformly distributed (true of
//! the synthetic workload, and the standard textbook assumption).
//!
//! The model intentionally mirrors the executor stage by stage so that
//! plan *rankings* are trustworthy even where absolute estimates drift —
//! which is all an optimizer needs, and exactly the skill the demo's
//! plan game tests in human visitors.

use ghostdb_catalog::{Predicate, Schema, SchemaStats, TreeSchema};
use ghostdb_types::{DataType, DeviceConfig};

use crate::plan::{Plan, PostStep, Source};
use crate::query::QuerySpec;

/// Estimated row counts at each pipeline stage of one plan, produced by
/// [`CostModel::cardinalities`] with exactly the selectivity math
/// [`CostModel::plan_cost`] charges — so EXPLAIN's estimates and the
/// optimizer's ranking can never disagree about row counts.
#[derive(Debug, Clone, Default)]
pub struct PlanCardinalities {
    /// Live rows of the anchor table (the full-scan cardinality).
    pub anchor_rows: f64,
    /// Estimated anchor ids emitted by each source, in plan order.
    pub sources: Vec<f64>,
    /// Estimated candidates entering the SKT access (after the merge
    /// intersection and the joint-range correction for pre-placed
    /// `BETWEEN` pairs).
    pub candidates: f64,
    /// Estimated rows surviving after each post step, in plan order.
    pub post: Vec<f64>,
    /// Estimated final result rows (all corrections applied).
    pub final_rows: f64,
}

/// Plan cost estimator.
#[derive(Debug, Clone)]
pub struct CostModel<'a> {
    schema: &'a Schema,
    #[allow(dead_code)]
    tree: &'a TreeSchema,
    stats: &'a SchemaStats,
    config: &'a DeviceConfig,
}

impl<'a> CostModel<'a> {
    /// Build a cost model over the given catalog state.
    pub fn new(
        schema: &'a Schema,
        tree: &'a TreeSchema,
        stats: &'a SchemaStats,
        config: &'a DeviceConfig,
    ) -> Self {
        CostModel {
            schema,
            tree,
            stats,
            config,
        }
    }

    fn page(&self) -> f64 {
        self.config.flash.page_size as f64
    }

    /// Sequential read of `bytes` from flash.
    fn seq_read(&self, bytes: f64) -> f64 {
        (bytes / self.page()).ceil().max(0.0)
            * self.config.flash.read_cost_ns(self.config.flash.page_size) as f64
    }

    /// Sequential write of `bytes` to flash.
    fn seq_write(&self, bytes: f64) -> f64 {
        (bytes / self.page()).ceil().max(0.0)
            * self
                .config
                .flash
                .program_cost_ns(self.config.flash.page_size) as f64
    }

    /// One random read of `bytes` within a page.
    fn rand_read(&self, bytes: usize) -> f64 {
        self.config.flash.read_cost_ns(bytes) as f64
    }

    /// Bus transfer of `bytes`.
    fn bus(&self, bytes: f64) -> f64 {
        self.config.bus.transfer_cost_ns(bytes.max(0.0) as usize) as f64
    }

    fn cpu(&self, tuples: f64) -> f64 {
        tuples * self.config.cpu.tuple_op_ns as f64
    }

    fn hash(&self, n: f64) -> f64 {
        n * self.config.cpu.hash_ns as f64
    }

    /// Selectivity of one predicate.
    pub fn selectivity(&self, p: &Predicate) -> f64 {
        self.stats
            .selectivity(p.column, p.op, &p.value)
            .clamp(1e-9, 1.0)
    }

    fn rows(&self, t: ghostdb_types::TableId) -> f64 {
        self.stats.rows(t).max(1) as f64
    }

    /// Correction factor for same-column range pairs among the
    /// predicates at `idxs`: the histogram's joint selectivity over the
    /// independence product (1.0 when there is no such pair). A
    /// `BETWEEN` that desugared into `>= lo` and `<= hi` is the common
    /// producer of these pairs.
    fn range_pair_correction(&self, spec: &QuerySpec, idxs: &[usize]) -> f64 {
        use ghostdb_types::ScalarOp;
        let mut corr = 1.0;
        let mut used = vec![false; idxs.len()];
        for (a, &i) in idxs.iter().enumerate() {
            let lo = &spec.predicates[i];
            if used[a] || !matches!(lo.op, ScalarOp::Ge | ScalarOp::Gt) {
                continue;
            }
            for (b, &j) in idxs.iter().enumerate() {
                let hi = &spec.predicates[j];
                if used[b]
                    || i == j
                    || hi.column != lo.column
                    || !matches!(hi.op, ScalarOp::Le | ScalarOp::Lt)
                {
                    continue;
                }
                let joint = self
                    .stats
                    .range_selectivity(lo.column, lo.op, &lo.value, hi.op, &hi.value)
                    .clamp(1e-9, 1.0);
                let product = self.selectivity(lo) * self.selectivity(hi);
                corr *= joint / product.max(1e-12);
                used[a] = true;
                used[b] = true;
                break;
            }
        }
        corr
    }

    fn pred_indices(plan: &Plan) -> (Vec<usize>, Vec<usize>) {
        let mut pre = Vec::new();
        for s in &plan.sources {
            match s {
                Source::HiddenIndexClimb { pred }
                | Source::HiddenScanTranslate { pred }
                | Source::VisibleDelegate { pred } => pre.push(*pred),
                Source::CrossGroup {
                    hidden, visible, ..
                } => {
                    pre.extend(hidden.iter().copied());
                    pre.extend(visible.iter().copied());
                }
            }
        }
        let mut post = Vec::new();
        for s in &plan.post {
            match s {
                PostStep::BloomVisible { pred } | PostStep::HiddenVerify { pred } => {
                    post.push(*pred)
                }
            }
        }
        (pre, post)
    }

    /// Sort cost for `bytes` through the external sorter (spill-aware).
    fn sort(&self, bytes: f64, sort_ram: f64) -> f64 {
        if bytes <= sort_ram {
            return self.cpu(bytes / 4.0); // in-RAM sort compares
        }
        // One spill pass + one merge pass (multi-pass rare at our sizes).
        self.seq_write(bytes) + self.seq_read(bytes) + self.cpu(bytes / 4.0)
    }

    /// Value width of a column in temp encoding.
    fn value_width(&self, cref: ghostdb_catalog::ColumnRef) -> f64 {
        match self.schema.column_def(cref).ty {
            DataType::Integer | DataType::Date => 8.0,
            DataType::Char(n) => 2.0 + n as f64,
        }
    }

    /// Cost of translating `in_ids` ids of table `t` to `out_ids` anchor
    /// ids through the dense key index.
    ///
    /// The executor's directory cursor buffers one flash page and the
    /// input ids ascend, so directory cost is bounded by the *pages
    /// touched*, not the id count.
    fn translate(&self, t: ghostdb_types::TableId, in_ids: f64, out_ids: f64, levels: f64) -> f64 {
        let entry_w = 8.0 + levels * 8.0;
        let dir_pages = (self.rows(t) * entry_w / self.page()).ceil().max(1.0);
        let touched = dir_pages.min(in_ids);
        let dir = touched * self.rand_read(self.config.flash.page_size);
        let postings = self.seq_read(out_ids * 4.0);
        dir + postings + self.sort(out_ids * 4.0, 16.0 * 1024.0) + self.cpu(in_ids + out_ids)
    }

    fn source_cost(&self, spec: &QuerySpec, source: &Source) -> (f64, f64) {
        // Returns (cost_ns, anchor_selectivity_of_source).
        let anchor_rows = self.rows(spec.anchor);
        match source {
            Source::HiddenIndexClimb { pred } => {
                let p = &spec.predicates[*pred];
                let sel = self.selectivity(p);
                let distinct = self
                    .stats
                    .column(p.column)
                    .map(|c| c.distinct.max(1))
                    .unwrap_or(100) as f64;
                let out = sel * anchor_rows;
                let entries_touched = (sel * distinct).max(1.0);
                let entry_w = 8.0; // key probe reads
                let dir =
                    (distinct.log2().max(1.0) + entries_touched) * self.rand_read(entry_w as usize);
                let postings = self.seq_read(out * 4.0);
                let union = if entries_touched > 1.5 {
                    self.sort(out * 4.0, 16.0 * 1024.0)
                } else {
                    0.0
                };
                (dir + postings + union + self.cpu(out), sel)
            }
            Source::HiddenScanTranslate { pred } => {
                let p = &spec.predicates[*pred];
                let sel = self.selectivity(p);
                let t_rows = self.rows(p.column.table);
                let width = match self.schema.column_def(p.column).ty {
                    DataType::Char(_) => 4.0,
                    _ => 8.0,
                };
                let scan = self.seq_read(t_rows * width) + self.cpu(t_rows);
                let out = sel * anchor_rows;
                let trans = if p.column.table == spec.anchor {
                    0.0
                } else {
                    self.translate(p.column.table, sel * t_rows, out, 2.0)
                };
                (scan + trans, sel)
            }
            Source::VisibleDelegate { pred } => {
                let p = &spec.predicates[*pred];
                let sel = self.selectivity(p);
                let t_rows = self.rows(p.column.table);
                let ids_in = sel * t_rows;
                let bus = self.bus(ids_in * 4.0);
                let out = sel * anchor_rows;
                let trans = if p.column.table == spec.anchor {
                    0.0
                } else {
                    self.translate(p.column.table, ids_in, out, 2.0)
                };
                (bus + trans + self.cpu(ids_in), sel)
            }
            Source::CrossGroup {
                table,
                hidden,
                visible,
            } => {
                let t_rows = self.rows(*table);
                let mut cost = 0.0;
                let mut sel = 1.0;
                for &i in hidden {
                    let p = &spec.predicates[i];
                    let s = self.selectivity(p);
                    sel *= s;
                    cost += self.seq_read(s * t_rows * 4.0) + self.cpu(s * t_rows);
                }
                for &i in visible {
                    let p = &spec.predicates[i];
                    let s = self.selectivity(p);
                    sel *= s;
                    cost += self.bus(s * t_rows * 4.0) + self.cpu(s * t_rows);
                }
                let combined = sel * t_rows;
                let out = sel * self.rows(spec.anchor);
                let trans = if *table == spec.anchor {
                    0.0
                } else {
                    self.translate(*table, combined, out, 2.0)
                };
                (cost + trans, sel)
            }
        }
    }

    /// Estimated per-stage row counts for `plan` — the numbers EXPLAIN
    /// and EXPLAIN ANALYZE annotate operators with. The math mirrors
    /// [`plan_cost`](Self::plan_cost) stage by stage: per-source anchor
    /// selectivities, the joint-range correction on pre-placed pairs,
    /// per-post-step selectivities, and the residual correction folded
    /// into the final estimate.
    pub fn cardinalities(&self, spec: &QuerySpec, plan: &Plan) -> PlanCardinalities {
        let anchor_rows = self.rows(spec.anchor);
        let mut sources = Vec::with_capacity(plan.sources.len());
        let mut pre_sel = 1.0;
        for s in &plan.sources {
            let (_, sel) = self.source_cost(spec, s);
            sources.push(sel * anchor_rows);
            pre_sel *= sel;
        }
        let (pre_idx, _) = Self::pred_indices(plan);
        let corr_pre = self.range_pair_correction(spec, &pre_idx);
        pre_sel = (pre_sel * corr_pre).clamp(1e-9, 1.0);
        let candidates = (anchor_rows * pre_sel).max(0.0);
        let mut surviving = candidates;
        let mut post = Vec::with_capacity(plan.post.len());
        for step in &plan.post {
            surviving *= self.selectivity(&spec.predicates[step.pred()]);
            post.push(surviving);
        }
        let all_idx: Vec<usize> = (0..spec.predicates.len()).collect();
        let corr_all = self.range_pair_correction(spec, &all_idx);
        let final_rows = (surviving * (corr_all / corr_pre).clamp(1e-6, 1e6)).max(0.0);
        PlanCardinalities {
            anchor_rows,
            sources,
            candidates,
            post,
            final_rows,
        }
    }

    /// Estimated simulated nanoseconds for `plan`.
    pub fn plan_cost(&self, spec: &QuerySpec, plan: &Plan) -> f64 {
        let anchor_rows = self.rows(spec.anchor);
        let mut cost = 0.0;
        let mut pre_sel = 1.0;

        for s in &plan.sources {
            let (c, sel) = self.source_cost(spec, s);
            cost += c;
            pre_sel *= sel;
        }
        // Joint ranges: a BETWEEN pair filtered entirely pre-merge
        // shrinks the candidate set by its joint selectivity, not the
        // independence product.
        let (pre_idx, _) = Self::pred_indices(plan);
        let corr_pre = self.range_pair_correction(spec, &pre_idx);
        pre_sel = (pre_sel * corr_pre).clamp(1e-9, 1.0);
        let candidates = (anchor_rows * pre_sel).max(0.0);

        // SKT access: ascending candidates; page-batched.
        let skt_tables = self.schema.tables().len().min(spec.tables.len().max(1)) as f64;
        let row_w = skt_tables.max(1.0) * 4.0;
        let skt_pages = anchor_rows * row_w / self.page();
        let dense_cost = self.seq_read(anchor_rows * row_w);
        let sparse_cost = candidates * self.rand_read(row_w as usize);
        cost += if candidates >= skt_pages {
            dense_cost
        } else {
            sparse_cost
        };
        cost += self.cpu(candidates);

        // Post steps.
        let mut surviving = candidates;
        for step in &plan.post {
            match step {
                PostStep::BloomVisible { pred } => {
                    let p = &spec.predicates[*pred];
                    let sel = self.selectivity(p);
                    let t_rows = self.rows(p.column.table);
                    let matches = sel * t_rows;
                    // Verify-temp record width: shared with a projection
                    // fetch when the predicate column is projected,
                    // otherwise a private id-only temp (4 B records).
                    let shared = spec.projections.contains(&p.column);
                    let rec_w = if shared {
                        4.0 + self.value_width(p.column)
                    } else {
                        4.0
                    };
                    if shared {
                        // Replay the already-fetched temp into the bloom.
                        cost += self.seq_read(matches * rec_w) + self.hash(matches * 7.0);
                    } else {
                        // Ids only: delegate + temp write + hashes.
                        cost += self.bus(matches * 4.0)
                            + self.seq_write(matches * 4.0)
                            + self.hash(matches * 7.0);
                    }
                    // Probe: k hashes per candidate; positives binary
                    // search the temp.
                    let fpr = 0.01;
                    let positives = surviving * (sel + fpr);
                    cost += self.hash(surviving * 7.0)
                        + positives * matches.log2().max(1.0) * self.rand_read(rec_w as usize);
                    surviving *= sel;
                }
                PostStep::HiddenVerify { pred } => {
                    let p = &spec.predicates[*pred];
                    let sel = self.selectivity(p);
                    cost += surviving * self.rand_read(8) + self.cpu(surviving);
                    surviving *= sel;
                }
            }
        }

        // Projection: visible temps fetched up front, probed per row.
        for cref in &spec.projections {
            let def = self.schema.column_def(*cref);
            if matches!(def.role, ghostdb_catalog::ColumnRole::PrimaryKey) {
                continue;
            }
            if def.visibility.is_hidden() {
                let per_row = match def.ty {
                    DataType::Char(_) => self.rand_read(4) + 2.0 * self.rand_read(16),
                    _ => self.rand_read(8),
                };
                cost += surviving * per_row;
            } else {
                // Fetch once (unless a bloom step already fetched it).
                let already = plan.post.iter().any(|s| match s {
                    PostStep::BloomVisible { pred } => spec.predicates[*pred].column == *cref,
                    _ => false,
                });
                let t_rows = self.rows(cref.table);
                let filter_sel: f64 = spec
                    .predicates
                    .iter()
                    .filter(|p| !self.schema.is_hidden(p.column) && p.column.table == cref.table)
                    .map(|p| self.selectivity(p))
                    .next()
                    .unwrap_or(1.0);
                let fetched = t_rows * filter_sel;
                let vw = self.value_width(*cref);
                if !already {
                    cost += self.bus(fetched * (4.0 + vw)) + self.seq_write(fetched * (4.0 + vw));
                }
                cost += surviving * fetched.log2().max(1.0) * self.rand_read((4.0 + vw) as usize);
            }
        }
        // Range pairs split across pre and post stages (or both post)
        // still land on the joint row count once every conjunct has
        // run; fold the remaining correction into the final estimate.
        let all_idx: Vec<usize> = (0..spec.predicates.len()).collect();
        let corr_all = self.range_pair_correction(spec, &all_idx);
        surviving = (surviving * (corr_all / corr_pre).clamp(1e-6, 1e6)).max(0.0);

        // Analytic epilogue: fold each surviving row through the output
        // expressions, then sort whatever survives the fold. The terms
        // are identical across plans for one spec, but they keep the
        // absolute estimates honest against the executor.
        if spec.has_aggregates() || !spec.group_by.is_empty() {
            cost += self.cpu(surviving * spec.output.len().max(1) as f64);
        }
        if !spec.order_by.is_empty() {
            cost += self.cpu(surviving * surviving.max(2.0).log2());
        }
        cost + self.cpu(surviving)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_catalog::{ColumnStats, SchemaBuilder, TableStats, Visibility};
    use ghostdb_types::{ColumnId, ScalarOp, TableId, Value};

    fn setup() -> (Schema, TreeSchema, SchemaStats, DeviceConfig, QuerySpec) {
        let mut b = SchemaBuilder::new();
        b.table("Visit", "VisID")
            .column("Weight", DataType::Integer, Visibility::Visible)
            .column("Purpose", DataType::Char(20), Visibility::Hidden);
        b.table("Prescription", "PreID")
            .foreign_key("VisID", "Visit", Visibility::Hidden);
        let schema = b.build().unwrap();
        let tree = TreeSchema::analyze(&schema).unwrap();
        let mut stats = SchemaStats::empty(2);
        let weights: Vec<Value> = (0..1000).map(|i| Value::Int(i % 100)).collect();
        let purposes: Vec<Value> = (0..1000)
            .map(|i| Value::Text(format!("p{}", i % 50)))
            .collect();
        stats.tables[0] = TableStats {
            rows: 1000,
            columns: vec![
                None,
                Some(ColumnStats::build(&weights, 16)),
                Some(ColumnStats::build(&purposes, 16)),
            ],
        };
        stats.tables[1] = TableStats {
            rows: 10_000,
            columns: vec![None, None],
        };
        let vis = TableId(0);
        let pre = TableId(1);
        let spec = QuerySpec::bind(
            &schema,
            &tree,
            "...",
            vec![vis, pre],
            vec![],
            vec![
                Predicate::new(vis, ColumnId(1), ScalarOp::Lt, Value::Int(5)), // visible, ~5%
                Predicate::new(vis, ColumnId(2), ScalarOp::Eq, Value::Text("p1".into())), // hidden 2%
            ],
            vec![(
                schema.resolve_column(pre, "VisID").unwrap(),
                schema.resolve_column(vis, "VisID").unwrap(),
            )],
        )
        .unwrap();
        (schema, tree, stats, DeviceConfig::default_2007(), spec)
    }

    #[test]
    fn selective_climb_beats_full_scan_plan() {
        let (schema, tree, stats, config, spec) = setup();
        let m = CostModel::new(&schema, &tree, &stats, &config);
        let pre_plan = Plan {
            sources: vec![
                Source::HiddenIndexClimb { pred: 1 },
                Source::VisibleDelegate { pred: 0 },
            ],
            post: vec![],
            label: "pre".into(),
        };
        let lazy_plan = Plan {
            sources: vec![],
            post: vec![
                PostStep::HiddenVerify { pred: 1 },
                PostStep::BloomVisible { pred: 0 },
            ],
            label: "lazy".into(),
        };
        let c_pre = m.plan_cost(&spec, &pre_plan);
        let c_lazy = m.plan_cost(&spec, &lazy_plan);
        assert!(
            c_pre < c_lazy,
            "selective pre-filtering should win: {c_pre} vs {c_lazy}"
        );
    }

    #[test]
    fn unselective_visible_prefers_post() {
        let (schema, tree, mut stats, config, _) = setup();
        // A very unselective visible predicate (>= 0 matches all) at a
        // scale where translating its id list dwarfs per-candidate
        // probing: Visit 100k rows, Prescription 1M rows.
        stats.tables[0].rows = 100_000;
        if let Some(c) = stats.tables[0].columns[2].as_mut() {
            c.rows = 100_000;
            c.distinct = 1000; // hidden eq sel = 0.1%
        }
        if let Some(c) = stats.tables[0].columns[1].as_mut() {
            c.rows = 100_000;
        }
        stats.tables[1].rows = 1_000_000;
        let m = CostModel::new(&schema, &tree, &stats, &config);
        let vis = TableId(0);
        let pre = TableId(1);
        let spec = QuerySpec::bind(
            &schema,
            &tree,
            "...",
            vec![vis, pre],
            vec![],
            vec![
                Predicate::new(vis, ColumnId(1), ScalarOp::Ge, Value::Int(0)),
                Predicate::new(vis, ColumnId(2), ScalarOp::Eq, Value::Text("p1".into())),
            ],
            vec![(
                schema.resolve_column(pre, "VisID").unwrap(),
                schema.resolve_column(vis, "VisID").unwrap(),
            )],
        )
        .unwrap();
        let pre_plan = Plan {
            sources: vec![
                Source::HiddenIndexClimb { pred: 1 },
                Source::VisibleDelegate { pred: 0 },
            ],
            post: vec![],
            label: "pre".into(),
        };
        let post_plan = Plan {
            sources: vec![Source::HiddenIndexClimb { pred: 1 }],
            post: vec![PostStep::BloomVisible { pred: 0 }],
            label: "post".into(),
        };
        let c_pre = m.plan_cost(&spec, &pre_plan);
        let c_post = m.plan_cost(&spec, &post_plan);
        assert!(
            c_post < c_pre,
            "unselective visible predicate should post-filter: pre={c_pre} post={c_post}"
        );
    }

    #[test]
    fn between_pair_uses_joint_selectivity() {
        let (schema, tree, mut stats, config, _) = setup();
        // Skew the Weight column: 900 rows pinned at 7 plus a 0..100
        // tail. Independence badly over-estimates `BETWEEN 50 AND 60`.
        let vals: Vec<Value> = std::iter::repeat_n(Value::Int(7), 900)
            .chain((0..100i64).map(Value::Int))
            .collect();
        stats.tables[0].columns[1] = Some(ColumnStats::build(&vals, 16));
        let m = CostModel::new(&schema, &tree, &stats, &config);
        let vis = TableId(0);
        let spec = QuerySpec::bind(
            &schema,
            &tree,
            "...",
            vec![vis],
            vec![],
            vec![
                Predicate::new(vis, ColumnId(1), ScalarOp::Ge, Value::Int(50)),
                Predicate::new(vis, ColumnId(1), ScalarOp::Le, Value::Int(60)),
            ],
            vec![],
        )
        .unwrap();
        let corr = m.range_pair_correction(&spec, &[0, 1]);
        assert!(
            corr < 0.7,
            "joint estimate should shrink the independence product, got {corr}"
        );
        assert_eq!(
            m.range_pair_correction(&spec, &[0]),
            1.0,
            "a lone bound is not a pair"
        );
    }

    #[test]
    fn selectivity_passthrough() {
        let (schema, tree, stats, config, spec) = setup();
        let m = CostModel::new(&schema, &tree, &stats, &config);
        let s = m.selectivity(&spec.predicates[1]);
        assert!((s - 0.02).abs() < 0.001, "hidden eq sel {s}");
    }
}
