//! The "last resort" baselines the paper rules out (§4, citing [1]).
//!
//! GhostDB's SIGMOD companion shows that classic join algorithms and
//! binary join indexes perform unacceptably on the smart USB device.
//! We reproduce that comparison (`EXP-B1`) with honest implementations
//! under the same hardware model:
//!
//! * [`grace_hash_join_count`] — a Grace hash join between a hidden
//!   foreign-key column and a filtered id set. With tens of KB of RAM the
//!   build side rarely fits, so both inputs are recursively partitioned
//!   to flash — paying the 3–10× program/read penalty on every byte —
//!   before any matching happens.
//! * [`join_index_count`] — binary (per-edge) join indexes: each tree
//!   edge is traversed separately with a full id-list materialization
//!   (external sort) between hops, where the climbing index reaches the
//!   root "in a single step".
//! * [`climbing_translate_count`] — the paper's climbing translation, as
//!   the directly comparable fast path.
//!
//! All three count result ids rather than materializing tuples, so the
//! comparison isolates pure join cost.

use ghostdb_catalog::TreeSchema;
use ghostdb_flash::{Segment, Volume};
use ghostdb_index::IndexSet;
use ghostdb_ram::{RamBudget, RamScope, TrackedVec};
use ghostdb_storage::HiddenStore;
use ghostdb_types::{
    ColumnId, DeviceConfig, GhostError, IdStream, Result, RowId, SimClock, TableId, Value,
    VecIdStream,
};

/// Outcome of one baseline run.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineReport {
    /// Matching rows counted.
    pub result_count: u64,
    /// Simulated time, ns.
    pub sim_ns: u64,
    /// Flash page reads performed.
    pub flash_reads: u64,
    /// Flash page programs performed.
    pub flash_programs: u64,
    /// Device RAM high-water mark, bytes.
    pub ram_peak: usize,
}

fn order_keys_of(ids: &[RowId]) -> Vec<u64> {
    ids.iter()
        .map(|id| Value::Int(id.0 as i64).order_key().expect("int key"))
        .collect()
}

/// Count rows of `fk_table` whose hidden FK column references an id in
/// `matching`, via Grace hash join under the device RAM budget.
#[allow(clippy::too_many_arguments)] // mirrors the executor's context split
pub fn grace_hash_join_count(
    volume: &Volume,
    ram: &RamBudget,
    clock: &SimClock,
    config: &DeviceConfig,
    hidden: &HiddenStore,
    fk_table: TableId,
    fk_column: ColumnId,
    matching: &[RowId],
) -> Result<BaselineReport> {
    ram.reset_peak();
    let t0 = clock.now();
    let f0 = volume.nand().stats();
    let scope = RamScope::new(ram);
    let build_keys = order_keys_of(matching);

    // Write both inputs to flash as the join's "base relations" would
    // be: the probe side is already there (the stored FK column); the
    // build side arrives as a key list.
    let mut bw = volume.writer(&scope)?;
    for k in &build_keys {
        bw.write(&k.to_le_bytes())?;
    }
    let build_seg = bw.finish()?;

    // Probe segment: the FK column's keys (streamed copy so the recursion
    // can repartition it freely).
    let mut pw = volume.writer(&scope)?;
    let mut scan = hidden.key_scan(&scope, fk_table, fk_column)?;
    while let Some((_, k)) = scan.next_entry()? {
        pw.write(&k.to_le_bytes())?;
        clock.advance(config.cpu.tuple_op_ns);
    }
    drop(scan);
    let probe_seg = pw.finish()?;

    let count = partition_join(volume, &scope, clock, config, build_seg, probe_seg, 0)?;
    let f1 = volume.nand().stats().since(&f0);
    Ok(BaselineReport {
        result_count: count,
        sim_ns: clock.now().since(t0),
        flash_reads: f1.page_reads,
        flash_programs: f1.page_programs,
        ram_peak: ram.peak(),
    })
}

/// Recursive Grace partitioning: if the build side fits in RAM, join;
/// otherwise hash-partition both sides to flash and recurse.
fn partition_join(
    volume: &Volume,
    scope: &RamScope,
    clock: &SimClock,
    config: &DeviceConfig,
    build: Segment,
    probe: Segment,
    depth: u32,
) -> Result<u64> {
    let budget = scope.budget();
    let build_n = (build.len() / 8) as usize;
    let fits = build_n * 8 + 2 * volume.page_size() <= budget.available() / 2;
    if fits || depth > 8 {
        // In-RAM join: sorted build keys + streamed probe.
        let mut table: TrackedVec<u64> = TrackedVec::with_capacity(scope, build_n)?;
        let mut r = volume.reader(scope, &build)?;
        let mut buf = [0u8; 8];
        for _ in 0..build_n {
            r.read_exact(&mut buf)?;
            table.push(u64::from_le_bytes(buf))?;
        }
        drop(r);
        table.as_mut_slice().sort_unstable();
        let mut count = 0u64;
        let mut r = volume.reader(scope, &probe)?;
        let probe_n = probe.len() / 8;
        for _ in 0..probe_n {
            r.read_exact(&mut buf)?;
            clock.advance(config.cpu.tuple_op_ns);
            if table
                .as_slice()
                .binary_search(&u64::from_le_bytes(buf))
                .is_ok()
            {
                count += 1;
            }
        }
        drop(r);
        volume.free(build)?;
        volume.free(probe)?;
        return Ok(count);
    }
    // Fan-out limited by RAM: one page buffer per output partition, both
    // sides partitioned in separate passes so buffers are not doubled.
    let page = volume.page_size();
    let fan = ((budget.available() / page).saturating_sub(2)).clamp(2, 16) as u64;
    let shift = depth * 4; // reuse hash bits per level
    let mut build_parts: Vec<Segment> = Vec::new();
    let mut probe_parts: Vec<Segment> = Vec::new();
    for (src, parts) in [(&build, &mut build_parts), (&probe, &mut probe_parts)] {
        let mut writers = Vec::new();
        for _ in 0..fan {
            writers.push(volume.writer(scope)?);
        }
        let mut r = volume.reader(scope, src)?;
        let n = src.len() / 8;
        let mut buf = [0u8; 8];
        for _ in 0..n {
            r.read_exact(&mut buf)?;
            let k = u64::from_le_bytes(buf);
            let h = (ghostdb_bloom::mix64(k) >> shift) % fan;
            writers[h as usize].write(&buf)?;
            clock.advance(config.cpu.tuple_op_ns);
        }
        for w in writers {
            parts.push(w.finish()?);
        }
    }
    volume.free(build)?;
    volume.free(probe)?;
    let mut count = 0u64;
    for (b, p) in build_parts.into_iter().zip(probe_parts) {
        count += partition_join(volume, scope, clock, config, b, p, depth + 1)?;
    }
    Ok(count)
}

/// Count ids reached at `target` by traversing one tree edge at a time
/// through per-edge (binary) join indexes, materializing between hops.
#[allow(clippy::too_many_arguments)] // mirrors the executor's context split
pub fn join_index_count(
    volume: &Volume,
    ram: &RamBudget,
    clock: &SimClock,
    config: &DeviceConfig,
    indexes: &IndexSet,
    tree: &TreeSchema,
    start: TableId,
    matching: &[RowId],
    target: TableId,
) -> Result<BaselineReport> {
    ram.reset_peak();
    let t0 = clock.now();
    let f0 = volume.nand().stats();
    let scope = RamScope::new(ram);
    let sort_ram = (ram.available() / 4).clamp(1024, 16 * 1024);

    let mut current: Box<dyn IdStream> = Box::new(VecIdStream::new(matching.to_vec()));
    let mut cur_table = start;
    let mut count = 0u64;
    if cur_table == target {
        while current.next_id()?.is_some() {
            count += 1;
        }
    }
    while cur_table != target {
        let (parent, _) = tree
            .parent(cur_table)
            .ok_or_else(|| GhostError::exec("target not above start table"))?;
        let kidx = indexes.key_index(cur_table)?;
        // Translate exactly one level up, then (the binary-join-index
        // penalty) fully materialize before the next hop.
        let translated = kidx.translate(&scope, current.as_mut(), parent, sort_ram)?;
        current = Box::new(translated);
        cur_table = parent;
        if cur_table == target {
            while current.next_id()?.is_some() {
                count += 1;
                clock.advance(config.cpu.tuple_op_ns);
            }
        }
    }
    let f1 = volume.nand().stats().since(&f0);
    Ok(BaselineReport {
        result_count: count,
        sim_ns: clock.now().since(t0),
        flash_reads: f1.page_reads,
        flash_programs: f1.page_programs,
        ram_peak: ram.peak(),
    })
}

/// The climbing-index fast path for the same task: one translation
/// straight to `target`.
#[allow(clippy::too_many_arguments)] // mirrors the executor's context split
pub fn climbing_translate_count(
    volume: &Volume,
    ram: &RamBudget,
    clock: &SimClock,
    config: &DeviceConfig,
    indexes: &IndexSet,
    start: TableId,
    matching: &[RowId],
    target: TableId,
) -> Result<BaselineReport> {
    ram.reset_peak();
    let t0 = clock.now();
    let f0 = volume.nand().stats();
    let scope = RamScope::new(ram);
    let sort_ram = (ram.available() / 4).clamp(1024, 16 * 1024);
    let mut input = VecIdStream::new(matching.to_vec());
    let mut count = 0u64;
    if start == target {
        count = matching.len() as u64;
    } else {
        let kidx = indexes.key_index(start)?;
        let mut out = kidx.translate(&scope, &mut input, target, sort_ram)?;
        while out.next_id()?.is_some() {
            count += 1;
            clock.advance(config.cpu.tuple_op_ns);
        }
    }
    let f1 = volume.nand().stats().since(&f0);
    Ok(BaselineReport {
        result_count: count,
        sim_ns: clock.now().since(t0),
        flash_reads: f1.page_reads,
        flash_programs: f1.page_programs,
        ram_peak: ram.peak(),
    })
}
