//! The device's view of the untrusted PC.
//!
//! The executor never touches the PC's data structures directly: it pulls
//! from these two stream traits, whose implementation (in
//! `ghostdb-core`) moves every chunk through the simulated bus — charging
//! transfer time and recording the spy trace. Tests use cheap in-memory
//! fakes.

use ghostdb_catalog::Predicate;
use ghostdb_types::{IdStream, Result, RowId, Value};

/// A pull-based stream of ascending `(row id, value)` pairs.
pub trait PairStream {
    /// Next pair, or `None` at end of stream.
    fn next_pair(&mut self) -> Result<Option<(RowId, Value)>>;
}

/// Device-side handle to the PC host.
pub trait PcLink {
    /// Ask the PC to evaluate a **visible** predicate; the returned
    /// stream yields matching row ids ascending, chunked over the bus.
    fn eval_predicate(&self, pred: &Predicate) -> Result<Box<dyn IdStream + '_>>;

    /// Ask the PC for a visible column's `(row id, value)` pairs
    /// ascending, optionally restricted by a visible predicate on the
    /// same table.
    fn fetch_column(
        &self,
        table: ghostdb_types::TableId,
        column: ghostdb_types::ColumnId,
        predicate: Option<&Predicate>,
    ) -> Result<Box<dyn PairStream + '_>>;

    /// `(bytes toward device, bytes toward PC)` transferred so far; used
    /// by the executor's report. In-memory fakes may return zeros.
    fn bus_stats(&self) -> (u64, u64) {
        (0, 0)
    }
}

/// In-memory [`PairStream`] (tests, and the PC-side buffer in core).
#[derive(Debug)]
pub struct VecPairStream {
    pairs: Vec<(RowId, Value)>,
    pos: usize,
}

impl VecPairStream {
    /// Wrap a vector sorted by ascending row id.
    pub fn new(pairs: Vec<(RowId, Value)>) -> Self {
        debug_assert!(pairs.windows(2).all(|w| w[0].0 < w[1].0));
        VecPairStream { pairs, pos: 0 }
    }
}

impl PairStream for VecPairStream {
    fn next_pair(&mut self) -> Result<Option<(RowId, Value)>> {
        let p = self.pairs.get(self.pos).cloned();
        self.pos += 1;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_pair_stream_yields_in_order() {
        let mut s =
            VecPairStream::new(vec![(RowId(1), Value::Int(10)), (RowId(4), Value::Int(40))]);
        assert_eq!(s.next_pair().unwrap(), Some((RowId(1), Value::Int(10))));
        assert_eq!(s.next_pair().unwrap(), Some((RowId(4), Value::Int(40))));
        assert_eq!(s.next_pair().unwrap(), None);
    }
}
