//! Plan enumeration: the "large panel of candidate plans based on
//! Pre-filtering, Post-filtering and Cross-Pre/Post-filtering" (§4).

use ghostdb_catalog::{ColumnRef, Schema, SchemaStats, TreeSchema};
use ghostdb_types::{DeviceConfig, Result, TableId};

use crate::cost::CostModel;
use crate::plan::{Plan, PostStep, Source};
use crate::query::QuerySpec;

/// A plan with its estimated cost.
#[derive(Debug, Clone)]
pub struct CostedPlan {
    /// The physical plan.
    pub plan: Plan,
    /// Estimated simulated nanoseconds.
    pub est_ns: f64,
}

/// The canonical all-Pre-filtering plan (Figure 6's "P1"): every hidden
/// predicate climbs its value index (scan when no index exists), every
/// visible predicate is delegated and translated.
pub fn plan_all_pre(
    spec: &QuerySpec,
    schema: &Schema,
    has_index: impl Fn(ColumnRef) -> bool,
) -> Plan {
    let mut sources = Vec::new();
    for (i, p) in spec.predicates.iter().enumerate() {
        if schema.is_hidden(p.column) {
            if has_index(p.column) {
                sources.push(Source::HiddenIndexClimb { pred: i });
            } else {
                sources.push(Source::HiddenScanTranslate { pred: i });
            }
        } else {
            sources.push(Source::VisibleDelegate { pred: i });
        }
    }
    Plan {
        sources,
        post: vec![],
        label: "P1".into(),
    }
}

/// The canonical Post-filtering plan (Figure 6's "P2", shaped like
/// Figure 5): hidden predicates climb, visible predicates become Bloom
/// filters probed after the hidden joins.
pub fn plan_all_post(
    spec: &QuerySpec,
    schema: &Schema,
    has_index: impl Fn(ColumnRef) -> bool,
) -> Plan {
    let mut sources = Vec::new();
    let mut post = Vec::new();
    for (i, p) in spec.predicates.iter().enumerate() {
        if schema.is_hidden(p.column) {
            if has_index(p.column) {
                sources.push(Source::HiddenIndexClimb { pred: i });
            } else {
                sources.push(Source::HiddenScanTranslate { pred: i });
            }
        } else {
            post.push(PostStep::BloomVisible { pred: i });
        }
    }
    Plan {
        sources,
        post,
        label: "P2".into(),
    }
}

/// Enumerate candidate plans (bounded) and cost them, cheapest first.
pub fn enumerate_plans(
    schema: &Schema,
    tree: &TreeSchema,
    stats: &SchemaStats,
    config: &DeviceConfig,
    spec: &QuerySpec,
    has_index: impl Fn(ColumnRef) -> bool + Copy,
) -> Result<Vec<CostedPlan>> {
    let model = CostModel::new(schema, tree, stats, config);
    let n = spec.predicates.len();

    // Per-predicate placement options.
    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Place {
        Climb,
        Scan,
        HiddenPost,
        Delegate,
        BloomPost,
    }
    let options: Vec<Vec<Place>> = spec
        .predicates
        .iter()
        .map(|p| {
            if schema.is_hidden(p.column) {
                if has_index(p.column) {
                    vec![Place::Climb, Place::Scan, Place::HiddenPost]
                } else {
                    vec![Place::Scan, Place::HiddenPost]
                }
            } else {
                vec![Place::Delegate, Place::BloomPost]
            }
        })
        .collect();

    // Cartesian product, bounded.
    const MAX_COMBOS: usize = 512;
    let mut combos: Vec<Vec<Place>> = vec![vec![]];
    for opts in &options {
        let mut next = Vec::new();
        for c in &combos {
            for &o in opts {
                let mut c2 = c.clone();
                c2.push(o);
                next.push(c2);
                if next.len() >= MAX_COMBOS {
                    break;
                }
            }
            if next.len() >= MAX_COMBOS {
                break;
            }
        }
        combos = next;
    }

    let mut plans: Vec<Plan> = Vec::new();
    for combo in &combos {
        let mut sources = Vec::new();
        let mut post = Vec::new();
        for (i, place) in combo.iter().enumerate() {
            match place {
                Place::Climb => sources.push(Source::HiddenIndexClimb { pred: i }),
                Place::Scan => sources.push(Source::HiddenScanTranslate { pred: i }),
                Place::Delegate => sources.push(Source::VisibleDelegate { pred: i }),
                Place::HiddenPost => post.push(PostStep::HiddenVerify { pred: i }),
                Place::BloomPost => post.push(PostStep::BloomVisible { pred: i }),
            }
        }
        plans.push(Plan {
            sources,
            post,
            label: String::new(),
        });

        // Cross-filtering variant: group pre-placed predicates sharing a
        // non-anchor table (climbable hidden ones + delegated visible
        // ones) into one CrossGroup.
        let mut by_table: std::collections::HashMap<TableId, (Vec<usize>, Vec<usize>)> =
            std::collections::HashMap::new();
        for (i, place) in combo.iter().enumerate() {
            let t = spec.predicates[i].column.table;
            if t == spec.anchor {
                continue;
            }
            match place {
                Place::Climb => by_table.entry(t).or_default().0.push(i),
                Place::Delegate => by_table.entry(t).or_default().1.push(i),
                _ => {}
            }
        }
        type Grouped = Vec<(TableId, (Vec<usize>, Vec<usize>))>;
        let groupable: Grouped = by_table
            .into_iter()
            .filter(|(_, (h, v))| h.len() + v.len() >= 2)
            .collect();
        if !groupable.is_empty() {
            let mut sources = Vec::new();
            let mut post = Vec::new();
            let grouped: Vec<usize> = groupable
                .iter()
                .flat_map(|(_, (h, v))| h.iter().chain(v).copied())
                .collect();
            for (t, (h, v)) in &groupable {
                sources.push(Source::CrossGroup {
                    table: *t,
                    hidden: h.clone(),
                    visible: v.clone(),
                });
            }
            for (i, place) in combo.iter().enumerate() {
                if grouped.contains(&i) {
                    continue;
                }
                match place {
                    Place::Climb => sources.push(Source::HiddenIndexClimb { pred: i }),
                    Place::Scan => sources.push(Source::HiddenScanTranslate { pred: i }),
                    Place::Delegate => sources.push(Source::VisibleDelegate { pred: i }),
                    Place::HiddenPost => post.push(PostStep::HiddenVerify { pred: i }),
                    Place::BloomPost => post.push(PostStep::BloomVisible { pred: i }),
                }
            }
            plans.push(Plan {
                sources,
                post,
                label: String::new(),
            });
        }
    }
    // De-duplicate structurally identical plans.
    plans.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    plans.dedup_by(|a, b| a.sources == b.sources && a.post == b.post);

    let mut costed: Vec<CostedPlan> = plans
        .into_iter()
        .filter(|p| p.validate(schema, spec).is_ok())
        .map(|p| {
            let est = model.plan_cost(spec, &p);
            CostedPlan {
                plan: p,
                est_ns: est,
            }
        })
        .collect();
    costed.sort_by(|a, b| a.est_ns.total_cmp(&b.est_ns));
    for (i, cp) in costed.iter_mut().enumerate() {
        cp.plan.label = format!("plan-{i:03}");
    }
    let _ = n;
    Ok(costed)
}

/// Convenience facade over enumeration.
#[derive(Debug)]
pub struct Optimizer<'a> {
    schema: &'a Schema,
    tree: &'a TreeSchema,
    stats: &'a SchemaStats,
    config: &'a DeviceConfig,
}

impl<'a> Optimizer<'a> {
    /// Create an optimizer over catalog state.
    pub fn new(
        schema: &'a Schema,
        tree: &'a TreeSchema,
        stats: &'a SchemaStats,
        config: &'a DeviceConfig,
    ) -> Self {
        Optimizer {
            schema,
            tree,
            stats,
            config,
        }
    }

    /// All candidate plans, cheapest first.
    pub fn plans(
        &self,
        spec: &QuerySpec,
        has_index: impl Fn(ColumnRef) -> bool + Copy,
    ) -> Result<Vec<CostedPlan>> {
        enumerate_plans(
            self.schema,
            self.tree,
            self.stats,
            self.config,
            spec,
            has_index,
        )
    }

    /// The cheapest plan.
    pub fn best(
        &self,
        spec: &QuerySpec,
        has_index: impl Fn(ColumnRef) -> bool + Copy,
    ) -> Result<Plan> {
        let mut plans = self.plans(spec, has_index)?;
        if plans.is_empty() {
            // No predicates: a bare full-scan plan.
            return Ok(Plan {
                sources: vec![],
                post: vec![],
                label: "scan-all".into(),
            });
        }
        let mut best = plans.remove(0);
        best.plan.label = "best".into();
        Ok(best.plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_catalog::{ColumnStats, Predicate, SchemaBuilder, TableStats, Visibility};
    use ghostdb_types::{ColumnId, DataType, ScalarOp, Value};

    fn setup() -> (Schema, TreeSchema, SchemaStats, DeviceConfig, QuerySpec) {
        let mut b = SchemaBuilder::new();
        b.table("Visit", "VisID")
            .column("Weight", DataType::Integer, Visibility::Visible)
            .column("Purpose", DataType::Char(20), Visibility::Hidden);
        b.table("Prescription", "PreID")
            .foreign_key("VisID", "Visit", Visibility::Hidden);
        let schema = b.build().unwrap();
        let tree = TreeSchema::analyze(&schema).unwrap();
        let mut stats = SchemaStats::empty(2);
        let weights: Vec<Value> = (0..1000).map(|i| Value::Int(i % 100)).collect();
        let purposes: Vec<Value> = (0..1000)
            .map(|i| Value::Text(format!("p{}", i % 50)))
            .collect();
        stats.tables[0] = TableStats {
            rows: 1000,
            columns: vec![
                None,
                Some(ColumnStats::build(&weights, 16)),
                Some(ColumnStats::build(&purposes, 16)),
            ],
        };
        stats.tables[1] = TableStats {
            rows: 10_000,
            columns: vec![None, None],
        };
        let vis = schema.resolve_table("Visit").unwrap();
        let pre = schema.resolve_table("Prescription").unwrap();
        let spec = QuerySpec::bind(
            &schema,
            &tree,
            "...",
            vec![vis, pre],
            vec![],
            vec![
                Predicate::new(vis, ColumnId(1), ScalarOp::Lt, Value::Int(5)),
                Predicate::new(vis, ColumnId(2), ScalarOp::Eq, Value::Text("p1".into())),
            ],
            vec![(
                schema.resolve_column(pre, "VisID").unwrap(),
                schema.resolve_column(vis, "VisID").unwrap(),
            )],
        )
        .unwrap();
        (schema, tree, stats, DeviceConfig::default_2007(), spec)
    }

    #[test]
    fn enumeration_covers_pre_post_and_cross() {
        let (schema, tree, stats, config, spec) = setup();
        let plans = enumerate_plans(&schema, &tree, &stats, &config, &spec, |_| true).unwrap();
        assert!(plans.len() >= 6, "only {} plans", plans.len());
        // All valid, sorted by cost.
        assert!(plans.windows(2).all(|w| w[0].est_ns <= w[1].est_ns));
        let has_cross = plans.iter().any(|p| {
            p.plan
                .sources
                .iter()
                .any(|s| matches!(s, Source::CrossGroup { .. }))
        });
        assert!(has_cross, "no cross-filtering variant enumerated");
        let has_post = plans.iter().any(|p| {
            p.plan
                .post
                .iter()
                .any(|s| matches!(s, PostStep::BloomVisible { .. }))
        });
        assert!(has_post);
    }

    #[test]
    fn canonical_plans_validate() {
        let (schema, _tree, _stats, _config, spec) = setup();
        let p1 = plan_all_pre(&spec, &schema, |_| true);
        p1.validate(&schema, &spec).unwrap();
        assert_eq!(p1.sources.len(), 2);
        assert!(p1.post.is_empty());
        let p2 = plan_all_post(&spec, &schema, |_| true);
        p2.validate(&schema, &spec).unwrap();
        assert_eq!(p2.sources.len(), 1);
        assert_eq!(p2.post.len(), 1);
    }

    #[test]
    fn no_index_falls_back_to_scan() {
        let (schema, _tree, _stats, _config, spec) = setup();
        let p1 = plan_all_pre(&spec, &schema, |_| false);
        assert!(p1
            .sources
            .iter()
            .any(|s| matches!(s, Source::HiddenScanTranslate { .. })));
    }

    #[test]
    fn best_returns_valid_plan() {
        let (schema, tree, stats, config, spec) = setup();
        let opt = Optimizer::new(&schema, &tree, &stats, &config);
        let best = opt.best(&spec, |_| true).unwrap();
        best.validate(&schema, &spec).unwrap();
        assert_eq!(best.label, "best");
    }
}
