//! The unified operator tree behind `EXPLAIN` and `EXPLAIN ANALYZE`.
//!
//! Both render the *same* node tree with the *same* operator names the
//! executor reports ([`crate::OpStats::name`]); `EXPLAIN` annotates it
//! with estimated cardinalities from [`CostModel::cardinalities`], and
//! `EXPLAIN ANALYZE` additionally grafts the actuals of one real
//! execution onto each node via [`attach_actuals`]. Because a single
//! builder produces the shape, the two outputs can never drift apart —
//! `tests/observability.rs` pins that with a golden skeleton test.

use ghostdb_catalog::Schema;

use crate::cost::PlanCardinalities;
use crate::plan::{Plan, PostStep, Source};
use crate::query::QuerySpec;
use crate::stats::ExecReport;

/// Actuals of one executed operator, grafted onto a [`PlanNode`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeActuals {
    /// Rows the operator emitted.
    pub rows: u64,
    /// Simulated time attributed to the operator, ns.
    pub sim_ns: u64,
    /// The operator's extra counters (blocks, gallops, probes, ...).
    pub attrs: Vec<(&'static str, u64)>,
}

/// One operator of the unified EXPLAIN / EXPLAIN ANALYZE tree. Names
/// match the executor's [`crate::OpStats`] names exactly, so actuals
/// attach by name in execution order.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNode {
    /// Operator name (`project`, `bloom-probe`, `climbing-index`, ...).
    pub name: &'static str,
    /// Operand description (predicate, table, or column list).
    pub detail: String,
    /// Estimated output rows (absent when no cost model was supplied).
    pub est_rows: Option<f64>,
    /// Measured actuals (absent for plain EXPLAIN, and for operators
    /// the executor does not report, e.g. the implicit full scan).
    pub actual: Option<NodeActuals>,
    /// Upstream operators; post-order traversal is execution order.
    pub children: Vec<PlanNode>,
}

impl PlanNode {
    fn new(name: &'static str, detail: String, est_rows: Option<f64>) -> PlanNode {
        PlanNode {
            name,
            detail,
            est_rows,
            actual: None,
            children: Vec::new(),
        }
    }

    /// Depth-first search for a descendant (or self) by name.
    pub fn find(&self, name: &str) -> Option<&PlanNode> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// Render one predicate with its visibility marker (the demo's plan
/// view convention; predicate constants are disclosed-by-design — the
/// query text itself crosses the spied bus).
fn pred_str(schema: &Schema, spec: &QuerySpec, i: usize) -> String {
    let p = &spec.predicates[i];
    let vis = if schema.is_hidden(p.column) {
        "HIDDEN"
    } else {
        "VISIBLE"
    };
    format!(
        "{} {} {} /*{}*/",
        schema.column_name(p.column),
        p.op,
        p.value,
        vis
    )
}

/// Build the operator tree for `plan`: `project` at the root, post
/// steps as a chain beneath it (last applied nearest the root), then
/// the SKT access fed by the merged sources. Pass `cards` to annotate
/// estimated cardinalities; `None` leaves the shape bare.
pub fn plan_nodes(
    schema: &Schema,
    spec: &QuerySpec,
    plan: &Plan,
    cards: Option<&PlanCardinalities>,
) -> PlanNode {
    let mut leaves: Vec<PlanNode> = Vec::new();
    for (i, s) in plan.sources.iter().enumerate() {
        let est = cards.map(|c| c.sources[i]);
        leaves.push(match s {
            Source::HiddenIndexClimb { pred } => {
                PlanNode::new("climbing-index", pred_str(schema, spec, *pred), est)
            }
            Source::HiddenScanTranslate { pred } => {
                PlanNode::new("scan+translate", pred_str(schema, spec, *pred), est)
            }
            Source::VisibleDelegate { pred } => {
                PlanNode::new("delegate+translate", pred_str(schema, spec, *pred), est)
            }
            Source::CrossGroup {
                table,
                hidden,
                visible,
            } => {
                let members: Vec<String> = hidden
                    .iter()
                    .chain(visible)
                    .map(|&i| pred_str(schema, spec, i))
                    .collect();
                PlanNode::new(
                    "cross-filter",
                    format!(
                        "at {}: {}",
                        schema.table(*table).name,
                        members.join(" AND ")
                    ),
                    est,
                )
            }
        });
    }
    let mut feed = if leaves.is_empty() {
        PlanNode::new(
            "full-anchor-scan",
            schema.table(spec.anchor).name.clone(),
            cards.map(|c| c.anchor_rows),
        )
    } else if leaves.len() == 1 {
        leaves.pop().expect("one source")
    } else {
        let mut merge = PlanNode::new(
            "merge-intersect",
            format!("{} source(s)", leaves.len()),
            cards.map(|c| c.candidates),
        );
        merge.children = leaves;
        merge
    };

    // SKT access (leaf anchors stream their own rows instead).
    let has_children = schema.table(spec.anchor).foreign_keys().next().is_some();
    let mut node = PlanNode::new(
        if has_children {
            "access-skt"
        } else {
            "anchor-rows"
        },
        schema.table(spec.anchor).name.clone(),
        cards.map(|c| c.candidates),
    );
    node.children.push(feed);
    feed = node;

    // Post steps chain upward: the first applied sits closest to the
    // SKT, the last applied feeds the projection.
    for (i, step) in plan.post.iter().enumerate() {
        let est = cards.map(|c| c.post[i]);
        let mut node = match step {
            PostStep::BloomVisible { pred } => {
                PlanNode::new("bloom-probe", pred_str(schema, spec, *pred), est)
            }
            PostStep::HiddenVerify { pred } => {
                PlanNode::new("hidden-verify", pred_str(schema, spec, *pred), est)
            }
        };
        node.children.push(feed);
        feed = node;
    }

    let mut root = PlanNode::new(
        "project",
        spec.output_columns(schema).join(", "),
        cards.map(|c| c.final_rows),
    );
    root.children.push(feed);
    root
}

/// Graft one execution's actuals onto the tree: a post-order traversal
/// of the nodes (execution order) is matched against the report's
/// operators (also execution order) by name, skipping report entries
/// the tree does not show (column fetches, Bloom builds, the analytic
/// epilogue). Nodes with no reported counterpart keep `actual: None`.
pub fn attach_actuals(root: &mut PlanNode, report: &ExecReport) {
    fn walk(node: &mut PlanNode, report: &ExecReport, pos: &mut usize) {
        for c in &mut node.children {
            walk(c, report, pos);
        }
        let mut scan = *pos;
        while scan < report.ops.len() && report.ops[scan].name != node.name {
            scan += 1;
        }
        if scan < report.ops.len() {
            let op = &report.ops[scan];
            node.actual = Some(NodeActuals {
                rows: op.tuples_out,
                sim_ns: op.sim_ns,
                attrs: op.attrs.clone(),
            });
            *pos = scan + 1;
        }
    }
    let mut pos = 0;
    walk(root, report, &mut pos);
}

/// Render the tree, one operator per line. The skeleton (names,
/// indentation) is identical whether or not estimates/actuals are
/// present; annotations ride in a trailing parenthesis.
pub fn render_plan(label: &str, root: &PlanNode) -> String {
    fn line(node: &PlanNode, out: &mut String, depth: usize) {
        out.push_str(&"  ".repeat(depth + 1));
        out.push_str(node.name);
        if !node.detail.is_empty() {
            out.push_str(&format!(" [{}]", node.detail));
        }
        let mut ann: Vec<String> = Vec::new();
        if let Some(est) = node.est_rows {
            ann.push(format!("est rows={est:.0}"));
        }
        if let Some(a) = &node.actual {
            ann.push(format!("actual rows={}", a.rows));
            ann.push(format!("time={}", ghostdb_types::format_ns(a.sim_ns)));
            for (k, v) in &a.attrs {
                ann.push(format!("{k}={v}"));
            }
        }
        if !ann.is_empty() {
            out.push_str(&format!("  ({})", ann.join(", ")));
        }
        out.push('\n');
        for c in &node.children {
            line(c, out, depth + 1);
        }
    }
    let mut out = format!("plan {label}\n");
    line(root, &mut out, 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::OpStats;

    fn node(name: &'static str, children: Vec<PlanNode>) -> PlanNode {
        PlanNode {
            name,
            detail: String::new(),
            est_rows: None,
            actual: None,
            children,
        }
    }

    #[test]
    fn actuals_attach_in_execution_order_skipping_unshown_ops() {
        // project <- bloom-probe <- access-skt <- merge <- [src, src]
        let tree = node(
            "project",
            vec![node(
                "bloom-probe",
                vec![node(
                    "access-skt",
                    vec![node(
                        "merge-intersect",
                        vec![
                            node("climbing-index", vec![]),
                            node("climbing-index", vec![]),
                        ],
                    )],
                )],
            )],
        );
        let op = |name: &str, out: u64| OpStats {
            name: name.into(),
            tuples_out: out,
            ..Default::default()
        };
        let report = ExecReport {
            ops: vec![
                op("fetch-column", 99), // prologue: not in the tree
                op("climbing-index", 10),
                op("climbing-index", 20),
                op("merge-intersect", 5),
                op("access-skt", 5),
                op("bloom-build", 99), // not in the tree
                op("bloom-probe", 3),
                op("project", 3),
            ],
            ..Default::default()
        };
        let mut tree = tree;
        attach_actuals(&mut tree, &report);
        let rows = |n: &str| tree.find(n).unwrap().actual.as_ref().map(|a| a.rows);
        assert_eq!(rows("project"), Some(3));
        assert_eq!(rows("bloom-probe"), Some(3));
        assert_eq!(rows("access-skt"), Some(5));
        assert_eq!(rows("merge-intersect"), Some(5));
        // The two sources got distinct actuals in plan order.
        let merge = tree.find("merge-intersect").unwrap();
        assert_eq!(merge.children[0].actual.as_ref().unwrap().rows, 10);
        assert_eq!(merge.children[1].actual.as_ref().unwrap().rows, 20);
    }

    #[test]
    fn render_skeleton_is_annotation_independent() {
        let mut bare = node("project", vec![node("access-skt", vec![])]);
        let rendered = render_plan("p", &bare);
        assert!(rendered.contains("plan p\n  project\n    access-skt\n"));
        bare.est_rows = Some(4.0);
        bare.actual = Some(NodeActuals {
            rows: 4,
            sim_ns: 1000,
            attrs: vec![("blocks", 2)],
        });
        let annotated = render_plan("p", &bare);
        assert!(annotated.contains("(est rows=4, actual rows=4, time="));
        assert!(annotated.contains("blocks=2"));
        // Stripping annotations recovers the bare skeleton.
        let strip = |s: &str| {
            s.lines()
                .map(|l| l.split("  (").next().unwrap_or(l).to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(strip(&annotated), strip(&rendered));
    }
}
