//! Flash-temp tables of fetched visible columns.
//!
//! Before streaming candidate rows, the executor fetches each visible
//! column it needs **once** from the PC — requesting specific row ids
//! would reveal which rows qualified, so the whole (predicate-filtered)
//! column crosses the bus and lands in a fixed-width, binary-searchable
//! flash segment. Per candidate row the projection then costs
//! `O(log n)` partial page reads and zero device RAM beyond one page
//! buffer.
//!
//! The same structure doubles as the **exact verifier** behind Bloom
//! post-filters: a Bloom positive is confirmed by probing the temp (a
//! miss drops the row), so Bloom false positives never reach results.
//!
//! Temps are the volume's churn workload: built per query, freed when
//! the query ends, and frequently sharing erase blocks with long-lived
//! dataset segments. Their probers and scans address pages through the
//! volume's logical→physical translation table, so the flash garbage
//! collector can compact a temp's blocks *while a prober is open* —
//! nothing here may cache physical page locations.

use ghostdb_flash::{Segment, SegmentReader, Volume};
use ghostdb_ram::{RamScope, ScopedGuard};
use ghostdb_types::{DataType, GhostError, IdBlock, IdStream, Result, RowId, Value, BLOCK_CAP};

use crate::pc::PairStream;

/// Fixed-width encoded `(row id, value)` records on flash, sorted by id.
#[derive(Debug)]
pub struct VisibleTemp {
    volume: Volume,
    segment: Segment,
    ty: DataType,
    /// Bytes per record: 4 (id) + value width.
    width: usize,
    count: u64,
}

fn value_width(ty: DataType) -> usize {
    match ty {
        DataType::Integer | DataType::Date => 8,
        // 2-byte length prefix + capacity bytes.
        DataType::Char(n) => 2 + n as usize,
    }
}

fn encode_value(ty: DataType, v: &Value, out: &mut [u8]) -> Result<()> {
    match (ty, v) {
        (DataType::Integer, Value::Int(_)) | (DataType::Date, Value::Date(_)) => {
            let key = v.order_key().expect("numeric");
            out[..8].copy_from_slice(&key.to_le_bytes());
            Ok(())
        }
        (DataType::Char(cap), Value::Text(s)) => {
            if s.len() > cap as usize {
                return Err(GhostError::value("string exceeds column capacity"));
            }
            out[..2].copy_from_slice(&(s.len() as u16).to_le_bytes());
            out[2..2 + s.len()].copy_from_slice(s.as_bytes());
            out[2 + s.len()..].fill(0);
            Ok(())
        }
        _ => Err(GhostError::value("value/type mismatch in temp encode")),
    }
}

fn decode_value(ty: DataType, buf: &[u8]) -> Result<Value> {
    match ty {
        DataType::Integer | DataType::Date => {
            let key = u64::from_le_bytes(buf[..8].try_into().expect("8B"));
            Value::from_order_key(ty, key)
        }
        DataType::Char(_) => {
            let len = u16::from_le_bytes(buf[..2].try_into().expect("2B")) as usize;
            if 2 + len > buf.len() {
                return Err(GhostError::corrupt("temp string length out of range"));
            }
            String::from_utf8(buf[2..2 + len].to_vec())
                .map(Value::Text)
                .map_err(|_| GhostError::corrupt("non-utf8 temp string"))
        }
    }
}

impl VisibleTemp {
    /// Drain `pairs` (ascending by id) into a temp segment. The optional
    /// `on_id` callback sees every id as it lands — the Bloom build hooks
    /// in here so the single bus transfer feeds both structures.
    pub fn build(
        volume: &Volume,
        scope: &RamScope,
        ty: DataType,
        pairs: &mut dyn PairStream,
        mut on_id: Option<&mut dyn FnMut(RowId)>,
    ) -> Result<VisibleTemp> {
        let width = 4 + value_width(ty);
        let mut w = volume.writer(scope)?;
        let mut rec = vec![0u8; width];
        let mut count = 0u64;
        let mut last: Option<RowId> = None;
        while let Some((id, v)) = pairs.next_pair()? {
            if let Some(prev) = last {
                if id <= prev {
                    return Err(GhostError::bus(
                        "PC sent column pairs out of order".to_string(),
                    ));
                }
            }
            last = Some(id);
            rec[..4].copy_from_slice(&id.0.to_le_bytes());
            encode_value(ty, &v, &mut rec[4..])?;
            w.write(&rec)?;
            if let Some(f) = on_id.as_deref_mut() {
                f(id);
            }
            count += 1;
        }
        Ok(VisibleTemp {
            volume: volume.clone(),
            segment: w.finish()?,
            ty,
            width,
            count,
        })
    }

    /// Records stored.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// True if no records are stored.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Flash bytes held.
    pub fn flash_bytes(&self) -> u64 {
        self.segment.len()
    }

    /// Open a sequential scan over the stored ids only (batched
    /// verification; value bytes are skipped inside the page buffer).
    pub fn id_scan(&self, scope: &RamScope) -> Result<TempIdScan> {
        let reader = self.volume.reader(scope, &self.segment)?;
        Ok(TempIdScan {
            reader,
            record_width: self.width,
            remaining: self.count,
        })
    }

    /// Open a probing cursor (one page of RAM).
    pub fn prober(&self, scope: &RamScope) -> Result<TempProber<'_>> {
        let page = self.volume.page_size();
        let guard = scope.alloc(page)?;
        Ok(TempProber {
            temp: self,
            buf: vec![0u8; page],
            buf_page: u64::MAX,
            probes: 0,
            _ram: guard,
        })
    }

    /// Release the flash space.
    pub fn free(self) -> Result<()> {
        self.volume.free(self.segment)
    }
}

/// An id-only flash temp: 4-byte records, ascending, binary-searchable.
///
/// This is the exact-verification side of a Bloom post-filter when the
/// predicate column itself is not projected: the device asks the PC only
/// for the matching *ids* (`EvalPredicate`), never the values — a 3–6×
/// smaller transfer than fetching `(id, value)` pairs.
#[derive(Debug)]
pub struct IdTemp {
    volume: Volume,
    segment: Segment,
    count: u64,
}

impl IdTemp {
    /// Drain an ascending id stream into a temp; `on_id` sees each id
    /// (Bloom build hook).
    pub fn build(
        volume: &Volume,
        scope: &RamScope,
        ids: &mut dyn IdStream,
        mut on_id: Option<&mut dyn FnMut(RowId)>,
    ) -> Result<IdTemp> {
        let mut w = volume.writer(scope)?;
        let mut count = 0u64;
        let mut last: Option<RowId> = None;
        let mut block = IdBlock::new();
        loop {
            ids.next_block(&mut block)?;
            if block.is_empty() {
                break;
            }
            for &id in block.as_slice() {
                if let Some(prev) = last {
                    if id <= prev {
                        return Err(GhostError::bus("PC sent ids out of order".to_string()));
                    }
                }
                last = Some(id);
                w.write(&id.0.to_le_bytes())?;
                if let Some(f) = on_id.as_deref_mut() {
                    f(id);
                }
            }
            count += block.len() as u64;
        }
        Ok(IdTemp {
            volume: volume.clone(),
            segment: w.finish()?,
            count,
        })
    }

    /// Ids stored.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Open a membership prober (one page of RAM).
    pub fn prober(&self, scope: &RamScope) -> Result<IdProber<'_>> {
        let page = self.volume.page_size();
        let guard = scope.alloc(page)?;
        Ok(IdProber {
            temp: self,
            buf: vec![0u8; page],
            buf_page: u64::MAX,
            _ram: guard,
        })
    }

    /// Open a sequential scan over the stored ids (batched verification).
    pub fn scan(&self, scope: &RamScope) -> Result<TempIdScan> {
        let reader = self.volume.reader(scope, &self.segment)?;
        Ok(TempIdScan {
            reader,
            record_width: 4,
            remaining: self.count,
        })
    }

    /// Release the flash space.
    pub fn free(self) -> Result<()> {
        self.volume.free(self.segment)
    }
}

/// Sequential id scan over an [`IdTemp`] or the id prefix of a
/// [`VisibleTemp`]'s records. Implements [`IdStream`], so batched
/// verification can pull whole blocks of stored ids per virtual call.
#[derive(Debug)]
pub struct TempIdScan {
    reader: SegmentReader,
    record_width: usize,
    remaining: u64,
}

impl IdStream for TempIdScan {
    /// Next stored id (ascending), or `None` at the end.
    fn next_id(&mut self) -> Result<Option<RowId>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        let mut rec = [0u8; 4];
        if self.record_width == 4 {
            self.reader.read_exact(&mut rec)?;
        } else {
            // Read the id then skip the value bytes (the reader is
            // buffered, so the skip is a cheap in-buffer seek).
            self.reader.read_exact(&mut rec)?;
            let pos = self.reader.position();
            self.reader.seek(pos + (self.record_width - 4) as u64)?;
        }
        Ok(Some(RowId(u32::from_le_bytes(rec))))
    }

    fn next_block(&mut self, block: &mut IdBlock) -> Result<()> {
        block.clear();
        if self.record_width != 4 {
            // Wide records interleave value bytes; the per-id skip path
            // already stays inside the page buffer.
            while !block.is_full() {
                match self.next_id()? {
                    Some(id) => block.push(id),
                    None => break,
                }
            }
            return Ok(());
        }
        // Packed 4-byte ids: chunked reads straight out of the segment.
        let take = self.remaining.min(BLOCK_CAP as u64) as usize;
        self.reader.read_ids_into(take, block)?;
        self.remaining -= take as u64;
        Ok(())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining as usize, Some(self.remaining as usize))
    }
}

/// Binary-search membership prober over an [`IdTemp`].
#[derive(Debug)]
pub struct IdProber<'a> {
    temp: &'a IdTemp,
    buf: Vec<u8>,
    buf_page: u64,
    _ram: ScopedGuard,
}

impl IdProber<'_> {
    fn id_at(&mut self, idx: u64) -> Result<RowId> {
        let start = idx * 4;
        let page_size = self.buf.len() as u64;
        let page = start / page_size;
        if self.buf_page != page {
            let page_start = page * page_size;
            let len = page_size.min(self.temp.segment.len() - page_start) as usize;
            self.temp
                .volume
                .read_at(&self.temp.segment, page_start, &mut self.buf[..len])?;
            self.buf_page = page;
        }
        let off = (start - page * page_size) as usize;
        Ok(RowId(u32::from_le_bytes(
            self.buf[off..off + 4].try_into().expect("4B"),
        )))
    }

    /// Binary-search membership test.
    pub fn contains(&mut self, id: RowId) -> Result<bool> {
        let mut lo = 0u64;
        let mut hi = self.temp.count;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            match self.id_at(mid)?.cmp(&id) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(true),
            }
        }
        Ok(false)
    }
}

/// Binary-search prober over a [`VisibleTemp`].
#[derive(Debug)]
pub struct TempProber<'a> {
    temp: &'a VisibleTemp,
    buf: Vec<u8>,
    buf_page: u64,
    probes: u64,
    _ram: ScopedGuard,
}

impl TempProber<'_> {
    fn record(&mut self, idx: u64) -> Result<(RowId, Vec<u8>)> {
        let width = self.temp.width as u64;
        let start = idx * width;
        let page_size = self.buf.len() as u64;
        let first = start / page_size;
        let last = (start + width - 1) / page_size;
        let raw: Vec<u8> = if first == last {
            if self.buf_page != first {
                let page_start = first * page_size;
                let len = page_size.min(self.temp.segment.len() - page_start) as usize;
                self.temp
                    .volume
                    .read_at(&self.temp.segment, page_start, &mut self.buf[..len])?;
                self.buf_page = first;
            }
            let off = (start - first * page_size) as usize;
            self.buf[off..off + width as usize].to_vec()
        } else {
            let mut raw = vec![0u8; width as usize];
            self.temp
                .volume
                .read_at(&self.temp.segment, start, &mut raw)?;
            raw
        };
        let id = RowId(u32::from_le_bytes(raw[..4].try_into().expect("4B")));
        Ok((id, raw))
    }

    /// Binary search for `id`; returns its value or `None` if absent.
    pub fn probe(&mut self, id: RowId) -> Result<Option<Value>> {
        self.probes += 1;
        let mut lo = 0u64;
        let mut hi = self.temp.count;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let (mid_id, raw) = self.record(mid)?;
            match mid_id.cmp(&id) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    return Ok(Some(decode_value(self.temp.ty, &raw[4..])?))
                }
            }
        }
        Ok(None)
    }

    /// Membership-only probe.
    pub fn contains(&mut self, id: RowId) -> Result<bool> {
        Ok(self.probe(id)?.is_some())
    }

    /// The row id stored at record position `idx` (sequential replay,
    /// e.g. rebuilding a Bloom filter from an already-fetched temp).
    pub fn record_id(&mut self, idx: u64) -> Result<RowId> {
        if idx >= self.temp.count {
            return Err(GhostError::exec("temp record index out of range"));
        }
        Ok(self.record(idx)?.0)
    }

    /// Probes issued so far.
    pub fn probes(&self) -> u64 {
        self.probes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pc::VecPairStream;
    use ghostdb_flash::Nand;
    use ghostdb_ram::RamBudget;
    use ghostdb_types::{Date, FlashConfig, SimClock};

    fn setup() -> (Volume, RamScope) {
        let cfg = FlashConfig {
            page_size: 128,
            pages_per_block: 8,
            num_blocks: 128,
            ..FlashConfig::default_2007()
        };
        (
            Volume::new(Nand::new(cfg, SimClock::new())),
            RamScope::new(&RamBudget::new(64 * 1024)),
        )
    }

    #[test]
    fn int_column_probe() {
        let (vol, scope) = setup();
        let pairs: Vec<(RowId, Value)> = (0..50u32)
            .filter(|i| i % 3 == 0)
            .map(|i| (RowId(i), Value::Int(i as i64 * 10)))
            .collect();
        let mut stream = VecPairStream::new(pairs);
        let temp = VisibleTemp::build(&vol, &scope, DataType::Integer, &mut stream, None).unwrap();
        assert_eq!(temp.len(), 17);
        let mut p = temp.prober(&scope).unwrap();
        assert_eq!(p.probe(RowId(9)).unwrap(), Some(Value::Int(90)));
        assert_eq!(p.probe(RowId(10)).unwrap(), None);
        assert_eq!(p.probe(RowId(0)).unwrap(), Some(Value::Int(0)));
        assert_eq!(p.probe(RowId(48)).unwrap(), Some(Value::Int(480)));
        assert_eq!(p.probe(RowId(49)).unwrap(), None);
    }

    #[test]
    fn text_column_roundtrip_with_padding() {
        let (vol, scope) = setup();
        let pairs = vec![
            (RowId(2), Value::Text("ab".into())),
            (RowId(5), Value::Text("".into())),
            (RowId(9), Value::Text("0123456789".into())),
        ];
        let mut stream = VecPairStream::new(pairs);
        let temp = VisibleTemp::build(&vol, &scope, DataType::Char(10), &mut stream, None).unwrap();
        let mut p = temp.prober(&scope).unwrap();
        assert_eq!(p.probe(RowId(2)).unwrap(), Some(Value::Text("ab".into())));
        assert_eq!(p.probe(RowId(5)).unwrap(), Some(Value::Text("".into())));
        assert_eq!(
            p.probe(RowId(9)).unwrap(),
            Some(Value::Text("0123456789".into()))
        );
    }

    #[test]
    fn date_column_roundtrip() {
        let (vol, scope) = setup();
        let pairs = vec![(RowId(1), Value::Date(Date(13_456)))];
        let mut stream = VecPairStream::new(pairs);
        let temp = VisibleTemp::build(&vol, &scope, DataType::Date, &mut stream, None).unwrap();
        let mut p = temp.prober(&scope).unwrap();
        assert_eq!(p.probe(RowId(1)).unwrap(), Some(Value::Date(Date(13_456))));
    }

    #[test]
    fn on_id_hook_sees_every_id() {
        let (vol, scope) = setup();
        let pairs: Vec<(RowId, Value)> =
            (0..10u32).map(|i| (RowId(i * 2), Value::Int(0))).collect();
        let mut stream = VecPairStream::new(pairs);
        let mut seen = Vec::new();
        let mut hook = |id: RowId| seen.push(id.0);
        VisibleTemp::build(
            &vol,
            &scope,
            DataType::Integer,
            &mut stream,
            Some(&mut hook),
        )
        .unwrap();
        assert_eq!(seen, (0..10).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn out_of_order_input_rejected() {
        let (vol, scope) = setup();
        struct Bad(usize);
        impl PairStream for Bad {
            fn next_pair(&mut self) -> Result<Option<(RowId, Value)>> {
                self.0 += 1;
                Ok(match self.0 {
                    1 => Some((RowId(5), Value::Int(0))),
                    2 => Some((RowId(3), Value::Int(0))),
                    _ => None,
                })
            }
        }
        let err =
            VisibleTemp::build(&vol, &scope, DataType::Integer, &mut Bad(0), None).unwrap_err();
        assert!(err.to_string().contains("out of order"));
    }

    #[test]
    fn empty_temp_probes_none() {
        let (vol, scope) = setup();
        let mut stream = VecPairStream::new(vec![]);
        let temp = VisibleTemp::build(&vol, &scope, DataType::Integer, &mut stream, None).unwrap();
        assert!(temp.is_empty());
        let mut p = temp.prober(&scope).unwrap();
        assert_eq!(p.probe(RowId(0)).unwrap(), None);
    }

    #[test]
    fn free_releases_flash() {
        let (vol, scope) = setup();
        let pairs: Vec<(RowId, Value)> = (0..100u32).map(|i| (RowId(i), Value::Int(1))).collect();
        let mut stream = VecPairStream::new(pairs);
        let temp = VisibleTemp::build(&vol, &scope, DataType::Integer, &mut stream, None).unwrap();
        assert!(vol.usage().live_pages > 0);
        temp.free().unwrap();
        assert_eq!(vol.usage().live_pages, 0);
    }
}
