//! Bound logical queries: select-project-join over a tree schema, plus
//! the analytic epilogue (aggregates, GROUP BY, ORDER BY, LIMIT).

use ghostdb_catalog::{
    Analytics, ColumnRef, ColumnRole, OrderKey, OutputItem, Predicate, Schema, TreeSchema,
};
use ghostdb_types::{AggFunc, DataType, GhostError, Result, TableId};

/// One item of the query's output row, resolved against
/// [`QuerySpec::projections`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OutputExpr {
    /// The value of the i-th base projection, emitted per row (or, under
    /// GROUP BY, per group — the binder guarantees it is a grouping key).
    Column(usize),
    /// An aggregate folded over the i-th base projection (`None` =
    /// `COUNT(*)`).
    Agg {
        /// The aggregate function.
        func: AggFunc,
        /// Index of the operand projection (`None` = `COUNT(*)`).
        arg: Option<usize>,
    },
}

/// A bound SPJ query with an optional analytic epilogue.
///
/// The **anchor** is the deepest table whose subtree covers every
/// mentioned table (for the §4 example query — Medicine, Prescription,
/// Visit — that is Prescription, the root). One result row is produced
/// per anchor row satisfying all predicates, matching SQL join semantics
/// because every foreign key in the tree is mandatory (each prescription
/// has exactly one visit, medicine, …).
///
/// `projections` are the base columns materialized per qualifying row;
/// `output` describes the SELECT list over them (identity for a plain
/// SPJ query). Aggregation, grouping, ordering and the limit all run on
/// the device (see `crate::agg`), so a hidden operand never needs to
/// leave it.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Original statement text (disclosed on the bus by design).
    pub sql: String,
    /// Tables mentioned in `FROM`.
    pub tables: Vec<TableId>,
    /// The computed anchor table.
    pub anchor: TableId,
    /// The base columns the query reads, deduplicated.
    pub projections: Vec<ColumnRef>,
    /// Conjunctive selection predicates.
    pub predicates: Vec<Predicate>,
    /// The SELECT list over `projections` (identity for plain queries).
    pub output: Vec<OutputExpr>,
    /// GROUP BY keys as indices into `projections`.
    pub group_by: Vec<usize>,
    /// ORDER BY keys over `output` items.
    pub order_by: Vec<OrderKey>,
    /// Row limit applied after ordering.
    pub limit: Option<u64>,
}

impl QuerySpec {
    /// Bind and validate a query.
    ///
    /// `joins` are the equality conditions from the `WHERE` clause, given
    /// as `(fk column, pk column)` pairs in either order; each must match
    /// a tree edge, and every edge on the paths from the mentioned tables
    /// to their common anchor must be joined explicitly (standard SQL
    /// would otherwise produce a cross product, which the engine does not
    /// support).
    pub fn bind(
        schema: &Schema,
        tree: &TreeSchema,
        sql: impl Into<String>,
        tables: Vec<TableId>,
        projections: Vec<ColumnRef>,
        predicates: Vec<Predicate>,
        joins: Vec<(ColumnRef, ColumnRef)>,
    ) -> Result<QuerySpec> {
        if tables.is_empty() {
            return Err(GhostError::sql("query mentions no tables"));
        }
        let mut tables = tables;
        tables.sort_unstable();
        tables.dedup();
        // Projections and predicates must reference mentioned tables with
        // matching value types.
        for p in &projections {
            if !tables.contains(&p.table) {
                return Err(GhostError::sql(format!(
                    "projection {} references a table absent from FROM",
                    schema.column_name(*p)
                )));
            }
        }
        for p in &predicates {
            if !tables.contains(&p.column.table) {
                return Err(GhostError::sql(format!(
                    "predicate on {} references a table absent from FROM",
                    schema.column_name(p.column)
                )));
            }
            let def = schema.column_def(p.column);
            let ok = matches!(
                (&def.ty, &p.value),
                (
                    ghostdb_types::DataType::Integer,
                    ghostdb_types::Value::Int(_)
                ) | (ghostdb_types::DataType::Date, ghostdb_types::Value::Date(_))
                    | (
                        ghostdb_types::DataType::Char(_),
                        ghostdb_types::Value::Text(_)
                    )
            );
            if !ok {
                return Err(GhostError::sql(format!(
                    "predicate value {} does not match type {} of {}",
                    p.value,
                    def.ty,
                    schema.column_name(p.column)
                )));
            }
        }
        // The anchor: the mentioned table whose subtree contains all
        // mentioned tables; equivalently the common ancestor of minimum
        // depth... the LCA is the mentioned table of minimal depth IF it
        // is an ancestor-or-self of all others; otherwise the true LCA
        // (which must also be mentioned for the joins to be expressible).
        let anchor = Self::lca(tree, &tables)?;
        if !tables.contains(&anchor) {
            return Err(GhostError::sql(format!(
                "tables are only connected through {}, which must appear in FROM",
                schema.table(anchor).name
            )));
        }
        // Every edge from each mentioned table up to the anchor must be
        // (a) between mentioned tables and (b) explicitly joined.
        let normalized: Vec<(ColumnRef, ColumnRef)> = joins
            .iter()
            .map(|(a, b)| {
                if (a.table, a.column) <= (b.table, b.column) {
                    (*a, *b)
                } else {
                    (*b, *a)
                }
            })
            .collect();
        for &t in &tables {
            if t == anchor {
                continue;
            }
            let mut cur = t;
            while cur != anchor {
                let (parent, fk_col) = tree
                    .parent(cur)
                    .ok_or_else(|| GhostError::sql("table not under the anchor (planner bug)"))?;
                if !tables.contains(&parent) {
                    return Err(GhostError::sql(format!(
                        "join path requires table {} in FROM",
                        schema.table(parent).name
                    )));
                }
                // Expect join condition parent.fk = cur.pk.
                let fk = ColumnRef {
                    table: parent,
                    column: fk_col,
                };
                let pk = ColumnRef {
                    table: cur,
                    column: schema.table(cur).pk_column(),
                };
                let want = if (fk.table, fk.column) <= (pk.table, pk.column) {
                    (fk, pk)
                } else {
                    (pk, fk)
                };
                if !normalized.contains(&want) {
                    return Err(GhostError::sql(format!(
                        "missing join condition {} = {}",
                        schema.column_name(fk),
                        schema.column_name(pk)
                    )));
                }
                cur = parent;
            }
        }
        // Reject join conditions that do not match tree edges.
        for (a, b) in &normalized {
            let a_def = schema.column_def(*a);
            let b_def = schema.column_def(*b);
            let matches_edge = match (&a_def.role, &b_def.role) {
                (ColumnRole::ForeignKey(t), ColumnRole::PrimaryKey) => *t == b.table,
                (ColumnRole::PrimaryKey, ColumnRole::ForeignKey(t)) => *t == a.table,
                _ => false,
            };
            if !matches_edge {
                return Err(GhostError::sql(format!(
                    "join condition {} = {} does not follow a foreign key",
                    schema.column_name(*a),
                    schema.column_name(*b)
                )));
            }
        }
        let output = (0..projections.len()).map(OutputExpr::Column).collect();
        Ok(QuerySpec {
            sql: sql.into(),
            tables,
            anchor,
            projections,
            predicates,
            output,
            group_by: Vec::new(),
            order_by: Vec::new(),
            limit: None,
        })
    }

    /// Attach the bound analytic clauses (SELECT-list shape, GROUP BY,
    /// ORDER BY, LIMIT) to a query bound with `bind`. Every column the
    /// clauses reference must already be in `projections` — the SQL
    /// binder constructs them from the same set.
    pub fn with_analytics(mut self, schema: &Schema, analytics: &Analytics) -> Result<QuerySpec> {
        let find = |projections: &[ColumnRef], c: ColumnRef| -> Result<usize> {
            projections.iter().position(|p| *p == c).ok_or_else(|| {
                GhostError::sql(format!(
                    "output column {} is not materialized by the query",
                    schema.column_name(c)
                ))
            })
        };
        let mut output = Vec::with_capacity(analytics.output.len());
        for item in &analytics.output {
            match item {
                OutputItem::Column(c) => {
                    output.push(OutputExpr::Column(find(&self.projections, *c)?));
                }
                OutputItem::Agg { func, arg } => {
                    let arg = match arg {
                        Some(c) => {
                            if func.needs_arithmetic()
                                && schema.column_def(*c).ty != DataType::Integer
                            {
                                return Err(GhostError::unsupported(format!(
                                    "{func}({}) needs an INTEGER operand",
                                    schema.column_name(*c)
                                )));
                            }
                            Some(find(&self.projections, *c)?)
                        }
                        None => None,
                    };
                    output.push(OutputExpr::Agg { func: *func, arg });
                }
            }
        }
        let group_by: Vec<usize> = analytics
            .group_by
            .iter()
            .map(|c| find(&self.projections, *c))
            .collect::<Result<_>>()?;
        let has_agg = output.iter().any(|o| matches!(o, OutputExpr::Agg { .. }));
        if has_agg || !group_by.is_empty() {
            for o in &output {
                if let OutputExpr::Column(i) = o {
                    if !group_by.contains(i) {
                        return Err(GhostError::sql(format!(
                            "column {} must appear in GROUP BY",
                            schema.column_name(self.projections[*i])
                        )));
                    }
                }
            }
        }
        for k in &analytics.order_by {
            if k.item >= output.len() {
                return Err(GhostError::sql(format!(
                    "ORDER BY item {} out of range",
                    k.item + 1
                )));
            }
        }
        self.output = output;
        self.group_by = group_by;
        self.order_by = analytics.order_by.clone();
        self.limit = analytics.limit;
        Ok(self)
    }

    /// True when the epilogue is the identity: the output mirrors the
    /// projections one-to-one and there is no grouping, ordering or
    /// limit, so the executor can stream rows straight out.
    pub fn is_plain_output(&self) -> bool {
        self.group_by.is_empty()
            && self.order_by.is_empty()
            && self.limit.is_none()
            && self.output.len() == self.projections.len()
            && self
                .output
                .iter()
                .enumerate()
                .all(|(i, o)| matches!(o, OutputExpr::Column(j) if *j == i))
    }

    /// True when any output item aggregates.
    pub fn has_aggregates(&self) -> bool {
        self.output
            .iter()
            .any(|o| matches!(o, OutputExpr::Agg { .. }))
    }

    /// Result column headers, e.g. `Visit.Purpose` / `SUM(Record.Score)`.
    pub fn output_columns(&self, schema: &Schema) -> Vec<String> {
        self.output
            .iter()
            .map(|o| match o {
                OutputExpr::Column(i) => schema.column_name(self.projections[*i]),
                OutputExpr::Agg { func, arg } => match arg {
                    Some(i) => format!("{func}({})", schema.column_name(self.projections[*i])),
                    None => format!("{func}(*)"),
                },
            })
            .collect()
    }

    /// Lowest common ancestor of a set of tables in the tree.
    fn lca(tree: &TreeSchema, tables: &[TableId]) -> Result<TableId> {
        let mut iter = tables.iter();
        let first = *iter
            .next()
            .ok_or_else(|| GhostError::sql("empty table set"))?;
        let mut path = tree.climb_path(first);
        for &t in iter {
            let t_path = tree.climb_path(t);
            // Keep the suffix of `path` shared with `t_path` (both end at
            // the root), then the LCA is its first element.
            while !path.is_empty() && !t_path.contains(&path[0]) {
                path.remove(0);
            }
            if path.is_empty() {
                return Err(GhostError::sql("tables share no ancestor (planner bug)"));
            }
        }
        Ok(path[0])
    }

    /// Hidden predicates (indices into `predicates`).
    pub fn hidden_preds(&self, schema: &Schema) -> Vec<usize> {
        self.predicates
            .iter()
            .enumerate()
            .filter(|(_, p)| schema.is_hidden(p.column))
            .map(|(i, _)| i)
            .collect()
    }

    /// Visible predicates (indices into `predicates`).
    pub fn visible_preds(&self, schema: &Schema) -> Vec<usize> {
        self.predicates
            .iter()
            .enumerate()
            .filter(|(_, p)| !schema.is_hidden(p.column))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_catalog::{SchemaBuilder, Visibility};
    use ghostdb_types::{ColumnId, DataType, ScalarOp, Value};

    fn medical() -> (Schema, TreeSchema) {
        let mut b = SchemaBuilder::new();
        b.table("Doctor", "DocID")
            .column("Country", DataType::Char(20), Visibility::Visible);
        b.table("Medicine", "MedID")
            .column("Type", DataType::Char(20), Visibility::Visible);
        b.table("Visit", "VisID")
            .column("Date", DataType::Date, Visibility::Visible)
            .column("Purpose", DataType::Char(100), Visibility::Hidden)
            .foreign_key("DocID", "Doctor", Visibility::Hidden);
        b.table("Prescription", "PreID")
            .column("Quantity", DataType::Integer, Visibility::Hidden)
            .foreign_key("MedID", "Medicine", Visibility::Hidden)
            .foreign_key("VisID", "Visit", Visibility::Hidden);
        let s = b.build().unwrap();
        let t = TreeSchema::analyze(&s).unwrap();
        (s, t)
    }

    fn cref(s: &Schema, t: &str, c: &str) -> ColumnRef {
        let tid = s.resolve_table(t).unwrap();
        s.resolve_column(tid, c).unwrap()
    }

    #[test]
    fn binds_the_paper_query() {
        let (s, t) = medical();
        let med = s.resolve_table("Medicine").unwrap();
        let vis = s.resolve_table("Visit").unwrap();
        let pre = s.resolve_table("Prescription").unwrap();
        let spec = QuerySpec::bind(
            &s,
            &t,
            "SELECT ...",
            vec![med, pre, vis],
            vec![
                cref(&s, "Prescription", "Quantity"),
                cref(&s, "Visit", "Date"),
            ],
            vec![
                Predicate::new(
                    vis,
                    ColumnId(1),
                    ScalarOp::Gt,
                    Value::Date(ghostdb_types::Date(13_000)),
                ),
                Predicate::new(
                    vis,
                    ColumnId(2),
                    ScalarOp::Eq,
                    Value::Text("Sclerosis".into()),
                ),
                Predicate::new(
                    med,
                    ColumnId(1),
                    ScalarOp::Eq,
                    Value::Text("Antibiotic".into()),
                ),
            ],
            vec![
                (
                    cref(&s, "Prescription", "MedID"),
                    cref(&s, "Medicine", "MedID"),
                ),
                (
                    cref(&s, "Visit", "VisID"),
                    cref(&s, "Prescription", "VisID"),
                ),
            ],
        )
        .unwrap();
        assert_eq!(spec.anchor, pre);
        assert_eq!(spec.hidden_preds(&s), vec![1]);
        assert_eq!(spec.visible_preds(&s), vec![0, 2]);
    }

    #[test]
    fn single_table_query_anchors_on_itself() {
        let (s, t) = medical();
        let doc = s.resolve_table("Doctor").unwrap();
        let spec = QuerySpec::bind(
            &s,
            &t,
            "SELECT ...",
            vec![doc],
            vec![cref(&s, "Doctor", "Country")],
            vec![],
            vec![],
        )
        .unwrap();
        assert_eq!(spec.anchor, doc);
    }

    #[test]
    fn analytics_attach_and_labels() {
        use ghostdb_catalog::{Analytics, OrderKey, OutputItem};
        use ghostdb_types::AggFunc;
        let (s, t) = medical();
        let pre = s.resolve_table("Prescription").unwrap();
        let qty = cref(&s, "Prescription", "Quantity");
        let spec = QuerySpec::bind(&s, &t, "...", vec![pre], vec![qty], vec![], vec![]).unwrap();
        assert!(spec.is_plain_output());
        assert!(!spec.has_aggregates());
        assert_eq!(spec.output, vec![OutputExpr::Column(0)]);

        let an = Analytics {
            output: vec![
                OutputItem::Agg {
                    func: AggFunc::Sum,
                    arg: Some(qty),
                },
                OutputItem::Agg {
                    func: AggFunc::Count,
                    arg: None,
                },
            ],
            group_by: vec![],
            order_by: vec![OrderKey {
                item: 0,
                desc: true,
            }],
            limit: Some(3),
        };
        let spec = spec.with_analytics(&s, &an).unwrap();
        assert!(spec.has_aggregates());
        assert!(!spec.is_plain_output());
        assert_eq!(
            spec.output_columns(&s),
            vec!["SUM(Prescription.Quantity)", "COUNT(*)"]
        );
        assert_eq!(spec.limit, Some(3));

        // A plain output column outside GROUP BY is rejected.
        let bad = Analytics {
            output: vec![
                OutputItem::Column(qty),
                OutputItem::Agg {
                    func: AggFunc::Count,
                    arg: None,
                },
            ],
            ..Analytics::default()
        };
        let spec2 = QuerySpec::bind(&s, &t, "...", vec![pre], vec![qty], vec![], vec![]).unwrap();
        assert!(spec2
            .with_analytics(&s, &bad)
            .unwrap_err()
            .to_string()
            .contains("GROUP BY"));
    }

    #[test]
    fn missing_join_condition_rejected() {
        let (s, t) = medical();
        let med = s.resolve_table("Medicine").unwrap();
        let pre = s.resolve_table("Prescription").unwrap();
        let err = QuerySpec::bind(
            &s,
            &t,
            "SELECT ...",
            vec![med, pre],
            vec![cref(&s, "Medicine", "Type")],
            vec![],
            vec![],
        )
        .unwrap_err();
        assert!(err.to_string().contains("missing join condition"));
    }

    #[test]
    fn disconnected_tables_rejected() {
        let (s, t) = medical();
        let med = s.resolve_table("Medicine").unwrap();
        let doc = s.resolve_table("Doctor").unwrap();
        // Doctor and Medicine only connect through Prescription+Visit.
        let err = QuerySpec::bind(&s, &t, "SELECT ...", vec![med, doc], vec![], vec![], vec![])
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("connected") || msg.contains("FROM"), "{msg}");
    }

    #[test]
    fn non_edge_join_rejected() {
        let (s, t) = medical();
        let vis = s.resolve_table("Visit").unwrap();
        let pre = s.resolve_table("Prescription").unwrap();
        let err = QuerySpec::bind(
            &s,
            &t,
            "SELECT ...",
            vec![vis, pre],
            vec![],
            vec![],
            vec![
                // Correct edge join...
                (
                    cref(&s, "Prescription", "VisID"),
                    cref(&s, "Visit", "VisID"),
                ),
                // ...plus a bogus one.
                (
                    cref(&s, "Prescription", "Quantity"),
                    cref(&s, "Visit", "VisID"),
                ),
            ],
        )
        .unwrap_err();
        assert!(err.to_string().contains("does not follow a foreign key"));
    }

    #[test]
    fn predicate_type_mismatch_rejected() {
        let (s, t) = medical();
        let vis = s.resolve_table("Visit").unwrap();
        let err = QuerySpec::bind(
            &s,
            &t,
            "SELECT ...",
            vec![vis],
            vec![],
            vec![Predicate::new(
                vis,
                ColumnId(1),
                ScalarOp::Eq,
                Value::Int(5),
            )],
            vec![],
        )
        .unwrap_err();
        assert!(err.to_string().contains("does not match type"));
    }
}
