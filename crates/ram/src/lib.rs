//! Secure-chip RAM accounting.
//!
//! The smart USB device's security comes from a *small* silicon die: "the
//! smaller the die, the more difficult it is to snoop or tamper with
//! processing" (paper §3). The RAM available to query operators is tens of
//! kilobytes (64 KB in Figure 2). Every operator in the executor therefore
//! acquires its working memory through a [`RamBudget`] with a **hard cap**;
//! exceeding it is an error, not a slowdown — exactly the constraint that
//! forces the paper's design (climbing indexes instead of hash joins,
//! Bloom filters instead of materialized id lists, external sort runs on
//! flash).
//!
//! Accounting is RAII: a [`RamGuard`] returns its bytes on drop, and a
//! [`RamScope`] additionally tracks the per-operator usage and peak that
//! the demo GUI displays when you click an operator (demo phase 2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use ghostdb_types::{GhostError, Result};

mod tracked;

pub use tracked::TrackedVec;

#[derive(Debug, Default)]
struct BudgetInner {
    cap: usize,
    used: AtomicUsize,
    peak: AtomicUsize,
}

impl BudgetInner {
    fn charge(&self, bytes: usize) -> Result<()> {
        let mut cur = self.used.load(Ordering::Relaxed);
        loop {
            let new = cur + bytes;
            if new > self.cap {
                return Err(GhostError::OutOfDeviceRam {
                    requested: bytes,
                    available: self.cap.saturating_sub(cur),
                    budget: self.cap,
                });
            }
            match self
                .used
                .compare_exchange(cur, new, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => {
                    self.peak.fetch_max(new, Ordering::Relaxed);
                    return Ok(());
                }
                Err(actual) => cur = actual,
            }
        }
    }

    fn release(&self, bytes: usize) {
        self.used.fetch_sub(bytes, Ordering::Relaxed);
    }
}

/// A hard-capped RAM budget shared by all operators of one device.
///
/// Cloning shares the cap and counters.
#[derive(Debug, Clone)]
pub struct RamBudget {
    inner: Arc<BudgetInner>,
}

impl RamBudget {
    /// Create a budget of `cap` bytes (64 KiB on the paper's platform).
    pub fn new(cap: usize) -> Self {
        RamBudget {
            inner: Arc::new(BudgetInner {
                cap,
                used: AtomicUsize::new(0),
                peak: AtomicUsize::new(0),
            }),
        }
    }

    /// Acquire `bytes` of device RAM, failing if the cap would be exceeded.
    pub fn alloc(&self, bytes: usize) -> Result<RamGuard> {
        self.inner.charge(bytes)?;
        Ok(RamGuard {
            budget: self.clone(),
            bytes,
        })
    }

    /// Total budget in bytes.
    pub fn cap(&self) -> usize {
        self.inner.cap
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> usize {
        self.inner.used.load(Ordering::Relaxed)
    }

    /// High-water mark since creation or the last [`RamBudget::reset_peak`].
    pub fn peak(&self) -> usize {
        self.inner.peak.load(Ordering::Relaxed)
    }

    /// Bytes still available.
    pub fn available(&self) -> usize {
        self.cap().saturating_sub(self.used())
    }

    /// Reset the high-water mark to the current usage (benchmark phases).
    pub fn reset_peak(&self) {
        self.inner.peak.store(self.used(), Ordering::Relaxed);
    }
}

/// RAII lease of device RAM; returns the bytes to the budget on drop.
#[derive(Debug)]
pub struct RamGuard {
    budget: RamBudget,
    bytes: usize,
}

impl RamGuard {
    /// Bytes held by this guard.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Resize the lease, charging or releasing the difference.
    pub fn resize(&mut self, new_bytes: usize) -> Result<()> {
        if new_bytes > self.bytes {
            self.budget.inner.charge(new_bytes - self.bytes)?;
        } else {
            self.budget.inner.release(self.bytes - new_bytes);
        }
        self.bytes = new_bytes;
        Ok(())
    }
}

impl Drop for RamGuard {
    fn drop(&mut self) {
        self.budget.inner.release(self.bytes);
    }
}

#[derive(Debug, Default)]
struct ScopeInner {
    used: AtomicUsize,
    peak: AtomicUsize,
}

/// Per-operator view of the shared budget.
///
/// Allocations made through a scope count against the device-wide budget
/// *and* the scope's own counters, giving the "local RAM consumption"
/// statistic the demo shows per plan operator.
#[derive(Debug, Clone)]
pub struct RamScope {
    budget: RamBudget,
    inner: Arc<ScopeInner>,
}

impl RamScope {
    /// Create a scope over `budget`.
    pub fn new(budget: &RamBudget) -> Self {
        RamScope {
            budget: budget.clone(),
            inner: Arc::new(ScopeInner::default()),
        }
    }

    /// Acquire `bytes`, attributed to this scope.
    pub fn alloc(&self, bytes: usize) -> Result<ScopedGuard> {
        let guard = self.budget.alloc(bytes)?;
        let new = self.inner.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.inner.peak.fetch_max(new, Ordering::Relaxed);
        Ok(ScopedGuard {
            scope: self.clone(),
            guard,
        })
    }

    /// Bytes currently attributed to this scope.
    pub fn used(&self) -> usize {
        self.inner.used.load(Ordering::Relaxed)
    }

    /// This scope's high-water mark.
    pub fn peak(&self) -> usize {
        self.inner.peak.load(Ordering::Relaxed)
    }

    /// The underlying device budget.
    pub fn budget(&self) -> &RamBudget {
        &self.budget
    }
}

/// RAII lease attributed to a [`RamScope`].
#[derive(Debug)]
pub struct ScopedGuard {
    scope: RamScope,
    guard: RamGuard,
}

impl ScopedGuard {
    /// Bytes held by this guard.
    pub fn bytes(&self) -> usize {
        self.guard.bytes()
    }

    /// Resize the lease, updating both scope and budget accounting.
    pub fn resize(&mut self, new_bytes: usize) -> Result<()> {
        let old = self.guard.bytes();
        self.guard.resize(new_bytes)?;
        if new_bytes > old {
            let delta = new_bytes - old;
            let new = self.scope.inner.used.fetch_add(delta, Ordering::Relaxed) + delta;
            self.scope.inner.peak.fetch_max(new, Ordering::Relaxed);
        } else {
            self.scope
                .inner
                .used
                .fetch_sub(old - new_bytes, Ordering::Relaxed);
        }
        Ok(())
    }
}

impl Drop for ScopedGuard {
    fn drop(&mut self) {
        self.scope
            .inner
            .used
            .fetch_sub(self.guard.bytes(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cap_is_enforced() {
        let b = RamBudget::new(1000);
        let _g = b.alloc(900).unwrap();
        let err = b.alloc(200).unwrap_err();
        match err {
            GhostError::OutOfDeviceRam {
                requested,
                available,
                budget,
            } => {
                assert_eq!(requested, 200);
                assert_eq!(available, 100);
                assert_eq!(budget, 1000);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn drop_releases() {
        let b = RamBudget::new(100);
        {
            let _g = b.alloc(80).unwrap();
            assert_eq!(b.used(), 80);
        }
        assert_eq!(b.used(), 0);
        assert_eq!(b.peak(), 80);
        let _g = b.alloc(100).unwrap(); // fits again
    }

    #[test]
    fn resize_grow_and_shrink() {
        let b = RamBudget::new(100);
        let mut g = b.alloc(10).unwrap();
        g.resize(60).unwrap();
        assert_eq!(b.used(), 60);
        g.resize(5).unwrap();
        assert_eq!(b.used(), 5);
        assert!(g.resize(200).is_err());
        assert_eq!(b.used(), 5, "failed grow must not charge");
    }

    #[test]
    fn peak_tracks_high_water() {
        let b = RamBudget::new(100);
        let g1 = b.alloc(40).unwrap();
        let g2 = b.alloc(50).unwrap();
        drop(g1);
        drop(g2);
        assert_eq!(b.peak(), 90);
        b.reset_peak();
        assert_eq!(b.peak(), 0);
    }

    #[test]
    fn scopes_attribute_usage() {
        let b = RamBudget::new(1000);
        let s1 = RamScope::new(&b);
        let s2 = RamScope::new(&b);
        let g1 = s1.alloc(100).unwrap();
        let _g2 = s2.alloc(300).unwrap();
        assert_eq!(s1.used(), 100);
        assert_eq!(s2.used(), 300);
        assert_eq!(b.used(), 400);
        drop(g1);
        assert_eq!(s1.used(), 0);
        assert_eq!(s1.peak(), 100);
        assert_eq!(b.used(), 300);
    }

    #[test]
    fn scope_respects_device_cap() {
        let b = RamBudget::new(100);
        let s = RamScope::new(&b);
        let _g = s.alloc(90).unwrap();
        assert!(s.alloc(20).is_err());
    }

    #[test]
    fn scoped_resize_updates_both() {
        let b = RamBudget::new(100);
        let s = RamScope::new(&b);
        let mut g = s.alloc(10).unwrap();
        g.resize(50).unwrap();
        assert_eq!(s.used(), 50);
        assert_eq!(b.used(), 50);
        g.resize(20).unwrap();
        assert_eq!(s.used(), 20);
        assert_eq!(b.used(), 20);
    }

    #[test]
    fn zero_byte_alloc_is_fine() {
        let b = RamBudget::new(0);
        let _g = b.alloc(0).unwrap();
        assert!(b.alloc(1).is_err());
    }
}
