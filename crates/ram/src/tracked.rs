//! A growable vector whose capacity is charged to a [`RamScope`].
//!
//! Operators use `TrackedVec` for any in-RAM materialization (merge
//! buffers, Bloom filter bit arrays, sort runs). Pushing can fail with
//! [`ghostdb_types::GhostError::OutOfDeviceRam`], which is precisely the
//! signal the executor uses to switch to a spilling strategy.

use std::mem::size_of;

use ghostdb_types::Result;

use crate::{RamScope, ScopedGuard};

/// A `Vec<T>` whose heap capacity counts against the device RAM budget.
#[derive(Debug)]
pub struct TrackedVec<T> {
    items: Vec<T>,
    guard: ScopedGuard,
}

impl<T> TrackedVec<T> {
    /// Create an empty vector charged to `scope`.
    pub fn new(scope: &RamScope) -> Result<Self> {
        Self::with_capacity(scope, 0)
    }

    /// Create a vector with room for `cap` elements.
    pub fn with_capacity(scope: &RamScope, cap: usize) -> Result<Self> {
        let guard = scope.alloc(cap * size_of::<T>())?;
        Ok(TrackedVec {
            items: Vec::with_capacity(cap),
            guard,
        })
    }

    /// Append an element, growing (and charging) capacity as needed.
    pub fn push(&mut self, value: T) -> Result<()> {
        if self.items.len() == self.items.capacity() {
            let new_cap = (self.items.capacity() * 2).max(8);
            self.guard.resize(new_cap * size_of::<T>())?;
            self.items.reserve_exact(new_cap - self.items.capacity());
        }
        self.items.push(value);
        Ok(())
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Borrow the elements.
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }

    /// Mutably borrow the elements (e.g. for in-place sorting).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.items
    }

    /// Remove all elements, keeping (and keeping paid for) the capacity.
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Bytes of device RAM this vector currently holds.
    pub fn charged_bytes(&self) -> usize {
        self.guard.bytes()
    }

    /// Consume the vector, releasing its RAM charge, and return the items
    /// as an ordinary (untracked) `Vec`. Use only when handing data off
    /// the device model (e.g. to the secure display).
    pub fn into_untracked(self) -> Vec<T> {
        self.items
    }

    /// Iterate over the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.items.iter()
    }
}

impl<'a, T> IntoIterator for &'a TrackedVec<T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RamBudget;

    #[test]
    fn push_charges_budget() {
        let b = RamBudget::new(1024);
        let s = RamScope::new(&b);
        let mut v: TrackedVec<u32> = TrackedVec::new(&s).unwrap();
        for i in 0..100u32 {
            v.push(i).unwrap();
        }
        assert_eq!(v.len(), 100);
        assert!(b.used() >= 100 * 4, "used {} < 400", b.used());
        assert_eq!(v.as_slice()[99], 99);
    }

    #[test]
    fn overflow_fails_cleanly() {
        let b = RamBudget::new(64);
        let s = RamScope::new(&b);
        let mut v: TrackedVec<u64> = TrackedVec::new(&s).unwrap();
        let mut pushed = 0;
        loop {
            if v.push(pushed).is_err() {
                break;
            }
            pushed += 1;
            assert!(pushed < 100, "budget never enforced");
        }
        // The vector is still usable after a failed push.
        assert_eq!(v.len() as u64, pushed);
        assert!(b.used() <= 64);
    }

    #[test]
    fn drop_returns_ram() {
        let b = RamBudget::new(4096);
        let s = RamScope::new(&b);
        {
            let mut v: TrackedVec<u32> = TrackedVec::with_capacity(&s, 64).unwrap();
            v.push(1).unwrap();
            assert!(b.used() >= 256);
        }
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn clear_keeps_capacity_charge() {
        let b = RamBudget::new(4096);
        let s = RamScope::new(&b);
        let mut v: TrackedVec<u32> = TrackedVec::with_capacity(&s, 16).unwrap();
        for i in 0..16 {
            v.push(i).unwrap();
        }
        let charged = v.charged_bytes();
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.charged_bytes(), charged);
    }

    #[test]
    fn sort_via_mut_slice() {
        let b = RamBudget::new(4096);
        let s = RamScope::new(&b);
        let mut v: TrackedVec<u32> = TrackedVec::new(&s).unwrap();
        for i in [5u32, 1, 4, 2, 3] {
            v.push(i).unwrap();
        }
        v.as_mut_slice().sort_unstable();
        assert_eq!(v.as_slice(), &[1, 2, 3, 4, 5]);
    }
}
