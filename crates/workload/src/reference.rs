//! A naive reference engine: plain in-memory SPJ evaluation over the
//! load-time [`Dataset`].
//!
//! This is the ground truth the correctness tests compare every GhostDB
//! plan against. It shares **no code** with the device executor: joins
//! follow raw foreign keys row by row, predicates evaluate with
//! [`ScalarOp::matches`], and nothing is indexed.

use ghostdb_catalog::{ColumnRef, Predicate, Schema, TreeSchema};
use ghostdb_storage::Dataset;
use ghostdb_types::{GhostError, Result, RowId, TableId, Value};

/// Execute an SPJ query naively: for each row of `anchor`, resolve the id
/// of every reachable subtree table by following foreign keys, keep the
/// rows satisfying all `predicates`, and project `projections`.
///
/// Rows come back in ascending anchor-id order — the same deterministic
/// order the device executor produces.
pub fn reference_execute(
    schema: &Schema,
    tree: &TreeSchema,
    data: &Dataset,
    anchor: TableId,
    projections: &[ColumnRef],
    predicates: &[Predicate],
) -> Result<Vec<Vec<Value>>> {
    // Resolve each subtree table's id for one anchor row.
    let subtree = tree.subtree(anchor);
    let id_of = |anchor_row: u32, table: TableId| -> Result<u32> {
        let mut path = vec![table];
        let mut cur = table;
        while cur != anchor {
            let (p, _) = tree
                .parent(cur)
                .ok_or_else(|| GhostError::exec("table not under anchor"))?;
            path.push(p);
            cur = p;
        }
        // Walk down from the anchor following fk columns.
        let mut id = anchor_row;
        for pair in path.windows(2).rev() {
            let child = pair[0];
            let parent = pair[1];
            let (_, fk_col) = tree
                .parent(child)
                .ok_or_else(|| GhostError::exec("missing parent"))?;
            let v = data.value(parent, fk_col.index(), RowId(id));
            id = v
                .as_int()
                .ok_or_else(|| GhostError::corrupt("non-integer fk"))? as u32;
        }
        Ok(id)
    };

    for p in predicates {
        if !subtree.contains(&p.column.table) {
            return Err(GhostError::exec(format!(
                "predicate table {} not reachable from anchor",
                schema.table(p.column.table).name
            )));
        }
    }
    for c in projections {
        if !subtree.contains(&c.table) {
            return Err(GhostError::exec(format!(
                "projection table {} not reachable from anchor",
                schema.table(c.table).name
            )));
        }
    }

    let n = data.row_count(anchor) as u32;
    let mut out = Vec::new();
    'rows: for r in 0..n {
        for p in predicates {
            let row = id_of(r, p.column.table)?;
            let v = data.value(p.column.table, p.column.column.index(), RowId(row));
            if !p.op.matches(v, &p.value)? {
                continue 'rows;
            }
        }
        let mut projected = Vec::with_capacity(projections.len());
        for c in projections {
            let row = id_of(r, c.table)?;
            projected.push(data.value(c.table, c.column.index(), RowId(row)).clone());
        }
        out.push(projected);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::medical::{generate_medical, medical_schema, MedicalConfig};
    use ghostdb_types::ScalarOp;

    #[test]
    fn reference_counts_sane() {
        let cfg = MedicalConfig::scaled(1000);
        let data = generate_medical(&cfg).unwrap();
        let schema = medical_schema().unwrap();
        let tree = TreeSchema::analyze(&schema).unwrap();
        let vis = schema.resolve_table("Visit").unwrap();
        let pre = schema.resolve_table("Prescription").unwrap();
        let purpose = schema.resolve_column(vis, "Purpose").unwrap();

        let preds = vec![Predicate {
            column: purpose,
            op: ScalarOp::Eq,
            value: Value::Text("Sclerosis".into()),
        }];
        let projs = vec![schema.resolve_column(pre, "PreID").unwrap()];
        let rows = reference_execute(&schema, &tree, &data, pre, &projs, &preds).unwrap();
        // ~1% of visits are Sclerosis; each visit has ~4 prescriptions,
        // so expect around 1% of 1000 prescriptions with slack.
        assert!(!rows.is_empty());
        assert!(rows.len() < 100);
        // Ascending anchor order.
        let ids: Vec<i64> = rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn unreachable_tables_rejected() {
        let schema = medical_schema().unwrap();
        let tree = TreeSchema::analyze(&schema).unwrap();
        let data = generate_medical(&MedicalConfig::scaled(100)).unwrap();
        let vis = schema.resolve_table("Visit").unwrap();
        let med = schema.resolve_table("Medicine").unwrap();
        // Medicine is not in Visit's subtree.
        let projs = vec![schema.resolve_column(med, "Name").unwrap()];
        assert!(reference_execute(&schema, &tree, &data, vis, &projs, &[]).is_err());
    }
}
