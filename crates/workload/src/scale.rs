//! Million-row scale workload: a single flat `Event` table, a
//! deterministic scrambled-zipfian key generator, and a mixed
//! read/insert/update/delete operation stream.
//!
//! The medical and retail generators reproduce the paper's *schemas*;
//! this module reproduces its *scale* claim (§5: one million root
//! tuples) in a shape built for cache studies: point queries on a
//! hidden column whose popularity follows a zipfian law, so a small
//! device-RAM page cache can capture the hot set while the cold tail
//! still faults to NAND.

use ghostdb_storage::Dataset;
use ghostdb_types::{GhostError, Result, Value};

/// The scale schema: one table, visible dense key and shard, hidden
/// payload (the query target — predicates on it stay on the device)
/// and a hidden tag for row width.
pub const SCALE_DDL: &str = "\
CREATE TABLE Event (
  EvID INTEGER PRIMARY KEY,
  Shard INTEGER,
  Payload INTEGER HIDDEN,
  Tag CHAR(12) HIDDEN);";

/// Generator parameters for the scale dataset.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Number of `Event` rows (paper scale: 1,000,000).
    pub rows: usize,
    /// Distinct hidden `Payload` values; each value matches
    /// `rows / payload_cardinality` rows on average.
    pub payload_cardinality: usize,
    /// Distinct visible `Shard` values (`EvID % shards`).
    pub shards: usize,
    /// Zipfian skew parameter for query/op key draws (YCSB default
    /// `0.99`; must be in `(0, 1)`).
    pub theta: f64,
    /// PRNG seed — generation and op streams are fully deterministic.
    pub seed: u64,
}

impl ScaleConfig {
    /// A scaled configuration: payload cardinality tracks `rows / 8`
    /// so every payload value matches a handful of rows.
    pub fn scaled(rows: usize) -> ScaleConfig {
        ScaleConfig {
            rows,
            payload_cardinality: (rows / 8).max(16),
            shards: 64,
            theta: 0.99,
            seed: 0x5ca1_ab1e,
        }
    }

    /// The paper's root cardinality: one million rows.
    pub fn paper_scale() -> ScaleConfig {
        Self::scaled(1_000_000)
    }

    /// A small configuration for tests and CI smoke runs.
    pub fn smoke() -> ScaleConfig {
        Self::scaled(4_000)
    }

    /// Override the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The bound scale schema.
pub fn scale_schema() -> Result<ghostdb_catalog::Schema> {
    ghostdb_sql::bind_schema(&ghostdb_sql::parse_statements(SCALE_DDL)?)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The values of `Event` row `id` under `cfg` — shared by
/// [`generate_scale`] and by drivers appending fresh rows mid-run, so
/// an inserted row is indistinguishable from a generated one.
///
/// `Payload` values are clustered in key order: runs of
/// `rows / payload_cardinality` consecutive rows share one value, so a
/// point query's matches land on one or two NAND pages instead of
/// being hash-scattered across the whole table (events arriving in
/// time order share a correlation key — and the locality is what makes
/// a small page cache meaningful to study).
pub fn scale_row(cfg: &ScaleConfig, id: i64) -> Vec<Value> {
    let mut s = cfg.seed ^ (id as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let h = splitmix64(&mut s);
    let card = cfg.payload_cardinality.max(1) as i64;
    let span = (cfg.rows as i64 / card).max(1);
    vec![
        Value::Int(id),
        Value::Int(id % cfg.shards.max(1) as i64),
        Value::Int((id / span) % card),
        Value::Text(format!("t{:011x}", h >> 20 & 0xfff_ffff_ffff)),
    ]
}

/// Generate the scale dataset (deterministic in `cfg.seed`).
pub fn generate_scale(cfg: &ScaleConfig) -> Result<Dataset> {
    if cfg.rows == 0 {
        return Err(GhostError::catalog("rows must be > 0"));
    }
    let schema = scale_schema()?;
    let mut data = Dataset::empty(&schema);
    let event = schema.resolve_table("Event")?;
    for i in 0..cfg.rows as i64 {
        data.push_row(event, scale_row(cfg, i))?;
    }
    data.validate(&schema)?;
    Ok(data)
}

/// A hidden point query for one payload value — the predicate is
/// evaluated on the device, so its page faults (and cache hits) are
/// the measured quantity.
pub fn scale_point_query(payload: i64) -> String {
    format!("SELECT Ev.EvID FROM Event Ev WHERE Ev.Payload = {payload}")
}

/// Deterministic scrambled-zipfian draw over `0..n` (the YCSB
/// construction): ranks follow a zipfian law with parameter `theta`,
/// then a stateless hash spreads the hot ranks across the key space so
/// popularity does not correlate with key order.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zeta_n: f64,
    eta: f64,
    state: u64,
}

impl Zipfian {
    /// A generator over `0..n` with skew `theta` (must be in `(0, 1)`;
    /// `0.99` is the YCSB default) seeded deterministically.
    pub fn new(n: u64, theta: f64, seed: u64) -> Zipfian {
        assert!(n > 0, "zipfian domain must be non-empty");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0, 1)");
        let zeta = |m: u64| -> f64 { (1..=m).map(|i| 1.0 / (i as f64).powf(theta)).sum() };
        let zeta_n = zeta(n);
        let zeta2 = zeta(2.min(n));
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zeta_n);
        Zipfian {
            n,
            theta,
            alpha: 1.0 / (1.0 - theta),
            zeta_n,
            eta,
            state: seed,
        }
    }

    /// The zipfian *rank* (0 is the most popular) — mostly useful for
    /// tests; workloads want the scrambled [`next`](Self::next).
    pub fn next_rank(&mut self) -> u64 {
        let u = (splitmix64(&mut self.state) >> 11) as f64 / (1u64 << 53) as f64;
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1.min(self.n - 1);
        }
        let r = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        r.min(self.n - 1)
    }

    /// The next key in `0..n`, scrambled so hot keys are spread across
    /// the domain. An inherent `next` (not `Iterator`): the stream is
    /// infinite and every caller wants a bare `u64`, not an `Option`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        let rank = self.next_rank();
        let mut s = rank.wrapping_mul(0xff51_afd7_ed55_8ccd);
        splitmix64(&mut s) % self.n
    }
}

/// One deterministic operation in a mixed scale workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleOp {
    /// Point read: hidden equality `Payload = .0`.
    Read(i64),
    /// Append one fresh row; the driver assigns the next dense primary
    /// key and builds its values with [`scale_row`].
    Insert,
    /// Overwrite the hidden payload of logical row `.0` with `.1`.
    Update(u32, i64),
    /// Tombstone logical row `.0`.
    Delete(u32),
}

/// Relative weights of the four operation kinds in a mixed stream.
#[derive(Debug, Clone, Copy)]
pub struct ScaleMix {
    /// Weight of point reads.
    pub reads: u32,
    /// Weight of appends.
    pub inserts: u32,
    /// Weight of payload updates.
    pub updates: u32,
    /// Weight of deletes.
    pub deletes: u32,
}

impl ScaleMix {
    /// YCSB-B-flavoured mix: 80 % reads, light churn.
    pub fn read_heavy() -> ScaleMix {
        ScaleMix {
            reads: 80,
            inserts: 10,
            updates: 8,
            deletes: 2,
        }
    }

    /// Write-leaning mix for churn stress: half the ops mutate.
    pub fn balanced() -> ScaleMix {
        ScaleMix {
            reads: 50,
            inserts: 20,
            updates: 20,
            deletes: 10,
        }
    }

    fn total(&self) -> u64 {
        (self.reads + self.inserts + self.updates + self.deletes) as u64
    }
}

/// A deterministic mixed-operation stream over a live scale table.
///
/// The stream tracks the table's live row count as its own ops land
/// (insert grows it, delete shrinks it) so update/delete targets are
/// always valid *dense logical ids* — the engine renumbers primary
/// keys on delete, and the stream's bookkeeping mirrors that contract.
#[derive(Debug, Clone)]
pub struct OpStream {
    mix: ScaleMix,
    payloads: Zipfian,
    rows: Zipfian,
    live: u64,
    payload_cardinality: u64,
    state: u64,
}

impl OpStream {
    /// A stream over a table freshly loaded from `cfg`, drawing both
    /// payload values and mutation targets zipfian-skewed.
    pub fn new(cfg: &ScaleConfig, mix: ScaleMix, seed: u64) -> OpStream {
        assert!(mix.total() > 0, "mix must have positive total weight");
        OpStream {
            mix,
            payloads: Zipfian::new(
                cfg.payload_cardinality.max(1) as u64,
                cfg.theta,
                seed ^ 0xa5,
            ),
            rows: Zipfian::new(cfg.rows.max(1) as u64, cfg.theta, seed ^ 0x5a),
            live: cfg.rows as u64,
            payload_cardinality: cfg.payload_cardinality.max(1) as u64,
            state: seed,
        }
    }

    /// Live rows the table holds once every op issued so far has been
    /// applied.
    pub fn live_rows(&self) -> u64 {
        self.live
    }

    /// The next operation. Deletes degrade to reads when the table is
    /// nearly empty so the stream can never underflow the dataset.
    pub fn next_op(&mut self) -> ScaleOp {
        let pick = splitmix64(&mut self.state) % self.mix.total();
        let m = &self.mix;
        if pick < m.reads as u64 {
            ScaleOp::Read(self.payloads.next() as i64)
        } else if pick < (m.reads + m.inserts) as u64 {
            self.live += 1;
            ScaleOp::Insert
        } else if pick < (m.reads + m.inserts + m.updates) as u64 {
            let row = (self.rows.next() % self.live) as u32;
            let val = (splitmix64(&mut self.state) % self.payload_cardinality) as i64;
            ScaleOp::Update(row, val)
        } else if self.live > 1 {
            let row = (self.rows.next() % self.live) as u32;
            self.live -= 1;
            ScaleOp::Delete(row)
        } else {
            ScaleOp::Read(self.payloads.next() as i64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn generation_is_deterministic_and_sized() {
        let cfg = ScaleConfig::scaled(500);
        let a = generate_scale(&cfg).unwrap();
        let b = generate_scale(&cfg).unwrap();
        assert_eq!(a, b);
        let c = generate_scale(&cfg.clone().with_seed(9)).unwrap();
        assert_ne!(a, c);
        let s = scale_schema().unwrap();
        assert_eq!(a.row_count(s.resolve_table("Event").unwrap()), 500);
    }

    #[test]
    fn zipfian_is_skewed_and_deterministic() {
        let mut z1 = Zipfian::new(1000, 0.99, 7);
        let mut z2 = Zipfian::new(1000, 0.99, 7);
        let mut freq: HashMap<u64, u64> = HashMap::new();
        for _ in 0..20_000 {
            let k = z1.next();
            assert_eq!(k, z2.next());
            assert!(k < 1000);
            *freq.entry(k).or_default() += 1;
        }
        // The hottest key draws far more than the 20 draws a uniform
        // distribution would give it.
        let hottest = *freq.values().max().unwrap();
        assert!(hottest > 400, "hottest key drawn only {hottest} times");
    }

    #[test]
    fn op_stream_tracks_live_count_and_mix() {
        let cfg = ScaleConfig::scaled(1_000);
        let mut ops = OpStream::new(&cfg, ScaleMix::balanced(), 11);
        let mut live = 1_000u64;
        let (mut reads, mut writes) = (0u64, 0u64);
        for _ in 0..5_000 {
            match ops.next_op() {
                ScaleOp::Read(v) => {
                    assert!((v as u64) < cfg.payload_cardinality as u64);
                    reads += 1;
                }
                ScaleOp::Insert => {
                    live += 1;
                    writes += 1;
                }
                ScaleOp::Update(row, _) => {
                    assert!((row as u64) < live);
                    writes += 1;
                }
                ScaleOp::Delete(row) => {
                    assert!((row as u64) < live);
                    live -= 1;
                    writes += 1;
                }
            }
            assert_eq!(ops.live_rows(), live);
        }
        // Balanced mix: roughly half the ops mutate.
        assert!(
            reads > 1_500 && writes > 1_500,
            "{reads} reads, {writes} writes"
        );
    }

    #[test]
    fn inserted_rows_match_generated_rows() {
        // Loading N rows then appending one must equal loading N+1.
        let cfg = ScaleConfig::scaled(64);
        let big = ScaleConfig {
            rows: 65,
            ..cfg.clone()
        };
        let d = generate_scale(&big).unwrap();
        let s = scale_schema().unwrap();
        let ev = s.resolve_table("Event").unwrap();
        let last: Vec<Value> = (0..4)
            .map(|c| d.value(ev, c, ghostdb_types::RowId(64)).clone())
            .collect();
        assert_eq!(last, scale_row(&cfg, 64));
    }
}
