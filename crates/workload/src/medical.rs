//! The Figure 3 medical dataset.
//!
//! Schema exactly as the paper draws it (superscript H = hidden):
//!
//! ```text
//! Doctor(DocID, Name, Speciality, Zip, Country)
//! Patient(PatID, Name^H, Age, BodyMassIndex^H, Country)
//! Medicine(MedID, Name, Effect, Type)
//! Visit(VisID, Date, Purpose^H, DocID^H -> Doctor, PatID^H -> Patient)
//! Prescription(PreID, Quantity^H, Frequency, WhenWritten^H,
//!              MedID^H -> Medicine, VisID^H -> Visit)
//! ```

use ghostdb_storage::Dataset;
use ghostdb_types::{Date, GhostError, Result, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The demo schema as `CREATE TABLE` DDL (paper §2 syntax, Figure 3
/// visibility).
pub const MEDICAL_DDL: &str = "\
CREATE TABLE Doctor (
  DocID INTEGER PRIMARY KEY,
  Name CHAR(24),
  Speciality CHAR(20),
  Zip INTEGER,
  Country CHAR(16));
CREATE TABLE Patient (
  PatID INTEGER PRIMARY KEY,
  Name CHAR(24) HIDDEN,
  Age INTEGER,
  BodyMassIndex INTEGER HIDDEN,
  Country CHAR(16));
CREATE TABLE Medicine (
  MedID INTEGER PRIMARY KEY,
  Name CHAR(24),
  Effect CHAR(20),
  Type CHAR(16));
CREATE TABLE Visit (
  VisID INTEGER PRIMARY KEY,
  Date DATE,
  Purpose CHAR(32) HIDDEN,
  DocID REFERENCES Doctor(DocID) HIDDEN,
  PatID REFERENCES Patient(PatID) HIDDEN);
CREATE TABLE Prescription (
  PreID INTEGER PRIMARY KEY,
  Quantity INTEGER HIDDEN,
  Frequency INTEGER,
  WhenWritten DATE HIDDEN,
  MedID REFERENCES Medicine(MedID) HIDDEN,
  VisID REFERENCES Visit(VisID) HIDDEN);";

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct MedicalConfig {
    /// Root-table cardinality (paper: 1,000,000).
    pub prescriptions: usize,
    /// Average prescriptions per visit.
    pub prescriptions_per_visit: usize,
    /// Average visits per patient.
    pub visits_per_patient: usize,
    /// Number of doctors.
    pub doctors: usize,
    /// Number of medicines.
    pub medicines: usize,
    /// PRNG seed (generation is fully deterministic).
    pub seed: u64,
    /// Fraction of visits whose hidden Purpose is `Sclerosis` (the §4
    /// example's hidden selectivity).
    pub sclerosis_fraction: f64,
    /// Fraction of medicines whose visible Type is `Antibiotic`.
    pub antibiotic_fraction: f64,
    /// First calendar day of the Visit.Date range.
    pub date_start: Date,
    /// Number of days the Visit.Date range spans (uniform).
    pub date_span_days: u32,
}

impl MedicalConfig {
    /// A scaled configuration with the paper's proportions.
    pub fn scaled(prescriptions: usize) -> MedicalConfig {
        MedicalConfig {
            prescriptions,
            prescriptions_per_visit: 4,
            visits_per_patient: 5,
            doctors: (prescriptions / 500).max(4),
            medicines: (prescriptions / 1000).clamp(8, 2000),
            seed: 0x9e37_79b9,
            sclerosis_fraction: 0.01,
            antibiotic_fraction: 0.10,
            date_start: Date::from_ymd(2004, 1, 1).expect("valid date"),
            date_span_days: 1096, // 2004-2006 inclusive
        }
    }

    /// The paper's scale: one million prescriptions.
    pub fn paper_scale() -> MedicalConfig {
        Self::scaled(1_000_000)
    }

    /// A small configuration for tests and examples.
    pub fn small() -> MedicalConfig {
        Self::scaled(2_000)
    }

    /// Number of visits implied.
    pub fn visits(&self) -> usize {
        (self.prescriptions / self.prescriptions_per_visit).max(1)
    }

    /// Number of patients implied.
    pub fn patients(&self) -> usize {
        (self.visits() / self.visits_per_patient).max(1)
    }

    /// Override the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

const COUNTRIES: &[&str] = &[
    "France", "Spain", "USA", "Germany", "Italy", "Austria", "Belgium", "Poland", "Norway",
    "Japan", "Brazil", "Canada",
];
const SPECIALITIES: &[&str] = &[
    "Cardiology",
    "Neurology",
    "Oncology",
    "Pediatrics",
    "Radiology",
    "Surgery",
    "Dermatology",
    "Psychiatry",
];
const PURPOSES: &[&str] = &[
    "Checkup",
    "Diabetes",
    "Hypertension",
    "Influenza",
    "Asthma",
    "Migraine",
    "Fracture",
    "Allergy",
    "Bronchitis",
    "Arthritis",
    "Depression",
    "Insomnia",
    "Anemia",
    "Obesity",
    "Dermatitis",
    "Gastritis",
];
const EFFECTS: &[&str] = &[
    "Analgesic",
    "Antipyretic",
    "Sedative",
    "Stimulant",
    "Diuretic",
    "Laxative",
    "Antiseptic",
    "Vasodilator",
];
const TYPES: &[&str] = &[
    "Placebo",
    "Antiviral",
    "Vaccine",
    "Statin",
    "Betablocker",
    "Steroid",
    "Insulin",
    "Antihistamine",
    "Opioid",
];
const SYLLABLES: &[&str] = &[
    "ka", "ro", "mi", "ta", "le", "su", "ne", "vo", "ri", "da", "pa", "zu", "be", "no",
];

fn name_of(rng: &mut StdRng, prefix: &str) -> String {
    let n = rng.random_range(2..4usize);
    let mut s = String::from(prefix);
    for _ in 0..n {
        s.push_str(SYLLABLES[rng.random_range(0..SYLLABLES.len())]);
    }
    s
}

/// Pick with Zipf-ish skew (weight 1/(rank+1)) from a list.
fn zipf_pick<'a>(rng: &mut StdRng, items: &[&'a str]) -> &'a str {
    let total: f64 = (0..items.len()).map(|i| 1.0 / (i + 1) as f64).sum();
    let mut x = rng.random::<f64>() * total;
    for (i, item) in items.iter().enumerate() {
        x -= 1.0 / (i + 1) as f64;
        if x <= 0.0 {
            return item;
        }
    }
    items[items.len() - 1]
}

/// The bound Figure 3 schema.
pub fn medical_schema() -> Result<ghostdb_catalog::Schema> {
    ghostdb_sql::bind_schema(&ghostdb_sql::parse_statements(MEDICAL_DDL)?)
}

/// Generate the Figure 3 dataset.
///
/// The generated data is deterministic in `cfg.seed` and respects the
/// selectivity knobs exactly in expectation (each visit is Sclerosis with
/// probability `sclerosis_fraction`, independently).
pub fn generate_medical(cfg: &MedicalConfig) -> Result<Dataset> {
    if cfg.prescriptions == 0 {
        return Err(GhostError::catalog("prescriptions must be > 0"));
    }
    let schema = medical_schema()?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut data = Dataset::empty(&schema);
    let doctor = schema.resolve_table("Doctor")?;
    let patient = schema.resolve_table("Patient")?;
    let medicine = schema.resolve_table("Medicine")?;
    let visit = schema.resolve_table("Visit")?;
    let prescription = schema.resolve_table("Prescription")?;

    for i in 0..cfg.doctors as i64 {
        data.push_row(
            doctor,
            vec![
                Value::Int(i),
                Value::Text(name_of(&mut rng, "Dr ")),
                Value::Text(zipf_pick(&mut rng, SPECIALITIES).to_string()),
                Value::Int(rng.random_range(10_000..99_999)),
                Value::Text(zipf_pick(&mut rng, COUNTRIES).to_string()),
            ],
        )?;
    }
    for i in 0..cfg.patients() as i64 {
        data.push_row(
            patient,
            vec![
                Value::Int(i),
                Value::Text(name_of(&mut rng, "")),
                Value::Int(rng.random_range(18..95)),
                Value::Int(rng.random_range(15..45)),
                Value::Text(zipf_pick(&mut rng, COUNTRIES).to_string()),
            ],
        )?;
    }
    for i in 0..cfg.medicines as i64 {
        let ty = if rng.random::<f64>() < cfg.antibiotic_fraction {
            "Antibiotic".to_string()
        } else {
            zipf_pick(&mut rng, TYPES).to_string()
        };
        data.push_row(
            medicine,
            vec![
                Value::Int(i),
                Value::Text(name_of(&mut rng, "")),
                Value::Text(zipf_pick(&mut rng, EFFECTS).to_string()),
                Value::Text(ty),
            ],
        )?;
    }
    let n_visits = cfg.visits();
    for i in 0..n_visits as i64 {
        let purpose = if rng.random::<f64>() < cfg.sclerosis_fraction {
            "Sclerosis".to_string()
        } else {
            zipf_pick(&mut rng, PURPOSES).to_string()
        };
        let day = cfg.date_start.0 + rng.random_range(0..cfg.date_span_days as i32);
        data.push_row(
            visit,
            vec![
                Value::Int(i),
                Value::Date(Date(day)),
                Value::Text(purpose),
                Value::Int(rng.random_range(0..cfg.doctors as i64)),
                Value::Int(rng.random_range(0..cfg.patients() as i64)),
            ],
        )?;
    }
    for i in 0..cfg.prescriptions as i64 {
        let vis_id = rng.random_range(0..n_visits as i64);
        let written = cfg.date_start.0 + rng.random_range(0..cfg.date_span_days as i32);
        data.push_row(
            prescription,
            vec![
                Value::Int(i),
                Value::Int(rng.random_range(1..10)),
                Value::Int(rng.random_range(1..5)),
                Value::Date(Date(written)),
                Value::Int(rng.random_range(0..cfg.medicines as i64)),
                Value::Int(vis_id),
            ],
        )?;
    }
    data.validate(&schema)?;
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_catalog::TreeSchema;

    #[test]
    fn schema_matches_figure3() {
        let s = medical_schema().unwrap();
        assert_eq!(s.table_count(), 5);
        let tree = TreeSchema::analyze(&s).unwrap();
        assert_eq!(tree.root(), s.resolve_table("Prescription").unwrap());
        // Hidden set per Figure 3: Patient.Name, Patient.BodyMassIndex,
        // Visit.Purpose, Visit.DocID, Visit.PatID, Pre.Quantity,
        // Pre.WhenWritten, Pre.MedID, Pre.VisID.
        assert_eq!(s.hidden_columns().len(), 9);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = MedicalConfig::scaled(500);
        let a = generate_medical(&cfg).unwrap();
        let b = generate_medical(&cfg).unwrap();
        assert_eq!(a, b);
        let c = generate_medical(&cfg.clone().with_seed(7)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn cardinalities_match_config() {
        let cfg = MedicalConfig::scaled(1000);
        let d = generate_medical(&cfg).unwrap();
        let s = medical_schema().unwrap();
        assert_eq!(d.row_count(s.resolve_table("Prescription").unwrap()), 1000);
        assert_eq!(d.row_count(s.resolve_table("Visit").unwrap()), 250);
        assert_eq!(d.row_count(s.resolve_table("Patient").unwrap()), 50);
    }

    #[test]
    fn selectivity_knobs_hold_in_expectation() {
        let mut cfg = MedicalConfig::scaled(20_000);
        cfg.sclerosis_fraction = 0.2;
        let d = generate_medical(&cfg).unwrap();
        let s = medical_schema().unwrap();
        let vis = s.resolve_table("Visit").unwrap();
        let n = d.row_count(vis);
        let hits = (0..n)
            .filter(|&i| {
                d.value(vis, 2, ghostdb_types::RowId(i as u32)).as_text() == Some("Sclerosis")
            })
            .count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.04, "observed {frac}");
    }

    #[test]
    fn zero_rows_rejected() {
        let mut cfg = MedicalConfig::small();
        cfg.prescriptions = 0;
        assert!(generate_medical(&cfg).is_err());
    }
}
