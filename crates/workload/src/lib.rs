//! Synthetic workloads: the demo's medical dataset, a second retail
//! schema, parameterized query templates, and a naive reference engine.
//!
//! Paper §5: "We use a synthetic dataset compliant with the schema
//! described in Figure 3. The cardinality of the root table
//! (Prescription) is one million tuples." [`MedicalConfig::paper_scale`]
//! reproduces exactly that; smaller scales and explicit selectivity knobs
//! (`sclerosis_fraction`, `antibiotic_fraction`) power the Pre/Post
//! crossover sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod medical;
mod queries;
mod reference;
mod retail;
mod scale;

pub use medical::{generate_medical, medical_schema, MedicalConfig, MEDICAL_DDL};
pub use queries::{game_queries, paper_query, selectivity_query, GameQuery};
pub use reference::reference_execute;
pub use retail::{generate_retail, retail_schema, RetailConfig, RETAIL_DDL};
pub use scale::{
    generate_scale, scale_point_query, scale_row, scale_schema, OpStream, ScaleConfig, ScaleMix,
    ScaleOp, Zipfian, SCALE_DDL,
};
