//! Query templates for the experiments and the plan game.

use ghostdb_types::Date;

/// The §4 example query, verbatim modulo the date literal:
///
/// ```sql
/// SELECT Med.Name, Pre.Quantity, Vis.Date
/// FROM Medicine Med, Prescription Pre, Visit Vis
/// WHERE Vis.Date > 05-11-2006  /*VISIBLE*/
///   AND Vis.Purpose = "Sclerosis" /*HIDDEN*/
///   AND Med.Type = "Antibiotic"  /*VISIBLE*/
///   AND Med.MedID = Pre.MedID
///   AND Vis.VisID = Pre.VisID;
/// ```
pub fn paper_query(date_cutoff: Date) -> String {
    format!(
        "SELECT Med.Name, Pre.Quantity, Vis.Date \
         FROM Medicine Med, Prescription Pre, Visit Vis \
         WHERE Vis.Date > '{date_cutoff}' /*VISIBLE*/ \
           AND Vis.Purpose = 'Sclerosis' /*HIDDEN*/ \
           AND Med.Type = 'Antibiotic'  /*VISIBLE*/ \
           AND Med.MedID = Pre.MedID \
           AND Vis.VisID = Pre.VisID;"
    )
}

/// A two-predicate query whose *visible* selectivity is tunable: the
/// Date cutoff selects roughly `visible_fraction` of visits from a range
/// starting at `date_start` spanning `span_days`. The hidden predicate
/// stays the Sclerosis selection. This drives the Pre/Post crossover
/// sweep (`EXP-D2A`).
pub fn selectivity_query(date_start: Date, span_days: u32, visible_fraction: f64) -> String {
    let frac = visible_fraction.clamp(0.0, 1.0);
    // Date > cutoff selects the top `frac` of the uniform range.
    let offset = ((1.0 - frac) * span_days as f64) as i32;
    let cutoff = Date(date_start.0 + offset);
    // Projections deliberately avoid the predicate column so that the
    // sweep isolates the *filtering* strategies: projecting Vis.Date
    // would force both plans to fetch the same column and mask the
    // Pre/Post asymmetry the experiment measures.
    format!(
        "SELECT Pre.PreID, Pre.Quantity \
         FROM Prescription Pre, Visit Vis \
         WHERE Vis.Date > '{cutoff}' /*VISIBLE*/ \
           AND Vis.Purpose = 'Sclerosis' /*HIDDEN*/ \
           AND Vis.VisID = Pre.VisID;"
    )
}

/// One query of the demo's phase-3 game.
#[derive(Debug, Clone)]
pub struct GameQuery {
    /// Display name.
    pub name: &'static str,
    /// What makes it interesting.
    pub hint: &'static str,
    /// The SQL text.
    pub sql: String,
}

/// The plan-game query set (demo phase 3): five queries with different
/// winning strategies.
pub fn game_queries(date_start: Date, span_days: u32) -> Vec<GameQuery> {
    let mid = Date(date_start.0 + span_days as i32 / 2);
    let late = Date(date_start.0 + (span_days as f64 * 0.95) as i32);
    vec![
        GameQuery {
            name: "Q1-selective-hidden",
            hint: "one very selective hidden predicate: climbing wins",
            sql: "SELECT Pre.PreID FROM Prescription Pre, Visit Vis \
                  WHERE Vis.Purpose = 'Sclerosis' AND Vis.VisID = Pre.VisID;"
                .to_string(),
        },
        GameQuery {
            name: "Q2-unselective-visible",
            hint: "visible predicate matches half the visits: post-filter it",
            sql: format!(
                "SELECT Pre.PreID FROM Prescription Pre, Visit Vis \
                 WHERE Vis.Date > '{mid}' AND Vis.Purpose = 'Sclerosis' \
                   AND Vis.VisID = Pre.VisID;"
            ),
        },
        GameQuery {
            name: "Q3-selective-visible",
            hint: "visible predicate matches 5%: pre-filtering pays off",
            sql: format!(
                "SELECT Pre.PreID FROM Prescription Pre, Visit Vis \
                 WHERE Vis.Date > '{late}' AND Vis.Purpose = 'Sclerosis' \
                   AND Vis.VisID = Pre.VisID;"
            ),
        },
        GameQuery {
            name: "Q4-cross-candidate",
            hint: "two predicates on Visit: cross-filter before translating",
            sql: format!(
                "SELECT Pre.PreID FROM Prescription Pre, Visit Vis \
                 WHERE Vis.Date > '{mid}' AND Vis.Purpose = 'Checkup' \
                   AND Vis.VisID = Pre.VisID;"
            ),
        },
        GameQuery {
            name: "Q5-paper-query",
            hint: "the full §4 example: three predicates, two strategies each",
            sql: paper_query(mid),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_sql::{parse_statements, Statement};

    #[test]
    fn templates_parse() {
        let d = Date::from_ymd(2006, 11, 5).unwrap();
        for sql in [
            paper_query(d),
            selectivity_query(Date::from_ymd(2004, 1, 1).unwrap(), 1000, 0.25),
        ] {
            let stmts = parse_statements(&sql).unwrap();
            assert!(matches!(stmts[0], Statement::Select(_)), "{sql}");
        }
        for q in game_queries(Date::from_ymd(2004, 1, 1).unwrap(), 1000) {
            assert!(parse_statements(&q.sql).is_ok(), "{}", q.sql);
        }
    }

    #[test]
    fn selectivity_cutoff_scales() {
        let start = Date::from_ymd(2004, 1, 1).unwrap();
        let q10 = selectivity_query(start, 1000, 0.10);
        let q90 = selectivity_query(start, 1000, 0.90);
        // Higher fraction => earlier cutoff.
        assert!(q90 < q10 || q90.contains("2004"));
    }
}
