//! A second tree schema (retail) proving the engine is not hard-wired to
//! the demo's medical schema.
//!
//! ```text
//! Region(RegID, Name, Climate)
//! Store(StoreID, City, Margin^H, RegID^H -> Region)
//! Product(ProdID, Name, Cost^H, Category)
//! Sale(SaleID, Day, Amount^H, StoreID^H -> Store, ProdID^H -> Product)
//! ```
//!
//! Root = Sale; Store has a child (Region), so the index set gets two
//! SKTs — structurally different from the medical tree (three levels on
//! one branch, two on the other).

use ghostdb_storage::Dataset;
use ghostdb_types::{Date, GhostError, Result, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Retail schema DDL.
pub const RETAIL_DDL: &str = "\
CREATE TABLE Region (
  RegID INTEGER PRIMARY KEY,
  Name CHAR(16),
  Climate CHAR(16));
CREATE TABLE Store (
  StoreID INTEGER PRIMARY KEY,
  City CHAR(20),
  Margin INTEGER HIDDEN,
  RegID REFERENCES Region(RegID) HIDDEN);
CREATE TABLE Product (
  ProdID INTEGER PRIMARY KEY,
  Name CHAR(24),
  Cost INTEGER HIDDEN,
  Category CHAR(16));
CREATE TABLE Sale (
  SaleID INTEGER PRIMARY KEY,
  Day DATE,
  Amount INTEGER HIDDEN,
  StoreID REFERENCES Store(StoreID) HIDDEN,
  ProdID REFERENCES Product(ProdID) HIDDEN);";

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct RetailConfig {
    /// Root (Sale) cardinality.
    pub sales: usize,
    /// Number of stores.
    pub stores: usize,
    /// Number of products.
    pub products: usize,
    /// Number of regions.
    pub regions: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl RetailConfig {
    /// Proportional scaling.
    pub fn scaled(sales: usize) -> RetailConfig {
        RetailConfig {
            sales,
            stores: (sales / 200).max(3),
            products: (sales / 100).clamp(5, 5000),
            regions: 8,
            seed: 0xBADC_0FFE,
        }
    }
}

const CITIES: &[&str] = &[
    "Paris", "Madrid", "Rome", "Vienna", "Lisbon", "Athens", "Oslo", "Dublin", "Prague",
];
const CLIMATES: &[&str] = &["Oceanic", "Continental", "Mediterranean", "Alpine"];
const CATEGORIES: &[&str] = &["Grocery", "Apparel", "Garden", "Toys", "Media", "Tools"];

/// The bound retail schema.
pub fn retail_schema() -> Result<ghostdb_catalog::Schema> {
    ghostdb_sql::bind_schema(&ghostdb_sql::parse_statements(RETAIL_DDL)?)
}

/// Generate a retail dataset.
pub fn generate_retail(cfg: &RetailConfig) -> Result<Dataset> {
    if cfg.sales == 0 {
        return Err(GhostError::catalog("sales must be > 0"));
    }
    let schema = retail_schema()?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut data = Dataset::empty(&schema);
    let region = schema.resolve_table("Region")?;
    let store = schema.resolve_table("Store")?;
    let product = schema.resolve_table("Product")?;
    let sale = schema.resolve_table("Sale")?;
    let day0 = Date::from_ymd(2006, 1, 1)?;

    for i in 0..cfg.regions as i64 {
        data.push_row(
            region,
            vec![
                Value::Int(i),
                Value::Text(format!("Region{i}")),
                Value::Text(CLIMATES[rng.random_range(0..CLIMATES.len())].to_string()),
            ],
        )?;
    }
    for i in 0..cfg.stores as i64 {
        data.push_row(
            store,
            vec![
                Value::Int(i),
                Value::Text(CITIES[rng.random_range(0..CITIES.len())].to_string()),
                Value::Int(rng.random_range(5..40)),
                Value::Int(rng.random_range(0..cfg.regions as i64)),
            ],
        )?;
    }
    for i in 0..cfg.products as i64 {
        data.push_row(
            product,
            vec![
                Value::Int(i),
                Value::Text(format!("prod-{i}")),
                Value::Int(rng.random_range(1..500)),
                Value::Text(CATEGORIES[rng.random_range(0..CATEGORIES.len())].to_string()),
            ],
        )?;
    }
    for i in 0..cfg.sales as i64 {
        data.push_row(
            sale,
            vec![
                Value::Int(i),
                Value::Date(Date(day0.0 + rng.random_range(0..365))),
                Value::Int(rng.random_range(1..1000)),
                Value::Int(rng.random_range(0..cfg.stores as i64)),
                Value::Int(rng.random_range(0..cfg.products as i64)),
            ],
        )?;
    }
    data.validate(&schema)?;
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_catalog::TreeSchema;

    #[test]
    fn retail_tree_has_two_skt_roots() {
        let s = retail_schema().unwrap();
        let tree = TreeSchema::analyze(&s).unwrap();
        assert_eq!(tree.root(), s.resolve_table("Sale").unwrap());
        assert_eq!(tree.skt_roots().len(), 2); // Sale and Store
    }

    #[test]
    fn generates_valid_data() {
        let d = generate_retail(&RetailConfig::scaled(800)).unwrap();
        let s = retail_schema().unwrap();
        assert_eq!(d.row_count(s.resolve_table("Sale").unwrap()), 800);
        assert_eq!(d.row_count(s.resolve_table("Store").unwrap()), 4);
    }
}
