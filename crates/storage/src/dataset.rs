//! The load-time interchange format.
//!
//! A [`Dataset`] is a columnar snapshot of every table's values, indexed
//! by dense row id. It exists only during the secure bulk load (paper §2:
//! the device "is assumed to be initially loaded in a secure setting");
//! afterwards the hidden half lives on device flash and the visible half
//! on the PC.

use ghostdb_catalog::{ColumnRole, Schema};
use ghostdb_types::{GhostError, Result, RowId, TableId, Value};

/// Validate one row of `table` against the schema: arity, value types,
/// `CHAR` capacity, dense primary key (`pk == expected_row`), and
/// foreign keys in range (`row_count_of` answers the current cardinality
/// of each referenced table).
///
/// This is the single row-integrity check of the engine: the secure bulk
/// load ([`Dataset::validate`]) and the post-load `INSERT` path both call
/// it, so the two ingestion paths can never drift apart. Generic over
/// [`Borrow<Value>`](std::borrow::Borrow) so column-major callers can
/// pass `&[&Value]` without cloning cells.
pub fn validate_row<V: std::borrow::Borrow<Value>>(
    schema: &Schema,
    table: TableId,
    expected_row: u64,
    values: &[V],
    row_count_of: &dyn Fn(TableId) -> u64,
) -> Result<()> {
    let tdef = schema.table(table);
    if values.len() != tdef.columns.len() {
        return Err(GhostError::catalog(format!(
            "table {}: row arity {} != column count {}",
            tdef.name,
            values.len(),
            tdef.columns.len()
        )));
    }
    for (cdef, v) in tdef.columns.iter().zip(values) {
        let v: &Value = v.borrow();
        if !cdef.ty.admits(v) {
            return Err(GhostError::catalog(format!(
                "table {} column {} row {expected_row}: {v} does not conform to {}",
                tdef.name, cdef.name, cdef.ty
            )));
        }
        if let ghostdb_types::DataType::Char(cap) = cdef.ty {
            if let Value::Text(s) = v {
                if s.len() > cap as usize {
                    return Err(GhostError::catalog(format!(
                        "table {} column {} row {expected_row}: string exceeds CHAR({cap})",
                        tdef.name, cdef.name
                    )));
                }
            }
        }
        match cdef.role {
            ColumnRole::PrimaryKey => {
                if v.as_int() != Some(expected_row as i64) {
                    return Err(GhostError::catalog(format!(
                        "table {}: primary key not dense at row {expected_row}",
                        tdef.name
                    )));
                }
            }
            ColumnRole::ForeignKey(target) => {
                let limit = row_count_of(target) as i64;
                match v.as_int() {
                    Some(fk) if fk >= 0 && fk < limit => {}
                    other => {
                        return Err(GhostError::catalog(format!(
                            "table {} row {expected_row}: foreign key {:?} out of range \
                             (target {} has {limit} rows)",
                            tdef.name,
                            other,
                            schema.table(target).name
                        )))
                    }
                }
            }
            ColumnRole::Attribute => {}
        }
    }
    Ok(())
}

/// Column-major data for one table.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TableData {
    /// `columns[c][r]` is the value of column `c` in row `r`.
    pub columns: Vec<Vec<Value>>,
}

impl TableData {
    /// Number of rows (taken from the primary-key column).
    pub fn rows(&self) -> usize {
        self.columns.first().map(|c| c.len()).unwrap_or(0)
    }
}

/// Column-major data for a whole schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Per-table data, indexed by [`TableId`].
    pub tables: Vec<TableData>,
}

impl Dataset {
    /// An empty dataset shaped like `schema`.
    pub fn empty(schema: &Schema) -> Dataset {
        Dataset {
            tables: schema
                .tables()
                .iter()
                .map(|t| TableData {
                    columns: vec![Vec::new(); t.columns.len()],
                })
                .collect(),
        }
    }

    /// Append one row (values in declaration order, primary key first).
    ///
    /// The primary key must equal the current row count — row ids are
    /// dense surrogates by construction.
    pub fn push_row(&mut self, table: TableId, values: Vec<Value>) -> Result<()> {
        let t = self
            .tables
            .get_mut(table.index())
            .ok_or_else(|| GhostError::catalog(format!("no such table {table}")))?;
        if values.len() != t.columns.len() {
            return Err(GhostError::catalog(format!(
                "row arity {} != column count {}",
                values.len(),
                t.columns.len()
            )));
        }
        let expect = t.rows() as i64;
        match values.first() {
            Some(Value::Int(pk)) if *pk == expect => {}
            other => {
                return Err(GhostError::catalog(format!(
                    "primary key must be the dense surrogate {expect}, got {other:?}"
                )))
            }
        }
        for (col, v) in t.columns.iter_mut().zip(values) {
            col.push(v);
        }
        Ok(())
    }

    /// Number of rows in `table`.
    pub fn row_count(&self, table: TableId) -> usize {
        self.tables
            .get(table.index())
            .map(|t| t.rows())
            .unwrap_or(0)
    }

    /// One value (panics on out-of-range access — loader-internal API).
    pub fn value(&self, table: TableId, column: usize, row: RowId) -> &Value {
        &self.tables[table.index()].columns[column][row.index()]
    }

    /// Type-check against the schema and verify key integrity: dense
    /// primary keys, foreign keys in range.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        if self.tables.len() != schema.table_count() {
            return Err(GhostError::catalog(format!(
                "dataset has {} tables, schema {}",
                self.tables.len(),
                schema.table_count()
            )));
        }
        for (ti, (tdef, tdata)) in schema.tables().iter().zip(&self.tables).enumerate() {
            if tdata.columns.len() != tdef.columns.len() {
                return Err(GhostError::catalog(format!(
                    "table {}: dataset has {} columns, schema {}",
                    tdef.name,
                    tdata.columns.len(),
                    tdef.columns.len()
                )));
            }
            let rows = tdata.rows();
            for (cdef, cdata) in tdef.columns.iter().zip(&tdata.columns) {
                if cdata.len() != rows {
                    return Err(GhostError::catalog(format!(
                        "table {} column {}: ragged column ({} vs {rows} rows)",
                        tdef.name,
                        cdef.name,
                        cdata.len()
                    )));
                }
            }
            // Per-row integrity through the shared check (the same one
            // the post-load insert path runs).
            let tid = TableId(ti as u16);
            let row_count_of = |target: TableId| self.row_count(target) as u64;
            let mut row_buf: Vec<&Value> = Vec::with_capacity(tdef.columns.len());
            for ri in 0..rows {
                row_buf.clear();
                for cdata in &tdata.columns {
                    row_buf.push(&cdata[ri]);
                }
                validate_row(schema, tid, ri as u64, &row_buf, &row_count_of)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_catalog::{SchemaBuilder, Visibility};
    use ghostdb_types::DataType;

    fn schema() -> Schema {
        let mut b = SchemaBuilder::new();
        b.table("Parent", "pid");
        b.table("Child", "cid")
            .column("note", DataType::Char(5), Visibility::Hidden)
            .foreign_key("pid", "Parent", Visibility::Hidden);
        b.build().unwrap()
    }

    #[test]
    fn push_and_validate() {
        let s = schema();
        let mut d = Dataset::empty(&s);
        d.push_row(TableId(0), vec![Value::Int(0)]).unwrap();
        d.push_row(TableId(0), vec![Value::Int(1)]).unwrap();
        d.push_row(
            TableId(1),
            vec![Value::Int(0), Value::Text("hi".into()), Value::Int(1)],
        )
        .unwrap();
        d.validate(&s).unwrap();
        assert_eq!(d.row_count(TableId(0)), 2);
        assert_eq!(d.value(TableId(1), 1, RowId(0)), &Value::Text("hi".into()));
    }

    #[test]
    fn dense_pk_enforced() {
        let s = schema();
        let mut d = Dataset::empty(&s);
        assert!(d.push_row(TableId(0), vec![Value::Int(5)]).is_err());
        d.push_row(TableId(0), vec![Value::Int(0)]).unwrap();
        assert!(d.push_row(TableId(0), vec![Value::Int(0)]).is_err());
    }

    #[test]
    fn fk_range_checked() {
        let s = schema();
        let mut d = Dataset::empty(&s);
        d.push_row(TableId(0), vec![Value::Int(0)]).unwrap();
        d.push_row(
            TableId(1),
            vec![Value::Int(0), Value::Text("x".into()), Value::Int(3)],
        )
        .unwrap();
        let err = d.validate(&s).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn type_mismatch_rejected() {
        let s = schema();
        let mut d = Dataset::empty(&s);
        d.push_row(TableId(0), vec![Value::Int(0)]).unwrap();
        d.push_row(
            TableId(1),
            vec![Value::Int(0), Value::Int(9), Value::Int(0)],
        )
        .unwrap();
        assert!(d.validate(&s).is_err());
    }

    #[test]
    fn char_capacity_enforced() {
        let s = schema();
        let mut d = Dataset::empty(&s);
        d.push_row(TableId(0), vec![Value::Int(0)]).unwrap();
        d.push_row(
            TableId(1),
            vec![Value::Int(0), Value::Text("toolong".into()), Value::Int(0)],
        )
        .unwrap();
        let err = d.validate(&s).unwrap_err();
        assert!(err.to_string().contains("CHAR(5)"));
    }

    #[test]
    fn arity_checked_on_push() {
        let s = schema();
        let mut d = Dataset::empty(&s);
        assert!(d.push_row(TableId(0), vec![]).is_err());
        assert!(d
            .push_row(TableId(1), vec![Value::Int(0), Value::Int(1)])
            .is_err());
    }
}
