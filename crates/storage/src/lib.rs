//! Split storage: hidden columns on the device's flash, visible columns
//! on the untrusted PC.
//!
//! Paper §2: "Primary keys as well as visible fields can be stored at any
//! place, like a public server or a personal computer... The hidden
//! fields are hosted by Bob's USB device... The primary keys of all
//! tables are replicated in the USB device to allow for queries combining
//! visible and hidden data. The USB device is assumed to be initially
//! loaded in a secure setting."
//!
//! * [`Dataset`] is the load-time interchange format (also consumed by
//!   the index builders in `ghostdb-index`).
//! * [`HiddenStore`] keeps hidden columns on flash: integers and dates as
//!   8-byte order-preserving keys (direct row-id addressing), strings
//!   dictionary-encoded into order-preserving 4-byte codes with the
//!   dictionary itself on flash — hidden values must never sit in PC RAM,
//!   and the device has only tens of KB, so even the dictionary is
//!   probed by on-flash binary search.
//! * [`VisibleStore`] is the PC side: plain in-memory columns, predicate
//!   evaluation, and sorted `(row id, value)` streams for the projection
//!   protocol. The PC is resource-rich, which is exactly why GhostDB
//!   "delegates as much work as possible to the PC as long as this
//!   processing does not compromise hidden data" (§3).
//! * [`split_dataset`] performs the secure bulk load.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod hidden;
mod visible;

pub use dataset::{validate_row, Dataset, TableData};
pub use hidden::{
    key_range_for, ColumnManifest, DictRemap, FilterScan, FlushRemaps, HiddenManifest, HiddenStore,
    KeyRange, KeyScan, LoadEncoders, TableManifest,
};
pub use visible::VisibleStore;

use ghostdb_catalog::{ColumnStats, Schema, SchemaStats, TableStats};
use ghostdb_flash::Volume;
use ghostdb_ram::RamScope;
use ghostdb_types::Result;

/// Number of histogram buckets collected per column at load time.
pub const STATS_BUCKETS: usize = 64;

/// The secure bulk load: split a dataset into the device-resident hidden
/// store and the PC-resident visible store, collecting the statistics the
/// optimizer uses.
///
/// Statistics for *hidden* columns are collected here — inside the secure
/// setting — and live on the device; they are never disclosed (they only
/// influence plan choice, which the paper accepts as observable).
pub fn split_dataset(
    volume: &Volume,
    scope: &RamScope,
    schema: &Schema,
    data: &Dataset,
) -> Result<(HiddenStore, VisibleStore, SchemaStats, LoadEncoders)> {
    data.validate(schema)?;
    let (hidden, encoders) = HiddenStore::build(volume, scope, schema, data)?;
    let visible = VisibleStore::build(schema, data)?;
    let mut stats = SchemaStats::empty(schema.table_count());
    for (ti, table) in schema.tables().iter().enumerate() {
        let tdata = &data.tables[ti];
        let mut cols = Vec::with_capacity(table.columns.len());
        for ci in 0..table.columns.len() {
            cols.push(Some(ColumnStats::build(&tdata.columns[ci], STATS_BUCKETS)));
        }
        stats.tables[ti] = TableStats {
            rows: tdata.rows() as u64,
            columns: cols,
        };
    }
    Ok((hidden, visible, stats, encoders))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_catalog::{SchemaBuilder, Visibility};
    use ghostdb_flash::Nand;
    use ghostdb_ram::RamBudget;
    use ghostdb_types::{DataType, FlashConfig, ScalarOp, SimClock, TableId, Value};

    fn tiny_schema() -> Schema {
        let mut b = SchemaBuilder::new();
        b.table("Patient", "PatID")
            .column("Age", DataType::Integer, Visibility::Visible)
            .column("Name", DataType::Char(20), Visibility::Hidden);
        b.build().unwrap()
    }

    fn tiny_data(schema: &Schema) -> Dataset {
        let mut d = Dataset::empty(schema);
        for i in 0..10i64 {
            d.push_row(
                TableId(0),
                vec![
                    Value::Int(i),
                    Value::Int(20 + i),
                    Value::Text(format!("name{i}")),
                ],
            )
            .unwrap();
        }
        d
    }

    #[test]
    fn split_load_roundtrip() {
        let schema = tiny_schema();
        let data = tiny_data(&schema);
        let clock = SimClock::new();
        let cfg = FlashConfig {
            page_size: 256,
            pages_per_block: 8,
            num_blocks: 256,
            ..FlashConfig::default_2007()
        };
        let volume = Volume::new(Nand::new(cfg, clock));
        let scope = RamScope::new(&RamBudget::new(64 * 1024));
        let (hidden, visible, stats, _encoders) =
            split_dataset(&volume, &scope, &schema, &data).unwrap();

        // Hidden values come back from flash.
        let v = hidden
            .value(
                &scope,
                TableId(0),
                ghostdb_types::ColumnId(2),
                ghostdb_types::RowId(3),
            )
            .unwrap();
        assert_eq!(v, Value::Text("name3".into()));

        // Visible predicate evaluation on the PC.
        let ids = visible
            .eval_predicate(
                TableId(0),
                ghostdb_types::ColumnId(1),
                ScalarOp::Ge,
                &Value::Int(25),
            )
            .unwrap();
        assert_eq!(ids.len(), 5);

        // Stats got collected for both sides.
        assert_eq!(stats.rows(TableId(0)), 10);
        assert!(stats
            .column(ghostdb_catalog::ColumnRef {
                table: TableId(0),
                column: ghostdb_types::ColumnId(2),
            })
            .is_some());
    }
}
