//! The device-resident hidden column store.
//!
//! Layouts (all on flash, all direct-addressed by dense row id):
//!
//! * `INTEGER` / `DATE` columns: 8-byte **order-preserving keys**
//!   ([`Value::order_key`]) at byte offset `row * 8`.
//! * `CHAR(n)` columns: an **order-preserving dictionary** (strings sorted
//!   lexicographically; code = rank) plus a codes segment with a 4-byte
//!   code at `row * 4`. The dictionary itself lives on flash — offsets
//!   segment (`u32` start offsets, one extra for the end) and a bytes
//!   segment — and is probed by on-flash binary search, because hidden
//!   values may not be cached in spyable host memory and the chip's RAM
//!   cannot hold a megabyte dictionary anyway.
//!
//! Every predicate over a hidden column reduces to a [`KeyRange`] over
//! this key space; the climbing indexes in `ghostdb-index` use the same
//! reduction, so scans and index probes are interchangeable plan
//! alternatives.
//!
//! Column segments are the volume's *long-lived* residents: they are
//! written at load (and rebuilt by delta flushes) and then interleave
//! with every query's temp spills. All access goes through
//! [`Volume::read_at`]/[`SegmentReader`] logical pages, so the flash
//! garbage collector is free to migrate a column's pages when compacting
//! the blocks around them — the store never sees physical addresses.
//!
//! # The post-load write path (LSM-style deltas + liveness)
//!
//! Since PR 3 the store is **mutable after load**: [`HiddenStore::append_row`]
//! accepts new rows whose hidden halves accumulate in a RAM-resident
//! **delta** on top of the immutable flash base. Reads union the two:
//! row ids below [`HiddenStore::base_rows`] resolve on flash, ids at or
//! above it resolve in the delta. `CHAR` columns pose the one wrinkle —
//! the base dictionary's rank encoding cannot absorb a new string in
//! place — so each dict column keeps a **delta dictionary** of unseen
//! strings (codes `entries + i`, identity-only, *not* order-preserving)
//! and predicates over delta rows are evaluated on the **values**
//! directly ([`HiddenStore::matches_at`], [`HiddenStore::predicate_scan`])
//! rather than through the base key space.
//!
//! PR 5 generalized the layer from "base + appended delta" to
//! **base + delta + liveness**:
//!
//! * every table carries a tombstone [`LiveSet`] over its *physical* id
//!   space — a `DELETE` flips bits, nothing moves on flash. The dense,
//!   user-visible primary keys are the **logical** (live-rank) view of
//!   that bitmap: [`HiddenStore::live_rank`]/[`HiddenStore::select_live`]
//!   translate at the engine's boundaries, and are the identity while
//!   nothing is dead;
//! * an `UPDATE` of a flash-resident row lands in a per-column
//!   **overwrite overlay** ([`HiddenStore::update_cell`]) consulted by
//!   every read and scan before the segment bytes; overlay values of
//!   dict columns route through the same delta dictionary as inserts,
//!   and predicates over them are evaluated value-exact;
//! * [`HiddenStore::flush`] merges everything into rebuilt flash
//!   segments: delta rows append, overlays merge in place, **dead rows
//!   are physically dropped** with survivors renumbered dense (foreign
//!   keys re-pointed through the referenced table's remap), and dict
//!   columns re-rank. The [`FlushRemaps`] it returns — dictionary code
//!   maps plus per-table id maps — drive the index rebuild and the PC's
//!   mirror compaction in the same maintenance pass; the freed segments
//!   (the dead rows' bytes) go to PR 2's garbage collector.

use std::collections::{BTreeMap, HashMap};

use ghostdb_catalog::{ColumnRole, Predicate, Schema};
use ghostdb_flash::{Segment, SegmentManifest, SegmentReader, Volume};
use ghostdb_ram::RamScope;
use ghostdb_types::{
    ColumnId, DataType, GhostError, LiveSet, Result, RowId, ScalarOp, TableId, Value, Wire,
};

use crate::dataset::Dataset;

/// Inclusive range of order keys matched by a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyRange {
    /// Smallest matching key.
    pub lo: u64,
    /// Largest matching key.
    pub hi: u64,
}

impl KeyRange {
    /// Membership test.
    #[inline]
    pub fn contains(&self, k: u64) -> bool {
        self.lo <= k && k <= self.hi
    }
}

/// Translate `op` + an exact key into a key range over a dense-ordered
/// key space (`None` = provably empty).
pub fn key_range_for(op: ScalarOp, key: u64, key_max: u64) -> Option<KeyRange> {
    match op {
        ScalarOp::Eq => Some(KeyRange { lo: key, hi: key }),
        ScalarOp::Lt => key.checked_sub(1).map(|hi| KeyRange { lo: 0, hi }),
        ScalarOp::Le => Some(KeyRange { lo: 0, hi: key }),
        ScalarOp::Gt => {
            if key >= key_max {
                None
            } else {
                Some(KeyRange {
                    lo: key + 1,
                    hi: key_max,
                })
            }
        }
        ScalarOp::Ge => Some(KeyRange {
            lo: key,
            hi: key_max,
        }),
    }
}

#[derive(Debug, Clone)]
enum ColumnStore {
    /// 8-byte order keys; decodes through `ty`.
    Fixed { ty: DataType, keys: Segment },
    /// Dictionary-coded text: 4-byte codes + on-flash dictionary.
    Dict {
        codes: Segment,
        offsets: Segment,
        bytes: Segment,
        entries: u32,
    },
}

#[derive(Debug, Clone)]
struct TableStore {
    rows: u32,
    /// Indexed by column id; `None` for visible columns (stored on the PC).
    columns: Vec<Option<ColumnStore>>,
}

/// RAM-resident appended values of one hidden column (rows
/// `base_rows..base_rows + values.len()`).
#[derive(Debug, Default, Clone)]
struct ColumnDelta {
    values: Vec<Value>,
    /// Dict columns only: appended strings absent from the base
    /// dictionary, in first-appearance order. Delta code = base
    /// `entries` + position — an identity code, **not** order-preserving
    /// relative to the base ranks.
    new_strings: Vec<String>,
}

/// Per-table delta: appended row count plus per-column value tails.
#[derive(Debug, Default, Clone)]
struct TableDelta {
    rows: u32,
    /// Parallel to the table's columns; empty vecs for visible columns.
    columns: Vec<ColumnDelta>,
    /// Value-rewrite overlays of **base** rows, per column (`UPDATE`s of
    /// rows already merged to flash; delta rows are rewritten in place).
    /// The overlay value is authoritative until the next flush rewrites
    /// the segment.
    overwrites: Vec<BTreeMap<u32, Value>>,
}

impl TableDelta {
    fn empty(columns: usize) -> TableDelta {
        TableDelta {
            rows: 0,
            columns: vec![ColumnDelta::default(); columns],
            overwrites: vec![BTreeMap::new(); columns],
        }
    }
}

/// Old→new code remap of one dict column after a flush rebuilt its
/// dictionary: `map[old_base_code] = new_code`, plus the new code of
/// every delta string. Index flushes use this to re-key directories.
#[derive(Debug, Clone)]
pub struct DictRemap {
    /// Table owning the rebuilt column.
    pub table: TableId,
    /// The rebuilt column.
    pub column: ColumnId,
    /// `map[old_code] = new_code` for the base dictionary's codes.
    pub map: Vec<u32>,
}

/// In-memory value→key encoders, alive only during the secure bulk load
/// so the index builders can encode values without flash binary searches.
#[derive(Debug, Default)]
pub struct LoadEncoders {
    /// `dicts[table][column]` maps text → code for dictionary columns.
    dicts: HashMap<(u16, u16), HashMap<String, u32>>,
}

impl LoadEncoders {
    /// Order key of `value` in the given column's key space.
    pub fn key_of(&self, table: TableId, column: ColumnId, value: &Value) -> Result<u64> {
        if let Some(dict) = self.dicts.get(&(table.0, column.0)) {
            let s = value
                .as_text()
                .ok_or_else(|| GhostError::value("dict column expects text"))?;
            dict.get(s).map(|&c| c as u64).ok_or_else(|| {
                GhostError::corrupt(format!("value {s:?} missing from load dictionary"))
            })
        } else {
            value
                .order_key()
                .ok_or_else(|| GhostError::value("text value on a fixed-key column"))
        }
    }
}

/// Remaps a delta flush reports to the index layer: dictionary code
/// remaps of rebuilt `CHAR` columns plus, when rows died, the per-table
/// physical-id remap of the compaction (dead rows dropped, survivors
/// renumbered dense).
#[derive(Debug, Default)]
pub struct FlushRemaps {
    /// Old→new code maps of rebuilt dictionaries.
    pub dicts: Vec<DictRemap>,
    /// Per table (index = table id): `Some(map)` when the flush
    /// compacted it — `map[old_physical] = new id`, `u32::MAX` for dead
    /// rows; `None` when ids were unchanged (identity).
    pub ids: Vec<Option<Vec<u32>>>,
}

impl FlushRemaps {
    /// Map one physical id of `table` through the compaction: `None`
    /// for dead rows, the (possibly identical) new id otherwise.
    pub fn map_id(&self, table: TableId, id: u32) -> Option<u32> {
        match self.ids.get(table.index()).and_then(|m| m.as_ref()) {
            None => Some(id),
            Some(m) => match m.get(id as usize) {
                Some(&n) if n != u32::MAX => Some(n),
                _ => None,
            },
        }
    }

    /// Did the flush renumber any table?
    pub fn any_compaction(&self) -> bool {
        self.ids.iter().any(|m| m.is_some())
    }
}

/// The hidden half of the database: an immutable flash base per column
/// plus a RAM-resident delta of post-load appends, a tombstone
/// [`LiveSet`] per table, and value-rewrite overlays for updated rows.
///
/// `Clone` produces a read-coherent frozen copy for snapshot sessions:
/// the flash bases are shared (`Segment` page lists are `Arc`ed, and
/// the volume handle points at the same part), while the RAM-resident
/// deltas, overlays, and tombstone sets — all bounded by the flush
/// threshold — are copied, so later writer mutations never show
/// through.
#[derive(Debug, Clone)]
pub struct HiddenStore {
    volume: Volume,
    tables: Vec<TableStore>,
    /// Post-load appends + overwrite overlays, parallel to `tables`.
    deltas: Vec<TableDelta>,
    /// Per-table liveness over the physical id space (base + delta).
    live: Vec<LiveSet>,
}

impl HiddenStore {
    /// Bulk-load the hidden columns of `data` onto `volume` (secure
    /// setting). Returns the store and transient [`LoadEncoders`] for the
    /// index builders.
    pub fn build(
        volume: &Volume,
        scope: &RamScope,
        schema: &Schema,
        data: &Dataset,
    ) -> Result<(HiddenStore, LoadEncoders)> {
        let mut tables = Vec::with_capacity(schema.table_count());
        let mut encoders = LoadEncoders::default();
        for (ti, tdef) in schema.tables().iter().enumerate() {
            let tdata = &data.tables[ti];
            let mut columns = Vec::with_capacity(tdef.columns.len());
            for (ci, cdef) in tdef.columns.iter().enumerate() {
                if !cdef.visibility.is_hidden() {
                    columns.push(None);
                    continue;
                }
                let values = &tdata.columns[ci];
                let store = match cdef.ty {
                    DataType::Integer | DataType::Date => {
                        let mut w = volume.writer(scope)?;
                        for v in values {
                            let key = v.order_key().ok_or_else(|| {
                                GhostError::corrupt("non-numeric value in fixed column")
                            })?;
                            w.write(&key.to_le_bytes())?;
                        }
                        ColumnStore::Fixed {
                            ty: cdef.ty,
                            keys: w.finish()?,
                        }
                    }
                    DataType::Char(_) => {
                        // Order-preserving dictionary.
                        let mut uniq: Vec<&str> =
                            values.iter().filter_map(|v| v.as_text()).collect();
                        if uniq.len() != values.len() {
                            return Err(GhostError::corrupt("non-text value in CHAR column"));
                        }
                        uniq.sort_unstable();
                        uniq.dedup();
                        let code_of: HashMap<String, u32> = uniq
                            .iter()
                            .enumerate()
                            .map(|(i, s)| (s.to_string(), i as u32))
                            .collect();
                        let mut offsets = volume.writer(scope)?;
                        let mut bytes = volume.writer(scope)?;
                        let mut off = 0u32;
                        for s in &uniq {
                            offsets.write(&off.to_le_bytes())?;
                            bytes.write(s.as_bytes())?;
                            off += s.len() as u32;
                        }
                        offsets.write(&off.to_le_bytes())?;
                        let mut codes = volume.writer(scope)?;
                        for v in values {
                            let code = code_of[v.as_text().expect("checked text")];
                            codes.write(&code.to_le_bytes())?;
                        }
                        encoders.dicts.insert((ti as u16, ci as u16), code_of);
                        ColumnStore::Dict {
                            codes: codes.finish()?,
                            offsets: offsets.finish()?,
                            bytes: bytes.finish()?,
                            entries: uniq.len() as u32,
                        }
                    }
                };
                columns.push(Some(store));
            }
            tables.push(TableStore {
                rows: tdata.rows() as u32,
                columns,
            });
        }
        let deltas = tables
            .iter()
            .map(|t| TableDelta::empty(t.columns.len()))
            .collect();
        let live = tables.iter().map(|t| LiveSet::new_full(t.rows)).collect();
        Ok((
            HiddenStore {
                volume: volume.clone(),
                tables,
                deltas,
                live,
            },
            encoders,
        ))
    }

    /// Number of rows in `table`, **including** un-flushed delta rows
    /// (the replicated primary keys are dense, so the count is the whole
    /// key set).
    pub fn row_count(&self, table: TableId) -> u32 {
        self.base_rows(table) + self.delta_rows(table)
    }

    /// Rows resident in the flash base (row ids below this resolve on
    /// flash, ids at or above it in the RAM delta).
    pub fn base_rows(&self, table: TableId) -> u32 {
        self.tables.get(table.index()).map(|t| t.rows).unwrap_or(0)
    }

    /// Un-flushed delta rows of `table`.
    pub fn delta_rows(&self, table: TableId) -> u32 {
        self.deltas.get(table.index()).map(|d| d.rows).unwrap_or(0)
    }

    /// Un-flushed delta rows summed over every table (the flush-trigger
    /// metric).
    pub fn total_delta_rows(&self) -> u64 {
        self.deltas.iter().map(|d| d.rows as u64).sum()
    }

    /// Un-flushed mutations of every kind: appended delta rows, resident
    /// tombstones, and overwritten base cells. This is what the
    /// auto-flush threshold compares against — a delete-heavy workload
    /// must trigger compaction just like an insert-heavy one.
    pub fn total_pending_mutations(&self) -> u64 {
        let dead: u64 = self.live.iter().map(|l| l.dead_count() as u64).sum();
        let over: u64 = self
            .deltas
            .iter()
            .flat_map(|d| d.overwrites.iter())
            .map(|m| m.len() as u64)
            .sum();
        self.total_delta_rows() + dead + over
    }

    /// The liveness set of `table` (physical id space, base + delta).
    pub fn liveness(&self, table: TableId) -> &LiveSet {
        &self.live[table.index()]
    }

    /// **Live** rows of `table` — the user-visible cardinality, and the
    /// logical primary-key domain.
    pub fn live_count(&self, table: TableId) -> u32 {
        self.live
            .get(table.index())
            .map(|l| l.live_count())
            .unwrap_or(0)
    }

    /// Is physical row `row` of `table` live?
    pub fn is_live(&self, table: TableId, row: RowId) -> bool {
        self.live
            .get(table.index())
            .map(|l| l.is_live(row.0))
            .unwrap_or(false)
    }

    /// Logical (dense, user-visible) id of a live physical row.
    pub fn live_rank(&self, table: TableId, row: RowId) -> u32 {
        self.live[table.index()].rank(row.0)
    }

    /// Physical row behind logical id `rank`.
    pub fn select_live(&self, table: TableId, rank: u32) -> Result<RowId> {
        self.live[table.index()].select(rank).map(RowId)
    }

    /// Mark physical rows of `table` dead. The caller (the engine's
    /// `delete_rows`) has already validated liveness and referential
    /// integrity; this only flips the tombstone bits.
    pub fn delete_rows_physical(&mut self, table: TableId, rows: &[u32]) -> Result<()> {
        self.live[table.index()].kill_many(rows)
    }

    /// Rewrite a **predicate** from the logical id space the user writes
    /// (dense primary keys over live rows) into the physical id space
    /// stored on flash and the PC. Attribute predicates pass through;
    /// PK/FK predicates translate their constant through the target
    /// table's rank/select map, which is strictly monotone on live rows,
    /// so every comparison operator is preserved. Identity while nothing
    /// is deleted.
    pub fn physical_predicate(&self, schema: &Schema, p: &Predicate) -> Predicate {
        let target = match schema.column_def(p.column).role {
            ColumnRole::PrimaryKey => p.column.table,
            ColumnRole::ForeignKey(t) => t,
            ColumnRole::Attribute => return p.clone(),
        };
        let live = &self.live[target.index()];
        let Value::Int(v) = p.value else {
            return p.clone();
        };
        if live.all_live() {
            return p.clone();
        }
        // Monotone embedding of the logical line into the physical one:
        // negatives stay below every id, live logicals map exactly, and
        // logicals past the live count map past the physical universe.
        let phys = if v < 0 {
            v
        } else if (v as u64) < live.live_count() as u64 {
            live.select(v as u32).expect("in range") as i64
        } else {
            live.universe() as i64 + (v - live.live_count() as i64)
        };
        Predicate {
            column: p.column,
            op: p.op,
            value: Value::Int(phys),
        }
    }

    /// Overwrite one hidden cell (the storage half of `UPDATE`). `row`
    /// is physical and must be live; the column must be hidden (visible
    /// cells are rewritten on the PC). Returns `true` when a `CHAR`
    /// value outside every known dictionary was minted (the catalog's
    /// incremental distinct signal).
    pub fn update_cell(
        &mut self,
        table: TableId,
        column: ColumnId,
        row: RowId,
        value: &Value,
    ) -> Result<bool> {
        let store = self.store(table, column)?;
        // Dict columns: register strings no dictionary has seen yet, so
        // overlay/delta keys stay resolvable (identity codes) and the
        // next flush absorbs them into the rebuilt dictionary.
        let mut minted = false;
        if let ColumnStore::Dict {
            offsets,
            bytes,
            entries,
            ..
        } = store
        {
            let s = value
                .as_text()
                .ok_or_else(|| GhostError::corrupt("non-text value in CHAR column"))?;
            let (offsets, bytes, entries) = (offsets.clone(), bytes.clone(), *entries);
            let in_base = entries > 0 && self.dict_lower_bound(&offsets, &bytes, entries, s)?.1;
            let delta = &mut self.deltas[table.index()].columns[column.index()];
            if !in_base && !delta.new_strings.iter().any(|d| d == s) {
                delta.new_strings.push(s.to_string());
                minted = true;
            }
        }
        let base = self.base_rows(table);
        if row.0 >= base {
            let slot = self.deltas[table.index()].columns[column.index()]
                .values
                .get_mut((row.0 - base) as usize)
                .ok_or_else(|| GhostError::exec(format!("row {row} out of range for {table}")))?;
            *slot = value.clone();
        } else {
            self.deltas[table.index()].overwrites[column.index()].insert(row.0, value.clone());
        }
        Ok(minted)
    }

    /// The overlay value of a base cell, if it was overwritten.
    fn overlay(&self, table: TableId, column: ColumnId, row: RowId) -> Option<&Value> {
        self.deltas
            .get(table.index())
            .and_then(|d| d.overwrites.get(column.index()))
            .and_then(|m| m.get(&row.0))
    }

    /// Order key of an arbitrary value in the column's *current* key
    /// space: fixed columns use the order key, dict columns resolve to a
    /// base rank or a delta-dictionary identity code (`entries + i`).
    fn key_of_value(&self, table: TableId, column: ColumnId, v: &Value) -> Result<u64> {
        match self.store(table, column)? {
            ColumnStore::Fixed { .. } => v
                .order_key()
                .ok_or_else(|| GhostError::corrupt("non-numeric value in fixed column")),
            ColumnStore::Dict {
                offsets,
                bytes,
                entries,
                ..
            } => {
                let s = v
                    .as_text()
                    .ok_or_else(|| GhostError::corrupt("non-text value in CHAR column"))?;
                let n = *entries;
                if n > 0 {
                    let (code, exact) = self.dict_lower_bound(offsets, bytes, n, s)?;
                    if exact {
                        return Ok(code as u64);
                    }
                }
                let delta = &self.deltas[table.index()].columns[column.index()];
                delta
                    .new_strings
                    .iter()
                    .position(|d| d == s)
                    .map(|i| n as u64 + i as u64)
                    .ok_or_else(|| GhostError::corrupt("string missing from delta dictionary"))
            }
        }
    }

    /// Append one validated row's hidden half to the delta. `values` is
    /// the **full** row in declaration order (visible columns are
    /// ignored here — the PC stores those). Returns the column ids that
    /// received a value no base or delta dictionary had seen before
    /// (for the catalog's incremental distinct counts).
    pub fn append_row(
        &mut self,
        schema: &Schema,
        table: TableId,
        values: &[Value],
    ) -> Result<Vec<u16>> {
        let tdef = schema.table(table);
        if values.len() != tdef.columns.len() {
            return Err(GhostError::catalog(format!(
                "append arity {} != column count {}",
                values.len(),
                tdef.columns.len()
            )));
        }
        let mut new_value_columns = Vec::new();
        for (ci, (cdef, v)) in tdef.columns.iter().zip(values).enumerate() {
            if !cdef.visibility.is_hidden() {
                continue;
            }
            // Dict columns: track strings the base dictionary cannot
            // encode (their rank space is frozen until the next flush).
            if let Some(ColumnStore::Dict {
                offsets,
                bytes,
                entries,
                ..
            }) = &self.tables[table.index()].columns[ci]
            {
                let s = v
                    .as_text()
                    .ok_or_else(|| GhostError::corrupt("non-text value in CHAR column"))?;
                let (offsets, bytes, entries) = (offsets.clone(), bytes.clone(), *entries);
                let in_base = entries > 0 && self.dict_lower_bound(&offsets, &bytes, entries, s)?.1;
                let delta = &mut self.deltas[table.index()].columns[ci];
                if !in_base && !delta.new_strings.iter().any(|d| d == s) {
                    delta.new_strings.push(s.to_string());
                    new_value_columns.push(ci as u16);
                }
            }
            self.deltas[table.index()].columns[ci]
                .values
                .push(v.clone());
        }
        self.deltas[table.index()].rows += 1;
        self.live[table.index()].push_live();
        Ok(new_value_columns)
    }

    fn store(&self, table: TableId, column: ColumnId) -> Result<&ColumnStore> {
        self.tables
            .get(table.index())
            .and_then(|t| t.columns.get(column.index()))
            .and_then(|c| c.as_ref())
            .ok_or_else(|| {
                GhostError::exec(format!(
                    "column {table}.{column} is not stored on the device"
                ))
            })
    }

    /// True if the device stores this column (i.e. it is hidden).
    pub fn has_column(&self, table: TableId, column: ColumnId) -> bool {
        self.store(table, column).is_ok()
    }

    /// The delta value of one cell (rows at or above the flash base).
    fn delta_value(&self, table: TableId, column: ColumnId, row: RowId) -> Result<&Value> {
        let base = self.base_rows(table);
        self.deltas
            .get(table.index())
            .and_then(|d| d.columns.get(column.index()))
            .and_then(|c| c.values.get((row.0 - base) as usize))
            .ok_or_else(|| GhostError::exec(format!("row {row} out of range for {table}")))
    }

    /// Raw order key of one cell. Delta rows (and overwritten base
    /// rows) of dict columns whose string is absent from the base
    /// dictionary get **identity** codes (`entries + i`) — usable for
    /// equality/hashing, not for order.
    pub fn key_at(&self, table: TableId, column: ColumnId, row: RowId) -> Result<u64> {
        if row.0 >= self.base_rows(table) {
            let v = self.delta_value(table, column, row)?.clone();
            return self.key_of_value(table, column, &v);
        }
        if let Some(v) = self.overlay(table, column, row) {
            let v = v.clone();
            return self.key_of_value(table, column, &v);
        }
        match self.store(table, column)? {
            ColumnStore::Fixed { keys, .. } => {
                let mut buf = [0u8; 8];
                self.volume
                    .read_at(keys, row.index() as u64 * 8, &mut buf)?;
                Ok(u64::from_le_bytes(buf))
            }
            ColumnStore::Dict { codes, .. } => {
                let mut buf = [0u8; 4];
                self.volume
                    .read_at(codes, row.index() as u64 * 4, &mut buf)?;
                Ok(u32::from_le_bytes(buf) as u64)
            }
        }
    }

    fn dict_entry(&self, offsets: &Segment, bytes: &Segment, code: u32) -> Result<String> {
        let mut b = [0u8; 8];
        self.volume.read_at(offsets, code as u64 * 4, &mut b)?;
        let start = u32::from_le_bytes(b[0..4].try_into().expect("4B")) as usize;
        let end = u32::from_le_bytes(b[4..8].try_into().expect("4B")) as usize;
        let mut s = vec![0u8; end - start];
        if !s.is_empty() {
            self.volume.read_at(bytes, start as u64, &mut s)?;
        }
        String::from_utf8(s).map_err(|_| GhostError::corrupt("non-utf8 dictionary entry"))
    }

    /// Decode one cell back into a [`Value`].
    pub fn value(
        &self,
        _scope: &RamScope,
        table: TableId,
        column: ColumnId,
        row: RowId,
    ) -> Result<Value> {
        if row.0 >= self.row_count(table) {
            return Err(GhostError::exec(format!(
                "row {row} out of range for {table}"
            )));
        }
        if row.0 >= self.base_rows(table) {
            self.store(table, column)?; // hidden-column check
            return Ok(self.delta_value(table, column, row)?.clone());
        }
        if let Some(v) = self.overlay(table, column, row) {
            self.store(table, column)?; // hidden-column check
            return Ok(v.clone());
        }
        match self.store(table, column)? {
            ColumnStore::Fixed { ty, keys } => {
                let mut buf = [0u8; 8];
                self.volume
                    .read_at(keys, row.index() as u64 * 8, &mut buf)?;
                Value::from_order_key(*ty, u64::from_le_bytes(buf))
            }
            ColumnStore::Dict {
                codes,
                offsets,
                bytes,
                ..
            } => {
                let mut buf = [0u8; 4];
                self.volume
                    .read_at(codes, row.index() as u64 * 4, &mut buf)?;
                let code = u32::from_le_bytes(buf);
                Ok(Value::Text(self.dict_entry(offsets, bytes, code)?))
            }
        }
    }

    /// Dictionary lower bound: the first code whose string is `>= probe`,
    /// plus whether that code is an exact match. Binary search over flash.
    fn dict_lower_bound(
        &self,
        offsets: &Segment,
        bytes: &Segment,
        entries: u32,
        probe: &str,
    ) -> Result<(u32, bool)> {
        let mut lo = 0u32;
        let mut hi = entries;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let s = self.dict_entry(offsets, bytes, mid)?;
            if s.as_str() < probe {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo < entries {
            let s = self.dict_entry(offsets, bytes, lo)?;
            Ok((lo, s == probe))
        } else {
            Ok((lo, false))
        }
    }

    /// Reduce `column OP value` to a [`KeyRange`] over the column's key
    /// space. `Ok(None)` means the predicate provably matches nothing.
    pub fn key_range(
        &self,
        table: TableId,
        column: ColumnId,
        op: ScalarOp,
        value: &Value,
    ) -> Result<Option<KeyRange>> {
        match self.store(table, column)? {
            ColumnStore::Fixed { ty, .. } => {
                if !ty.admits(value) {
                    return Err(GhostError::value(format!(
                        "predicate value {value} does not match column type {ty}"
                    )));
                }
                let key = value.order_key().expect("fixed types have keys");
                Ok(key_range_for(op, key, u64::MAX))
            }
            ColumnStore::Dict {
                offsets,
                bytes,
                entries,
                ..
            } => {
                let s = value
                    .as_text()
                    .ok_or_else(|| GhostError::value("CHAR column predicate needs a text value"))?;
                let n = *entries;
                if n == 0 {
                    return Ok(None);
                }
                let (lb, exact) = self.dict_lower_bound(offsets, bytes, n, s)?;
                let max = (n - 1) as u64;
                Ok(match op {
                    ScalarOp::Eq => exact.then_some(KeyRange {
                        lo: lb as u64,
                        hi: lb as u64,
                    }),
                    ScalarOp::Lt => (lb > 0).then_some(KeyRange {
                        lo: 0,
                        hi: lb as u64 - 1,
                    }),
                    ScalarOp::Le => {
                        let hi = if exact { lb as i64 } else { lb as i64 - 1 };
                        (hi >= 0).then_some(KeyRange {
                            lo: 0,
                            hi: hi as u64,
                        })
                    }
                    ScalarOp::Gt => {
                        let lo = if exact { lb as u64 + 1 } else { lb as u64 };
                        (lo <= max).then_some(KeyRange { lo, hi: max })
                    }
                    ScalarOp::Ge => ((lb as u64) <= max).then_some(KeyRange {
                        lo: lb as u64,
                        hi: max,
                    }),
                })
            }
        }
    }

    /// Does row `row` satisfy `column OP value`? Base rows test their
    /// stored key against `base_range` (precomputed once per predicate
    /// via [`key_range`](Self::key_range); `None` = no base row can
    /// match); delta rows — and overwritten base rows — compare their
    /// RAM-resident **value** directly, which stays exact even for
    /// strings the base dictionary cannot encode.
    pub fn matches_at(
        &self,
        table: TableId,
        column: ColumnId,
        row: RowId,
        op: ScalarOp,
        value: &Value,
        base_range: Option<KeyRange>,
    ) -> Result<bool> {
        if row.0 >= self.base_rows(table) {
            let v = self.delta_value(table, column, row)?;
            return op.matches(v, value);
        }
        if let Some(v) = self.overlay(table, column, row) {
            return op.matches(v, value);
        }
        match base_range {
            None => Ok(false),
            Some(r) => Ok(r.contains(self.key_at(table, column, row)?)),
        }
    }

    /// Exact order key of `value` in the column's current key space
    /// (dictionary probes resolve on flash). `Ok(None)` when a dict
    /// column does not contain the string — after a
    /// [`flush`](Self::flush) that means its last referencing row died
    /// and the rebuilt dictionary dropped it, which tells the index
    /// flush to drop the matching delta entry too.
    pub fn encode_value(
        &self,
        table: TableId,
        column: ColumnId,
        value: &Value,
    ) -> Result<Option<u64>> {
        match self.store(table, column)? {
            ColumnStore::Fixed { .. } => value
                .order_key()
                .map(Some)
                .ok_or_else(|| GhostError::value("text value on a fixed-key column")),
            ColumnStore::Dict {
                offsets,
                bytes,
                entries,
                ..
            } => {
                let s = value
                    .as_text()
                    .ok_or_else(|| GhostError::value("dict column expects text"))?;
                if *entries > 0 {
                    let (code, exact) = self.dict_lower_bound(offsets, bytes, *entries, s)?;
                    if exact {
                        return Ok(Some(code as u64));
                    }
                }
                Ok(None)
            }
        }
    }

    /// Delta row ids matching `column OP value` (ascending; value-exact
    /// comparison, so delta-dictionary strings behave correctly).
    fn delta_matches(
        &self,
        table: TableId,
        column: ColumnId,
        op: ScalarOp,
        value: &Value,
    ) -> Result<Vec<RowId>> {
        let base = self.base_rows(table);
        let mut out = Vec::new();
        if let Some(d) = self
            .deltas
            .get(table.index())
            .and_then(|d| d.columns.get(column.index()))
        {
            for (i, v) in d.values.iter().enumerate() {
                if op.matches(v, value)? {
                    out.push(RowId(base + i as u32));
                }
            }
        }
        Ok(out)
    }

    /// Stream every `(row id, order key)` of a stored column — the raw
    /// scan primitive under the index-free baselines (grace hash join)
    /// and the statistics rebuild. Delta rows follow the base with
    /// [`key_at`](Self::key_at) keys; overwritten base cells substitute
    /// their overlay key. Row ids are **physical** and the scan includes
    /// tombstoned rows — callers that need the live view filter through
    /// [`liveness`](Self::liveness).
    pub fn key_scan(&self, scope: &RamScope, table: TableId, column: ColumnId) -> Result<KeyScan> {
        let (reader, width) = match self.store(table, column)? {
            ColumnStore::Fixed { keys, .. } => (self.volume.reader(scope, keys)?, 8),
            ColumnStore::Dict { codes, .. } => (self.volume.reader(scope, codes)?, 4),
        };
        let base = self.base_rows(table);
        let mut tail = Vec::new();
        for i in 0..self.delta_rows(table) {
            let row = RowId(base + i);
            tail.push((row, self.key_at(table, column, row)?));
        }
        let mut key_overrides = Vec::new();
        for (&row, v) in &self.deltas[table.index()].overwrites[column.index()] {
            key_overrides.push((row, self.key_of_value(table, column, v)?));
        }
        Ok(KeyScan {
            reader,
            width,
            next_row: 0,
            rows: base,
            key_overrides,
            override_pos: 0,
            tail,
            tail_pos: 0,
        })
    }

    /// Stream the row ids whose key falls in `range`, scanning the whole
    /// column off flash (the paper's index-free fallback). Delta rows
    /// are matched through their [`key_at`](Self::key_at) keys; prefer
    /// [`predicate_scan`](Self::predicate_scan) for predicate semantics
    /// over delta-dictionary strings.
    pub fn filter_scan(
        &self,
        scope: &RamScope,
        table: TableId,
        column: ColumnId,
        range: KeyRange,
    ) -> Result<FilterScan> {
        let (reader, width) = match self.store(table, column)? {
            ColumnStore::Fixed { keys, .. } => (self.volume.reader(scope, keys)?, 8),
            ColumnStore::Dict { codes, .. } => (self.volume.reader(scope, codes)?, 4),
        };
        let base = self.base_rows(table);
        let mut tail = Vec::new();
        for i in 0..self.delta_rows(table) {
            let row = RowId(base + i);
            if range.contains(self.key_at(table, column, row)?) {
                tail.push(row);
            }
        }
        let mut overrides = Vec::new();
        for (&row, v) in &self.deltas[table.index()].overwrites[column.index()] {
            overrides.push((row, range.contains(self.key_of_value(table, column, v)?)));
        }
        Ok(FilterScan {
            reader,
            width,
            range,
            next_row: 0,
            rows: base,
            scanned: 0,
            overrides,
            override_pos: 0,
            tail,
            tail_pos: 0,
        })
    }

    /// Predicate-level scan: base rows filter through the key-space
    /// reduction, delta rows by direct value comparison. This is the
    /// delta-aware face of [`filter_scan`](Self::filter_scan) the
    /// executor uses.
    pub fn predicate_scan(
        &self,
        scope: &RamScope,
        table: TableId,
        column: ColumnId,
        op: ScalarOp,
        value: &Value,
    ) -> Result<FilterScan> {
        let base_range = self.key_range(table, column, op, value)?;
        let (reader, width) = match self.store(table, column)? {
            ColumnStore::Fixed { keys, .. } => (self.volume.reader(scope, keys)?, 8),
            ColumnStore::Dict { codes, .. } => (self.volume.reader(scope, codes)?, 4),
        };
        let tail = self.delta_matches(table, column, op, value)?;
        // Overwritten base cells decide by value — exact even for
        // strings the base dictionary cannot encode.
        let overwrites = &self.deltas[table.index()].overwrites[column.index()];
        let mut overrides = Vec::with_capacity(overwrites.len());
        for (&row, v) in overwrites {
            overrides.push((row, op.matches(v, value)?));
        }
        // A `None` range proves no *unmodified* base row matches; the
        // scan still has to cover overwritten rows, whose new value may
        // match regardless of the base key space.
        let rows = if base_range.is_some() || !overrides.is_empty() {
            self.base_rows(table)
        } else {
            0
        };
        Ok(FilterScan {
            reader,
            width,
            range: base_range.unwrap_or(KeyRange { lo: 1, hi: 0 }),
            next_row: 0,
            rows,
            scanned: 0,
            overrides,
            override_pos: 0,
            tail,
            tail_pos: 0,
        })
    }

    /// Merge every un-flushed mutation into rebuilt flash segments and
    /// free the old ones (PR 2's GC reclaims the space):
    ///
    /// * appended delta rows land after the surviving base rows;
    /// * **tombstoned rows are physically dropped** and the survivors
    ///   renumbered dense — the per-table old→new id map is reported in
    ///   [`FlushRemaps::ids`] so indexes, SKTs and the PC compact in the
    ///   same pass. Foreign-key columns rewrite their stored ids through
    ///   the *referenced* table's map (a table is rebuilt even when its
    ///   only change is a compacted FK target);
    /// * **overwritten cells** merge their overlay values in place;
    /// * dict columns rebuild the dictionary — re-ranking every code so
    ///   order-preservation covers absorbed strings — and report the
    ///   old→new code map ([`FlushRemaps::dicts`]). Strings whose last
    ///   referencing row died are **dropped from the rebuilt
    ///   dictionary** (their bytes and offset slots reclaimed with the
    ///   per-row data); their remap entry is `u32::MAX`, which tells
    ///   index compaction to drop the matching postings too.
    ///
    /// Afterwards every table is all-live over its new physical
    /// universe: logical and physical ids coincide again.
    pub fn flush(&mut self, scope: &RamScope, schema: &Schema) -> Result<FlushRemaps> {
        let volume = self.volume.clone();
        let id_remaps: Vec<Option<Vec<u32>>> = self
            .live
            .iter()
            .map(|l| (!l.all_live()).then(|| l.compaction_remap()))
            .collect();
        let mut dict_remaps = Vec::new();
        for ti in 0..self.tables.len() {
            let drows = self.deltas[ti].rows;
            let t_dead = id_remaps[ti].is_some();
            let tdef = schema.table(TableId(ti as u16));
            let base_rows = self.tables[ti].rows;
            for ci in 0..self.tables[ti].columns.len() {
                let Some(store) = self.tables[ti].columns[ci].clone() else {
                    continue;
                };
                let target_remap = match tdef.columns[ci].role {
                    ColumnRole::ForeignKey(t) => id_remaps[t.index()].as_deref(),
                    _ => None,
                };
                let has_overwrites = !self.deltas[ti].overwrites[ci].is_empty();
                if drows == 0 && !t_dead && !has_overwrites && target_remap.is_none() {
                    continue;
                }
                let overwrites = std::mem::take(&mut self.deltas[ti].overwrites[ci]);
                let delta = std::mem::take(&mut self.deltas[ti].columns[ci]);
                // Re-point a stored foreign-key id at its target's
                // post-compaction id. A live row referencing a dead
                // target would violate the delete-time RESTRICT check.
                let map_fk = |id: i64| -> Result<i64> {
                    match target_remap {
                        None => Ok(id),
                        Some(m) => match m.get(id as usize) {
                            Some(&n) if n != u32::MAX => Ok(n as i64),
                            _ => Err(GhostError::corrupt(
                                "live row references a deleted foreign-key target",
                            )),
                        },
                    }
                };
                match store {
                    ColumnStore::Fixed { ty, keys } => {
                        let map_key = |k: u64| -> Result<u64> {
                            if target_remap.is_none() {
                                return Ok(k);
                            }
                            let id = Value::from_order_key(ty, k)?
                                .as_int()
                                .ok_or_else(|| GhostError::corrupt("non-integer fk key"))?;
                            Ok(Value::Int(map_fk(id)?)
                                .order_key()
                                .expect("ints have order keys"))
                        };
                        let mut w = volume.writer(scope)?;
                        let mut reader = volume.reader(scope, &keys)?;
                        let mut buf = [0u8; 8];
                        for r in 0..base_rows {
                            reader.read_exact(&mut buf)?;
                            if !self.live[ti].is_live(r) {
                                continue;
                            }
                            let k = match overwrites.get(&r) {
                                Some(v) => v.order_key().ok_or_else(|| {
                                    GhostError::corrupt("non-numeric value in fixed column")
                                })?,
                                None => u64::from_le_bytes(buf),
                            };
                            w.write(&map_key(k)?.to_le_bytes())?;
                        }
                        drop(reader);
                        for (i, v) in delta.values.iter().enumerate() {
                            if !self.live[ti].is_live(base_rows + i as u32) {
                                continue;
                            }
                            let k = v.order_key().ok_or_else(|| {
                                GhostError::corrupt("non-numeric value in fixed column")
                            })?;
                            w.write(&map_key(k)?.to_le_bytes())?;
                        }
                        let new_keys = w.finish()?;
                        volume.free(keys)?;
                        self.tables[ti].columns[ci] =
                            Some(ColumnStore::Fixed { ty, keys: new_keys });
                    }
                    ColumnStore::Dict {
                        codes,
                        offsets,
                        bytes,
                        entries,
                    } => {
                        let mut base_strings = Vec::with_capacity(entries as usize);
                        for c in 0..entries {
                            base_strings.push(self.dict_entry(&offsets, &bytes, c)?);
                        }
                        let mut merged: Vec<String> = base_strings
                            .iter()
                            .cloned()
                            .chain(delta.new_strings.iter().cloned())
                            .collect();
                        merged.sort_unstable();
                        merged.dedup();
                        let code_of = |s: &str| -> Result<u32> {
                            merged
                                .binary_search_by(|m| m.as_str().cmp(s))
                                .map(|i| i as u32)
                                .map_err(|_| GhostError::corrupt("string missing from merge"))
                        };
                        let to_merged: Vec<u32> = base_strings
                            .iter()
                            .map(|s| code_of(s))
                            .collect::<Result<_>>()?;
                        // Pass 1 — one streaming read of the base codes:
                        // resolve every surviving row to its merged-space
                        // code, marking which strings are still
                        // referenced at all.
                        let mut referenced = vec![false; merged.len()];
                        let mut survivors: Vec<u32> = Vec::new();
                        let mut reader = volume.reader(scope, &codes)?;
                        let mut buf = [0u8; 4];
                        for r in 0..base_rows {
                            reader.read_exact(&mut buf)?;
                            if !self.live[ti].is_live(r) {
                                continue;
                            }
                            let m = match overwrites.get(&r) {
                                Some(v) => {
                                    let s = v.as_text().ok_or_else(|| {
                                        GhostError::corrupt("non-text in CHAR column")
                                    })?;
                                    code_of(s)?
                                }
                                None => to_merged[u32::from_le_bytes(buf) as usize],
                            };
                            referenced[m as usize] = true;
                            survivors.push(m);
                        }
                        drop(reader);
                        for (i, v) in delta.values.iter().enumerate() {
                            if !self.live[ti].is_live(base_rows + i as u32) {
                                continue;
                            }
                            let s = v
                                .as_text()
                                .ok_or_else(|| GhostError::corrupt("non-text in CHAR column"))?;
                            let m = code_of(s)?;
                            referenced[m as usize] = true;
                            survivors.push(m);
                        }
                        // Pass 2 — drop unreferenced strings, re-ranking
                        // the keepers dense (order preserved: `merged`
                        // is sorted and the drop is a filter).
                        let mut to_kept = vec![u32::MAX; merged.len()];
                        let mut kept = 0u32;
                        for (m, r) in referenced.iter().enumerate() {
                            if *r {
                                to_kept[m] = kept;
                                kept += 1;
                            }
                        }
                        let mut offs_w = volume.writer(scope)?;
                        let mut bytes_w = volume.writer(scope)?;
                        let mut off = 0u32;
                        for (m, s) in merged.iter().enumerate() {
                            if !referenced[m] {
                                continue;
                            }
                            offs_w.write(&off.to_le_bytes())?;
                            bytes_w.write(s.as_bytes())?;
                            off += s.len() as u32;
                        }
                        offs_w.write(&off.to_le_bytes())?;
                        let mut codes_w = volume.writer(scope)?;
                        for m in &survivors {
                            codes_w.write(&to_kept[*m as usize].to_le_bytes())?;
                        }
                        // Reported remap: old base code → final code,
                        // u32::MAX when the string died with its rows.
                        let remap: Vec<u32> =
                            to_merged.iter().map(|&m| to_kept[m as usize]).collect();
                        let new_store = ColumnStore::Dict {
                            codes: codes_w.finish()?,
                            offsets: offs_w.finish()?,
                            bytes: bytes_w.finish()?,
                            entries: kept,
                        };
                        volume.free(codes)?;
                        volume.free(offsets)?;
                        volume.free(bytes)?;
                        dict_remaps.push(DictRemap {
                            table: TableId(ti as u16),
                            column: ColumnId(ci as u16),
                            map: remap,
                        });
                        self.tables[ti].columns[ci] = Some(new_store);
                    }
                }
            }
            if drows > 0 || t_dead {
                self.tables[ti].rows = self.live[ti].live_count();
            }
            let n_cols = self.tables[ti].columns.len();
            self.deltas[ti] = TableDelta::empty(n_cols);
            self.live[ti] = LiveSet::new_full(self.tables[ti].rows);
        }
        Ok(FlushRemaps {
            dicts: dict_remaps,
            ids: id_remaps,
        })
    }
}

// --- durable-image manifest ----------------------------------------------

/// Durable description of one hidden column's flash layout. Holds only
/// segment pointers, types, and dictionary cardinalities — never a
/// hidden *value* (those stay inside the referenced segments on NAND).
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnManifest {
    /// 8-byte order-key column.
    Fixed {
        /// Decoding type.
        ty: DataType,
        /// The keys segment.
        keys: SegmentManifest,
    },
    /// Dictionary-coded CHAR column.
    Dict {
        /// The 4-byte codes segment.
        codes: SegmentManifest,
        /// The dictionary offsets segment.
        offsets: SegmentManifest,
        /// The dictionary bytes segment.
        bytes: SegmentManifest,
        /// Dictionary cardinality.
        entries: u32,
    },
}

impl Wire for ColumnManifest {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            ColumnManifest::Fixed { ty, keys } => {
                out.push(0);
                ty.encode(out);
                keys.encode(out);
            }
            ColumnManifest::Dict {
                codes,
                offsets,
                bytes,
                entries,
            } => {
                out.push(1);
                codes.encode(out);
                offsets.encode(out);
                bytes.encode(out);
                entries.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        match u8::decode(buf)? {
            0 => Ok(ColumnManifest::Fixed {
                ty: DataType::decode(buf)?,
                keys: SegmentManifest::decode(buf)?,
            }),
            1 => Ok(ColumnManifest::Dict {
                codes: SegmentManifest::decode(buf)?,
                offsets: SegmentManifest::decode(buf)?,
                bytes: SegmentManifest::decode(buf)?,
                entries: u32::decode(buf)?,
            }),
            t => Err(GhostError::corrupt(format!("column manifest tag {t}"))),
        }
    }
}

/// Durable description of one table's hidden half.
#[derive(Debug, Clone, PartialEq)]
pub struct TableManifest {
    /// Rows resident in the flash base.
    pub rows: u32,
    /// Per column (index = column id); `None` for visible columns.
    pub columns: Vec<Option<ColumnManifest>>,
}

impl Wire for TableManifest {
    fn encode(&self, out: &mut Vec<u8>) {
        self.rows.encode(out);
        self.columns.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok(TableManifest {
            rows: u32::decode(buf)?,
            columns: Vec::<Option<ColumnManifest>>::decode(buf)?,
        })
    }
}

/// Durable description of the whole hidden store (one entry per table).
#[derive(Debug, Clone, PartialEq)]
pub struct HiddenManifest {
    /// Per-table manifests, indexed by [`TableId`].
    pub tables: Vec<TableManifest>,
}

impl Wire for HiddenManifest {
    fn encode(&self, out: &mut Vec<u8>) {
        self.tables.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok(HiddenManifest {
            tables: Vec::<TableManifest>::decode(buf)?,
        })
    }
}

impl HiddenStore {
    /// Every logical flash page the store's base segments can read,
    /// appended to `out` — the set a snapshot session pins against
    /// flush-time frees. Unlike [`manifest`](Self::manifest) this works
    /// with pending mutations: the RAM delta needs no pinning, and the
    /// bases are exactly what a flush would retire.
    pub fn collect_lpns(&self, out: &mut Vec<u32>) {
        for t in &self.tables {
            for c in t.columns.iter().flatten() {
                match c {
                    ColumnStore::Fixed { keys, .. } => out.extend(keys.manifest().lpns),
                    ColumnStore::Dict {
                        codes,
                        offsets,
                        bytes,
                        ..
                    } => {
                        out.extend(codes.manifest().lpns);
                        out.extend(offsets.manifest().lpns);
                        out.extend(bytes.manifest().lpns);
                    }
                }
            }
        }
    }

    /// The store's durable manifest. Requires every mutation — appended
    /// rows, tombstones, overwrites — to be flushed first: the image
    /// format keeps un-flushed mutations in the WAL, not in the metadata
    /// segments.
    pub fn manifest(&self) -> Result<HiddenManifest> {
        if self.total_pending_mutations() != 0 {
            return Err(GhostError::exec(
                "hidden store manifest requires flushed mutations".to_string(),
            ));
        }
        let tables = self
            .tables
            .iter()
            .map(|t| TableManifest {
                rows: t.rows,
                columns: t
                    .columns
                    .iter()
                    .map(|c| {
                        c.as_ref().map(|c| match c {
                            ColumnStore::Fixed { ty, keys } => ColumnManifest::Fixed {
                                ty: *ty,
                                keys: keys.manifest(),
                            },
                            ColumnStore::Dict {
                                codes,
                                offsets,
                                bytes,
                                entries,
                            } => ColumnManifest::Dict {
                                codes: codes.manifest(),
                                offsets: offsets.manifest(),
                                bytes: bytes.manifest(),
                                entries: *entries,
                            },
                        })
                    })
                    .collect(),
            })
            .collect();
        Ok(HiddenManifest { tables })
    }

    /// Rebuild the store from a mounted volume and its sealed manifest —
    /// the mount path: no `Dataset`, no secure reload; every column
    /// segment resolves through the restored translation table.
    pub fn restore(volume: &Volume, manifest: &HiddenManifest) -> Result<HiddenStore> {
        let mut tables = Vec::with_capacity(manifest.tables.len());
        for tm in &manifest.tables {
            let mut columns = Vec::with_capacity(tm.columns.len());
            for cm in &tm.columns {
                columns.push(match cm {
                    None => None,
                    Some(ColumnManifest::Fixed { ty, keys }) => Some(ColumnStore::Fixed {
                        ty: *ty,
                        keys: volume.restore_manifest(keys)?,
                    }),
                    Some(ColumnManifest::Dict {
                        codes,
                        offsets,
                        bytes,
                        entries,
                    }) => Some(ColumnStore::Dict {
                        codes: volume.restore_manifest(codes)?,
                        offsets: volume.restore_manifest(offsets)?,
                        bytes: volume.restore_manifest(bytes)?,
                        entries: *entries,
                    }),
                });
            }
            tables.push(TableStore {
                rows: tm.rows,
                columns,
            });
        }
        let deltas = tables
            .iter()
            .map(|t| TableDelta::empty(t.columns.len()))
            .collect();
        let live = tables.iter().map(|t| LiveSet::new_full(t.rows)).collect();
        Ok(HiddenStore {
            volume: volume.clone(),
            tables,
            deltas,
            live,
        })
    }

    /// Replace the per-table liveness with the sets a sealed image
    /// carried (the tombstone half of the mount path). Universe sizes
    /// must agree with the restored segments.
    pub fn restore_liveness(&mut self, sets: &[LiveSet]) -> Result<()> {
        if sets.len() != self.tables.len() {
            return Err(GhostError::corrupt(
                "sealed tombstone sets do not match the table count",
            ));
        }
        for (t, s) in self.tables.iter().zip(sets) {
            if s.universe() != t.rows {
                return Err(GhostError::corrupt(
                    "sealed tombstone universe disagrees with the segment row count",
                ));
            }
        }
        self.live = sets.to_vec();
        Ok(())
    }
}

/// Raw `(row id, key)` scan over a stored column (see
/// [`HiddenStore::key_scan`]).
#[derive(Debug)]
pub struct KeyScan {
    reader: SegmentReader,
    width: usize,
    next_row: u32,
    rows: u32,
    /// `(row, overlay key)` of overwritten base cells, ascending.
    key_overrides: Vec<(u32, u64)>,
    override_pos: usize,
    /// Delta `(row, key)` pairs served after the flash base.
    tail: Vec<(RowId, u64)>,
    tail_pos: usize,
}

impl KeyScan {
    /// Next `(row id, order key)` pair, or `None` at end of column.
    pub fn next_entry(&mut self) -> Result<Option<(RowId, u64)>> {
        if self.next_row >= self.rows {
            let e = self.tail.get(self.tail_pos).copied();
            if e.is_some() {
                self.tail_pos += 1;
            }
            return Ok(e);
        }
        let row = self.next_row;
        self.next_row += 1;
        let mut buf = [0u8; 8];
        self.reader.read_exact(&mut buf[..self.width])?;
        let mut key = if self.width == 8 {
            u64::from_le_bytes(buf)
        } else {
            u32::from_le_bytes(buf[..4].try_into().expect("4B")) as u64
        };
        // Overwritten cells substitute their overlay key (the stored
        // byte was still consumed to keep the reader sequential).
        if let Some(&(orow, okey)) = self.key_overrides.get(self.override_pos) {
            if orow == row {
                key = okey;
                self.override_pos += 1;
            }
        }
        Ok(Some((RowId(row), key)))
    }
}

/// Streaming filter over a hidden column (see
/// [`HiddenStore::filter_scan`]).
#[derive(Debug)]
pub struct FilterScan {
    reader: SegmentReader,
    width: usize,
    range: KeyRange,
    next_row: u32,
    rows: u32,
    scanned: u64,
    /// `(row, matches)` decisions for overwritten base cells,
    /// ascending; the precomputed value-exact verdict overrides the
    /// stored key's range test.
    overrides: Vec<(u32, bool)>,
    override_pos: usize,
    /// Pre-matched delta row ids served after the flash base.
    tail: Vec<RowId>,
    tail_pos: usize,
}

impl FilterScan {
    /// Next matching row id, or `None` at end of column.
    pub fn next_id(&mut self) -> Result<Option<RowId>> {
        let mut buf = [0u8; 8];
        while self.next_row < self.rows {
            let row = self.next_row;
            self.next_row += 1;
            self.scanned += 1;
            self.reader.read_exact(&mut buf[..self.width])?;
            let key = if self.width == 8 {
                u64::from_le_bytes(buf)
            } else {
                u32::from_le_bytes(buf[..4].try_into().expect("4B")) as u64
            };
            let mut hit = self.range.contains(key);
            if let Some(&(orow, omatch)) = self.overrides.get(self.override_pos) {
                if orow == row {
                    hit = omatch;
                    self.override_pos += 1;
                }
            }
            if hit {
                return Ok(Some(RowId(row)));
            }
        }
        let id = self.tail.get(self.tail_pos).copied();
        if id.is_some() {
            self.tail_pos += 1;
            self.scanned += 1;
        }
        Ok(id)
    }

    /// Rows examined so far (the per-operator "tuples processed" stat).
    pub fn scanned(&self) -> u64 {
        self.scanned
    }

    /// Rows this scan will examine end to end: the base rows it covers
    /// (zero when the key range proved no base row can match) plus the
    /// pre-matched delta tail. The executor charges CPU per planned row.
    pub fn planned_rows(&self) -> u64 {
        self.rows as u64 + self.tail.len() as u64
    }
}

impl Iterator for FilterScan {
    type Item = Result<RowId>;
    fn next(&mut self) -> Option<Self::Item> {
        self.next_id().transpose()
    }
}

impl ghostdb_types::IdStream for FilterScan {
    fn next_id(&mut self) -> Result<Option<RowId>> {
        FilterScan::next_id(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_catalog::{SchemaBuilder, Visibility};
    use ghostdb_flash::Nand;
    use ghostdb_ram::RamBudget;
    use ghostdb_types::{Date, FlashConfig, SimClock};

    fn setup() -> (Volume, RamScope, Schema, Dataset) {
        let cfg = FlashConfig {
            page_size: 256,
            pages_per_block: 8,
            num_blocks: 512,
            ..FlashConfig::default_2007()
        };
        let volume = Volume::new(Nand::new(cfg, SimClock::new()));
        let scope = RamScope::new(&RamBudget::new(64 * 1024));
        let mut b = SchemaBuilder::new();
        b.table("Visit", "VisID")
            .column("Date", DataType::Date, Visibility::Hidden)
            .column("Purpose", DataType::Char(20), Visibility::Hidden)
            .column("Weight", DataType::Integer, Visibility::Visible);
        let schema = b.build().unwrap();
        let purposes = ["Checkup", "Diabetes", "Flu", "Sclerosis"];
        let mut data = Dataset::empty(&schema);
        for i in 0..100i64 {
            data.push_row(
                TableId(0),
                vec![
                    Value::Int(i),
                    Value::Date(Date(10_000 + i as i32)),
                    Value::Text(purposes[(i % 4) as usize].to_string()),
                    Value::Int(50 + i),
                ],
            )
            .unwrap();
        }
        (volume, scope, schema, data)
    }

    fn build() -> (HiddenStore, LoadEncoders, RamScope) {
        let (volume, scope, schema, data) = setup();
        let (store, enc) = HiddenStore::build(&volume, &scope, &schema, &data).unwrap();
        (store, enc, scope)
    }

    #[test]
    fn fixed_values_roundtrip() {
        let (store, _, scope) = build();
        let v = store
            .value(&scope, TableId(0), ColumnId(1), RowId(42))
            .unwrap();
        assert_eq!(v, Value::Date(Date(10_042)));
    }

    #[test]
    fn dict_values_roundtrip() {
        let (store, _, scope) = build();
        for (row, expect) in [(0u32, "Checkup"), (1, "Diabetes"), (3, "Sclerosis")] {
            let v = store
                .value(&scope, TableId(0), ColumnId(2), RowId(row))
                .unwrap();
            assert_eq!(v, Value::Text(expect.into()));
        }
    }

    #[test]
    fn visible_columns_not_on_device() {
        let (store, _, scope) = build();
        assert!(!store.has_column(TableId(0), ColumnId(3)));
        assert!(store
            .value(&scope, TableId(0), ColumnId(3), RowId(0))
            .is_err());
    }

    #[test]
    fn key_ranges_fixed() {
        let (store, _, _) = build();
        let r = store
            .key_range(
                TableId(0),
                ColumnId(1),
                ScalarOp::Gt,
                &Value::Date(Date(10_050)),
            )
            .unwrap()
            .unwrap();
        let k51 = Value::Date(Date(10_051)).order_key().unwrap();
        assert_eq!(r.lo, k51);
        // Type mismatch rejected.
        assert!(store
            .key_range(TableId(0), ColumnId(1), ScalarOp::Eq, &Value::Int(1))
            .is_err());
    }

    #[test]
    fn key_ranges_dict() {
        let (store, _, _) = build();
        let t = TableId(0);
        let c = ColumnId(2);
        // Codes: Checkup=0, Diabetes=1, Flu=2, Sclerosis=3.
        let eq = store
            .key_range(t, c, ScalarOp::Eq, &Value::Text("Flu".into()))
            .unwrap()
            .unwrap();
        assert_eq!((eq.lo, eq.hi), (2, 2));
        assert!(store
            .key_range(t, c, ScalarOp::Eq, &Value::Text("Malaria".into()))
            .unwrap()
            .is_none());
        let lt = store
            .key_range(t, c, ScalarOp::Lt, &Value::Text("Flu".into()))
            .unwrap()
            .unwrap();
        assert_eq!((lt.lo, lt.hi), (0, 1));
        let ge = store
            .key_range(t, c, ScalarOp::Ge, &Value::Text("Emu".into()))
            .unwrap()
            .unwrap();
        assert_eq!((ge.lo, ge.hi), (2, 3));
        assert!(store
            .key_range(t, c, ScalarOp::Gt, &Value::Text("Sclerosis".into()))
            .unwrap()
            .is_none());
        let le = store
            .key_range(t, c, ScalarOp::Le, &Value::Text("Aardvark".into()))
            .unwrap();
        assert!(le.is_none());
    }

    #[test]
    fn filter_scan_matches_reference() {
        let (store, _, scope) = build();
        let range = store
            .key_range(
                TableId(0),
                ColumnId(2),
                ScalarOp::Eq,
                &Value::Text("Sclerosis".into()),
            )
            .unwrap()
            .unwrap();
        let scan = store
            .filter_scan(&scope, TableId(0), ColumnId(2), range)
            .unwrap();
        let got: Vec<u32> = scan.map(|r| r.unwrap().0).collect();
        let expect: Vec<u32> = (0..100).filter(|i| i % 4 == 3).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn filter_scan_counts_tuples() {
        let (store, _, scope) = build();
        let range = KeyRange { lo: 0, hi: 0 };
        let mut scan = store
            .filter_scan(&scope, TableId(0), ColumnId(2), range)
            .unwrap();
        while scan.next_id().unwrap().is_some() {}
        assert_eq!(scan.scanned(), 100);
    }

    #[test]
    fn encoders_match_store_keys() {
        let (store, enc, _) = build();
        let k = enc
            .key_of(TableId(0), ColumnId(2), &Value::Text("Flu".into()))
            .unwrap();
        assert_eq!(k, 2);
        let k = enc
            .key_of(TableId(0), ColumnId(1), &Value::Date(Date(10_007)))
            .unwrap();
        assert_eq!(store.key_at(TableId(0), ColumnId(1), RowId(7)).unwrap(), k);
        assert!(enc
            .key_of(TableId(0), ColumnId(2), &Value::Text("Nope".into()))
            .is_err());
    }

    #[test]
    fn delta_append_read_flush_roundtrip() {
        let (volume, scope, schema, data) = setup();
        let (mut store, _) = HiddenStore::build(&volume, &scope, &schema, &data).unwrap();
        let t = TableId(0);
        assert_eq!(store.base_rows(t), 100);

        // Row 100 reuses a base string; row 101 mints a new one.
        let new_cols = store
            .append_row(
                &schema,
                t,
                &[
                    Value::Int(100),
                    Value::Date(Date(10_100)),
                    Value::Text("Flu".into()),
                    Value::Int(150),
                ],
            )
            .unwrap();
        assert!(new_cols.is_empty(), "base string is not a new value");
        let new_cols = store
            .append_row(
                &schema,
                t,
                &[
                    Value::Int(101),
                    Value::Date(Date(10_101)),
                    Value::Text("Zoster".into()),
                    Value::Int(151),
                ],
            )
            .unwrap();
        assert_eq!(new_cols, vec![2], "delta-dictionary string reported");
        assert_eq!(store.row_count(t), 102);
        assert_eq!(store.delta_rows(t), 2);

        // Delta reads: values, keys (base code vs identity delta code).
        let c = ColumnId(2);
        assert_eq!(
            store.value(&scope, t, c, RowId(101)).unwrap(),
            Value::Text("Zoster".into())
        );
        assert_eq!(store.key_at(t, c, RowId(100)).unwrap(), 2); // base "Flu"
        assert_eq!(store.key_at(t, c, RowId(101)).unwrap(), 4); // entries + 0

        // Value-exact delta predicate evaluation.
        assert!(store
            .matches_at(
                t,
                c,
                RowId(101),
                ScalarOp::Eq,
                &Value::Text("Zoster".into()),
                None
            )
            .unwrap());
        let scan = store
            .predicate_scan(&scope, t, c, ScalarOp::Eq, &Value::Text("Zoster".into()))
            .unwrap();
        let got: Vec<u32> = scan.map(|r| r.unwrap().0).collect();
        assert_eq!(got, vec![101]);

        // Flush: dictionary rebuilt (remap reported), reads unchanged.
        let remaps = store.flush(&scope, &schema).unwrap();
        assert_eq!(remaps.dicts.len(), 1);
        assert!(!remaps.any_compaction(), "no deletes, no id remap");
        assert_eq!(
            remaps.dicts[0].map,
            vec![0, 1, 2, 3],
            "prefix ranks preserved"
        );
        assert_eq!(store.base_rows(t), 102);
        assert_eq!(store.delta_rows(t), 0);
        assert_eq!(
            store.value(&scope, t, c, RowId(101)).unwrap(),
            Value::Text("Zoster".into())
        );
        // "Zoster" is now rank-encoded (sorted after "Sclerosis").
        assert_eq!(
            store
                .encode_value(t, c, &Value::Text("Zoster".into()))
                .unwrap(),
            Some(4)
        );
        let range = store
            .key_range(t, c, ScalarOp::Ge, &Value::Text("Zoster".into()))
            .unwrap()
            .unwrap();
        let scan = store.filter_scan(&scope, t, c, range).unwrap();
        let got: Vec<u32> = scan.map(|r| r.unwrap().0).collect();
        assert_eq!(got, vec![101]);
        // Fixed column delta merged too.
        assert_eq!(
            store.value(&scope, t, ColumnId(1), RowId(100)).unwrap(),
            Value::Date(Date(10_100))
        );
    }

    /// Tombstones + overlays + the compacting flush: logical view stays
    /// fixed across the physical renumbering.
    #[test]
    fn delete_update_flush_compacts() {
        let (volume, scope, schema, data) = setup();
        let (mut store, _) = HiddenStore::build(&volume, &scope, &schema, &data).unwrap();
        let t = TableId(0);
        let date = ColumnId(1);
        let purpose = ColumnId(2);

        // Kill rows 0..20 and overwrite row 25's purpose with a string
        // outside the base dictionary.
        let dead: Vec<u32> = (0..20).collect();
        store.delete_rows_physical(t, &dead).unwrap();
        assert_eq!(store.live_count(t), 80);
        assert_eq!(store.row_count(t), 100, "physical universe unchanged");
        assert_eq!(store.live_rank(t, RowId(25)), 5);
        assert_eq!(store.select_live(t, 5).unwrap(), RowId(25));
        let minted = store
            .update_cell(t, purpose, RowId(25), &Value::Text("Zoster".into()))
            .unwrap();
        assert!(minted);
        assert_eq!(
            store.value(&scope, t, purpose, RowId(25)).unwrap(),
            Value::Text("Zoster".into())
        );
        // Value-exact predicate semantics over the overlay.
        assert!(store
            .matches_at(
                t,
                purpose,
                RowId(25),
                ScalarOp::Eq,
                &Value::Text("Zoster".into()),
                None
            )
            .unwrap());
        let scan = store
            .predicate_scan(
                &scope,
                t,
                purpose,
                ScalarOp::Eq,
                &Value::Text("Zoster".into()),
            )
            .unwrap();
        let got: Vec<u32> = scan.map(|r| r.unwrap().0).collect();
        assert_eq!(got, vec![25], "overlay match with a None base range");
        assert_eq!(store.total_pending_mutations(), 21);

        // Flush: dead rows dropped, survivors renumbered dense.
        let remaps = store.flush(&scope, &schema).unwrap();
        assert!(remaps.any_compaction());
        assert_eq!(remaps.map_id(t, 5), None, "dead row has no new id");
        assert_eq!(remaps.map_id(t, 25), Some(5));
        assert_eq!(store.base_rows(t), 80);
        assert_eq!(store.live_count(t), 80);
        assert_eq!(store.total_pending_mutations(), 0);
        // Old physical 25 is now row 5; its overlay merged, its date is
        // the original one.
        assert_eq!(
            store.value(&scope, t, purpose, RowId(5)).unwrap(),
            Value::Text("Zoster".into())
        );
        assert_eq!(
            store.value(&scope, t, date, RowId(5)).unwrap(),
            Value::Date(Date(10_025))
        );
        // "Zoster" is rank-encoded post-flush.
        let range = store
            .key_range(t, purpose, ScalarOp::Ge, &Value::Text("Zoster".into()))
            .unwrap()
            .unwrap();
        let scan = store.filter_scan(&scope, t, purpose, range).unwrap();
        let got: Vec<u32> = scan.map(|r| r.unwrap().0).collect();
        assert_eq!(got, vec![5]);
    }

    /// A dictionary string whose last referencing row died is dropped
    /// from the rebuilt dictionary, and its remap entry tells index
    /// compaction to drop the matching postings.
    #[test]
    fn flush_drops_dead_dictionary_strings() {
        let (volume, scope, schema, data) = setup();
        let (mut store, _) = HiddenStore::build(&volume, &scope, &schema, &data).unwrap();
        let t = TableId(0);
        let purpose = ColumnId(2);
        // Codes: Checkup=0, Diabetes=1, Flu=2, Sclerosis=3. Kill every
        // "Flu" row (setup assigns purposes round-robin, i % 4 == 2).
        let dead: Vec<u32> = (0..100).filter(|r| r % 4 == 2).collect();
        store.delete_rows_physical(t, &dead).unwrap();
        let remaps = store.flush(&scope, &schema).unwrap();
        let dict = remaps
            .dicts
            .iter()
            .find(|r| r.table.0 == t.0 && r.column.0 == purpose.0)
            .expect("purpose column rebuilt");
        assert_eq!(dict.map, vec![0, 1, u32::MAX, 2], "Flu's code dies");
        // The dictionary no longer answers for "Flu"...
        assert!(store
            .key_range(t, purpose, ScalarOp::Eq, &Value::Text("Flu".into()))
            .unwrap()
            .is_none());
        // ...the survivors re-ranked dense around the gap...
        let eq = store
            .key_range(t, purpose, ScalarOp::Eq, &Value::Text("Sclerosis".into()))
            .unwrap()
            .unwrap();
        assert_eq!((eq.lo, eq.hi), (2, 2));
        // ...and surviving rows still decode their strings.
        for (row, expect) in [(0u32, "Checkup"), (1, "Diabetes"), (2, "Sclerosis")] {
            assert_eq!(
                store.value(&scope, t, purpose, RowId(row)).unwrap(),
                Value::Text(expect.into())
            );
        }
    }

    /// Predicate translation between the logical and physical id spaces
    /// (PK and FK constants).
    #[test]
    fn physical_predicate_translation() {
        use ghostdb_catalog::Predicate;
        let mut b = SchemaBuilder::new();
        b.table("Parent", "pid")
            .foreign_key("cid", "Child", Visibility::Hidden);
        b.table("Child", "cid");
        let schema = b.build().unwrap();
        let mut data = Dataset::empty(&schema);
        for i in 0..4i64 {
            data.push_row(TableId(0), vec![Value::Int(i), Value::Int(i % 2)])
                .unwrap();
        }
        for i in 0..6i64 {
            data.push_row(TableId(1), vec![Value::Int(i)]).unwrap();
        }
        let cfg = FlashConfig {
            page_size: 256,
            pages_per_block: 8,
            num_blocks: 256,
            ..FlashConfig::default_2007()
        };
        let volume = Volume::new(Nand::new(cfg, SimClock::new()));
        let scope = RamScope::new(&RamBudget::new(64 * 1024));
        let (mut store, _) = HiddenStore::build(&volume, &scope, &schema, &data).unwrap();

        // Identity while everything is live.
        let p = Predicate::new(TableId(0), ColumnId(1), ScalarOp::Eq, Value::Int(1));
        assert_eq!(store.physical_predicate(&schema, &p), p);

        // Kill child physical 1: logical 1 now names physical 2.
        store.delete_rows_physical(TableId(1), &[1]).unwrap();
        let q = store.physical_predicate(&schema, &p);
        assert_eq!(q.value, Value::Int(2));
        // Attribute predicates pass through untouched; out-of-range
        // logicals land past the physical universe (monotone).
        let past = Predicate::new(TableId(0), ColumnId(1), ScalarOp::Lt, Value::Int(7));
        assert_eq!(
            store.physical_predicate(&schema, &past).value,
            Value::Int(6 + (7 - 5))
        );
    }

    #[test]
    fn key_range_helper_edges() {
        assert!(key_range_for(ScalarOp::Lt, 0, u64::MAX).is_none());
        assert!(key_range_for(ScalarOp::Gt, u64::MAX, u64::MAX).is_none());
        let r = key_range_for(ScalarOp::Le, 5, u64::MAX).unwrap();
        assert_eq!((r.lo, r.hi), (0, 5));
        assert!(r.contains(0) && r.contains(5) && !r.contains(6));
    }
}
