//! The device-resident hidden column store.
//!
//! Layouts (all on flash, all direct-addressed by dense row id):
//!
//! * `INTEGER` / `DATE` columns: 8-byte **order-preserving keys**
//!   ([`Value::order_key`]) at byte offset `row * 8`.
//! * `CHAR(n)` columns: an **order-preserving dictionary** (strings sorted
//!   lexicographically; code = rank) plus a codes segment with a 4-byte
//!   code at `row * 4`. The dictionary itself lives on flash — offsets
//!   segment (`u32` start offsets, one extra for the end) and a bytes
//!   segment — and is probed by on-flash binary search, because hidden
//!   values may not be cached in spyable host memory and the chip's RAM
//!   cannot hold a megabyte dictionary anyway.
//!
//! Every predicate over a hidden column reduces to a [`KeyRange`] over
//! this key space; the climbing indexes in `ghostdb-index` use the same
//! reduction, so scans and index probes are interchangeable plan
//! alternatives.
//!
//! Column segments are the volume's *long-lived* residents: they are
//! written once at load and then interleave with every query's temp
//! spills. All access goes through [`Volume::read_at`]/[`SegmentReader`]
//! logical pages, so the flash garbage collector is free to migrate a
//! column's pages when compacting the blocks around them — the store
//! never sees physical addresses.

use std::collections::HashMap;

use ghostdb_catalog::Schema;
use ghostdb_flash::{Segment, SegmentReader, Volume};
use ghostdb_ram::RamScope;
use ghostdb_types::{ColumnId, DataType, GhostError, Result, RowId, ScalarOp, TableId, Value};

use crate::dataset::Dataset;

/// Inclusive range of order keys matched by a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyRange {
    /// Smallest matching key.
    pub lo: u64,
    /// Largest matching key.
    pub hi: u64,
}

impl KeyRange {
    /// Membership test.
    #[inline]
    pub fn contains(&self, k: u64) -> bool {
        self.lo <= k && k <= self.hi
    }
}

/// Translate `op` + an exact key into a key range over a dense-ordered
/// key space (`None` = provably empty).
pub fn key_range_for(op: ScalarOp, key: u64, key_max: u64) -> Option<KeyRange> {
    match op {
        ScalarOp::Eq => Some(KeyRange { lo: key, hi: key }),
        ScalarOp::Lt => key.checked_sub(1).map(|hi| KeyRange { lo: 0, hi }),
        ScalarOp::Le => Some(KeyRange { lo: 0, hi: key }),
        ScalarOp::Gt => {
            if key >= key_max {
                None
            } else {
                Some(KeyRange {
                    lo: key + 1,
                    hi: key_max,
                })
            }
        }
        ScalarOp::Ge => Some(KeyRange {
            lo: key,
            hi: key_max,
        }),
    }
}

#[derive(Debug)]
enum ColumnStore {
    /// 8-byte order keys; decodes through `ty`.
    Fixed { ty: DataType, keys: Segment },
    /// Dictionary-coded text: 4-byte codes + on-flash dictionary.
    Dict {
        codes: Segment,
        offsets: Segment,
        bytes: Segment,
        entries: u32,
    },
}

#[derive(Debug)]
struct TableStore {
    rows: u32,
    /// Indexed by column id; `None` for visible columns (stored on the PC).
    columns: Vec<Option<ColumnStore>>,
}

/// In-memory value→key encoders, alive only during the secure bulk load
/// so the index builders can encode values without flash binary searches.
#[derive(Debug, Default)]
pub struct LoadEncoders {
    /// `dicts[table][column]` maps text → code for dictionary columns.
    dicts: HashMap<(u16, u16), HashMap<String, u32>>,
}

impl LoadEncoders {
    /// Order key of `value` in the given column's key space.
    pub fn key_of(&self, table: TableId, column: ColumnId, value: &Value) -> Result<u64> {
        if let Some(dict) = self.dicts.get(&(table.0, column.0)) {
            let s = value
                .as_text()
                .ok_or_else(|| GhostError::value("dict column expects text"))?;
            dict.get(s).map(|&c| c as u64).ok_or_else(|| {
                GhostError::corrupt(format!("value {s:?} missing from load dictionary"))
            })
        } else {
            value
                .order_key()
                .ok_or_else(|| GhostError::value("text value on a fixed-key column"))
        }
    }
}

/// The hidden half of the database, on device flash.
#[derive(Debug)]
pub struct HiddenStore {
    volume: Volume,
    tables: Vec<TableStore>,
}

impl HiddenStore {
    /// Bulk-load the hidden columns of `data` onto `volume` (secure
    /// setting). Returns the store and transient [`LoadEncoders`] for the
    /// index builders.
    pub fn build(
        volume: &Volume,
        scope: &RamScope,
        schema: &Schema,
        data: &Dataset,
    ) -> Result<(HiddenStore, LoadEncoders)> {
        let mut tables = Vec::with_capacity(schema.table_count());
        let mut encoders = LoadEncoders::default();
        for (ti, tdef) in schema.tables().iter().enumerate() {
            let tdata = &data.tables[ti];
            let mut columns = Vec::with_capacity(tdef.columns.len());
            for (ci, cdef) in tdef.columns.iter().enumerate() {
                if !cdef.visibility.is_hidden() {
                    columns.push(None);
                    continue;
                }
                let values = &tdata.columns[ci];
                let store = match cdef.ty {
                    DataType::Integer | DataType::Date => {
                        let mut w = volume.writer(scope)?;
                        for v in values {
                            let key = v.order_key().ok_or_else(|| {
                                GhostError::corrupt("non-numeric value in fixed column")
                            })?;
                            w.write(&key.to_le_bytes())?;
                        }
                        ColumnStore::Fixed {
                            ty: cdef.ty,
                            keys: w.finish()?,
                        }
                    }
                    DataType::Char(_) => {
                        // Order-preserving dictionary.
                        let mut uniq: Vec<&str> =
                            values.iter().filter_map(|v| v.as_text()).collect();
                        if uniq.len() != values.len() {
                            return Err(GhostError::corrupt("non-text value in CHAR column"));
                        }
                        uniq.sort_unstable();
                        uniq.dedup();
                        let code_of: HashMap<String, u32> = uniq
                            .iter()
                            .enumerate()
                            .map(|(i, s)| (s.to_string(), i as u32))
                            .collect();
                        let mut offsets = volume.writer(scope)?;
                        let mut bytes = volume.writer(scope)?;
                        let mut off = 0u32;
                        for s in &uniq {
                            offsets.write(&off.to_le_bytes())?;
                            bytes.write(s.as_bytes())?;
                            off += s.len() as u32;
                        }
                        offsets.write(&off.to_le_bytes())?;
                        let mut codes = volume.writer(scope)?;
                        for v in values {
                            let code = code_of[v.as_text().expect("checked text")];
                            codes.write(&code.to_le_bytes())?;
                        }
                        encoders.dicts.insert((ti as u16, ci as u16), code_of);
                        ColumnStore::Dict {
                            codes: codes.finish()?,
                            offsets: offsets.finish()?,
                            bytes: bytes.finish()?,
                            entries: uniq.len() as u32,
                        }
                    }
                };
                columns.push(Some(store));
            }
            tables.push(TableStore {
                rows: tdata.rows() as u32,
                columns,
            });
        }
        Ok((
            HiddenStore {
                volume: volume.clone(),
                tables,
            },
            encoders,
        ))
    }

    /// Number of rows in `table` (the replicated primary keys are dense,
    /// so the count is the whole key set).
    pub fn row_count(&self, table: TableId) -> u32 {
        self.tables.get(table.index()).map(|t| t.rows).unwrap_or(0)
    }

    fn store(&self, table: TableId, column: ColumnId) -> Result<&ColumnStore> {
        self.tables
            .get(table.index())
            .and_then(|t| t.columns.get(column.index()))
            .and_then(|c| c.as_ref())
            .ok_or_else(|| {
                GhostError::exec(format!(
                    "column {table}.{column} is not stored on the device"
                ))
            })
    }

    /// True if the device stores this column (i.e. it is hidden).
    pub fn has_column(&self, table: TableId, column: ColumnId) -> bool {
        self.store(table, column).is_ok()
    }

    /// Raw order key of one cell.
    pub fn key_at(&self, table: TableId, column: ColumnId, row: RowId) -> Result<u64> {
        match self.store(table, column)? {
            ColumnStore::Fixed { keys, .. } => {
                let mut buf = [0u8; 8];
                self.volume
                    .read_at(keys, row.index() as u64 * 8, &mut buf)?;
                Ok(u64::from_le_bytes(buf))
            }
            ColumnStore::Dict { codes, .. } => {
                let mut buf = [0u8; 4];
                self.volume
                    .read_at(codes, row.index() as u64 * 4, &mut buf)?;
                Ok(u32::from_le_bytes(buf) as u64)
            }
        }
    }

    fn dict_entry(&self, offsets: &Segment, bytes: &Segment, code: u32) -> Result<String> {
        let mut b = [0u8; 8];
        self.volume.read_at(offsets, code as u64 * 4, &mut b)?;
        let start = u32::from_le_bytes(b[0..4].try_into().expect("4B")) as usize;
        let end = u32::from_le_bytes(b[4..8].try_into().expect("4B")) as usize;
        let mut s = vec![0u8; end - start];
        if !s.is_empty() {
            self.volume.read_at(bytes, start as u64, &mut s)?;
        }
        String::from_utf8(s).map_err(|_| GhostError::corrupt("non-utf8 dictionary entry"))
    }

    /// Decode one cell back into a [`Value`].
    pub fn value(
        &self,
        _scope: &RamScope,
        table: TableId,
        column: ColumnId,
        row: RowId,
    ) -> Result<Value> {
        if row.0 >= self.row_count(table) {
            return Err(GhostError::exec(format!(
                "row {row} out of range for {table}"
            )));
        }
        match self.store(table, column)? {
            ColumnStore::Fixed { ty, keys } => {
                let mut buf = [0u8; 8];
                self.volume
                    .read_at(keys, row.index() as u64 * 8, &mut buf)?;
                Value::from_order_key(*ty, u64::from_le_bytes(buf))
            }
            ColumnStore::Dict {
                codes,
                offsets,
                bytes,
                ..
            } => {
                let mut buf = [0u8; 4];
                self.volume
                    .read_at(codes, row.index() as u64 * 4, &mut buf)?;
                let code = u32::from_le_bytes(buf);
                Ok(Value::Text(self.dict_entry(offsets, bytes, code)?))
            }
        }
    }

    /// Dictionary lower bound: the first code whose string is `>= probe`,
    /// plus whether that code is an exact match. Binary search over flash.
    fn dict_lower_bound(
        &self,
        offsets: &Segment,
        bytes: &Segment,
        entries: u32,
        probe: &str,
    ) -> Result<(u32, bool)> {
        let mut lo = 0u32;
        let mut hi = entries;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let s = self.dict_entry(offsets, bytes, mid)?;
            if s.as_str() < probe {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo < entries {
            let s = self.dict_entry(offsets, bytes, lo)?;
            Ok((lo, s == probe))
        } else {
            Ok((lo, false))
        }
    }

    /// Reduce `column OP value` to a [`KeyRange`] over the column's key
    /// space. `Ok(None)` means the predicate provably matches nothing.
    pub fn key_range(
        &self,
        table: TableId,
        column: ColumnId,
        op: ScalarOp,
        value: &Value,
    ) -> Result<Option<KeyRange>> {
        match self.store(table, column)? {
            ColumnStore::Fixed { ty, .. } => {
                if !ty.admits(value) {
                    return Err(GhostError::value(format!(
                        "predicate value {value} does not match column type {ty}"
                    )));
                }
                let key = value.order_key().expect("fixed types have keys");
                Ok(key_range_for(op, key, u64::MAX))
            }
            ColumnStore::Dict {
                offsets,
                bytes,
                entries,
                ..
            } => {
                let s = value
                    .as_text()
                    .ok_or_else(|| GhostError::value("CHAR column predicate needs a text value"))?;
                let n = *entries;
                if n == 0 {
                    return Ok(None);
                }
                let (lb, exact) = self.dict_lower_bound(offsets, bytes, n, s)?;
                let max = (n - 1) as u64;
                Ok(match op {
                    ScalarOp::Eq => exact.then_some(KeyRange {
                        lo: lb as u64,
                        hi: lb as u64,
                    }),
                    ScalarOp::Lt => (lb > 0).then_some(KeyRange {
                        lo: 0,
                        hi: lb as u64 - 1,
                    }),
                    ScalarOp::Le => {
                        let hi = if exact { lb as i64 } else { lb as i64 - 1 };
                        (hi >= 0).then_some(KeyRange {
                            lo: 0,
                            hi: hi as u64,
                        })
                    }
                    ScalarOp::Gt => {
                        let lo = if exact { lb as u64 + 1 } else { lb as u64 };
                        (lo <= max).then_some(KeyRange { lo, hi: max })
                    }
                    ScalarOp::Ge => ((lb as u64) <= max).then_some(KeyRange {
                        lo: lb as u64,
                        hi: max,
                    }),
                })
            }
        }
    }

    /// Stream every `(row id, order key)` of a stored column — the raw
    /// scan primitive under the index-free baselines (grace hash join).
    pub fn key_scan(&self, scope: &RamScope, table: TableId, column: ColumnId) -> Result<KeyScan> {
        let (reader, width) = match self.store(table, column)? {
            ColumnStore::Fixed { keys, .. } => (self.volume.reader(scope, keys)?, 8),
            ColumnStore::Dict { codes, .. } => (self.volume.reader(scope, codes)?, 4),
        };
        Ok(KeyScan {
            reader,
            width,
            next_row: 0,
            rows: self.row_count(table),
        })
    }

    /// Stream the row ids whose key falls in `range`, scanning the whole
    /// column off flash (the paper's index-free fallback).
    pub fn filter_scan(
        &self,
        scope: &RamScope,
        table: TableId,
        column: ColumnId,
        range: KeyRange,
    ) -> Result<FilterScan> {
        let (reader, width) = match self.store(table, column)? {
            ColumnStore::Fixed { keys, .. } => (self.volume.reader(scope, keys)?, 8),
            ColumnStore::Dict { codes, .. } => (self.volume.reader(scope, codes)?, 4),
        };
        Ok(FilterScan {
            reader,
            width,
            range,
            next_row: 0,
            rows: self.row_count(table),
            scanned: 0,
        })
    }
}

/// Raw `(row id, key)` scan over a stored column (see
/// [`HiddenStore::key_scan`]).
#[derive(Debug)]
pub struct KeyScan {
    reader: SegmentReader,
    width: usize,
    next_row: u32,
    rows: u32,
}

impl KeyScan {
    /// Next `(row id, order key)` pair, or `None` at end of column.
    pub fn next_entry(&mut self) -> Result<Option<(RowId, u64)>> {
        if self.next_row >= self.rows {
            return Ok(None);
        }
        let row = self.next_row;
        self.next_row += 1;
        let mut buf = [0u8; 8];
        self.reader.read_exact(&mut buf[..self.width])?;
        let key = if self.width == 8 {
            u64::from_le_bytes(buf)
        } else {
            u32::from_le_bytes(buf[..4].try_into().expect("4B")) as u64
        };
        Ok(Some((RowId(row), key)))
    }
}

/// Streaming filter over a hidden column (see
/// [`HiddenStore::filter_scan`]).
#[derive(Debug)]
pub struct FilterScan {
    reader: SegmentReader,
    width: usize,
    range: KeyRange,
    next_row: u32,
    rows: u32,
    scanned: u64,
}

impl FilterScan {
    /// Next matching row id, or `None` at end of column.
    pub fn next_id(&mut self) -> Result<Option<RowId>> {
        let mut buf = [0u8; 8];
        while self.next_row < self.rows {
            let row = self.next_row;
            self.next_row += 1;
            self.scanned += 1;
            self.reader.read_exact(&mut buf[..self.width])?;
            let key = if self.width == 8 {
                u64::from_le_bytes(buf)
            } else {
                u32::from_le_bytes(buf[..4].try_into().expect("4B")) as u64
            };
            if self.range.contains(key) {
                return Ok(Some(RowId(row)));
            }
        }
        Ok(None)
    }

    /// Rows examined so far (the per-operator "tuples processed" stat).
    pub fn scanned(&self) -> u64 {
        self.scanned
    }
}

impl Iterator for FilterScan {
    type Item = Result<RowId>;
    fn next(&mut self) -> Option<Self::Item> {
        self.next_id().transpose()
    }
}

impl ghostdb_types::IdStream for FilterScan {
    fn next_id(&mut self) -> Result<Option<RowId>> {
        FilterScan::next_id(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_catalog::{SchemaBuilder, Visibility};
    use ghostdb_flash::Nand;
    use ghostdb_ram::RamBudget;
    use ghostdb_types::{Date, FlashConfig, SimClock};

    fn setup() -> (Volume, RamScope, Schema, Dataset) {
        let cfg = FlashConfig {
            page_size: 256,
            pages_per_block: 8,
            num_blocks: 512,
            ..FlashConfig::default_2007()
        };
        let volume = Volume::new(Nand::new(cfg, SimClock::new()));
        let scope = RamScope::new(&RamBudget::new(64 * 1024));
        let mut b = SchemaBuilder::new();
        b.table("Visit", "VisID")
            .column("Date", DataType::Date, Visibility::Hidden)
            .column("Purpose", DataType::Char(20), Visibility::Hidden)
            .column("Weight", DataType::Integer, Visibility::Visible);
        let schema = b.build().unwrap();
        let purposes = ["Checkup", "Diabetes", "Flu", "Sclerosis"];
        let mut data = Dataset::empty(&schema);
        for i in 0..100i64 {
            data.push_row(
                TableId(0),
                vec![
                    Value::Int(i),
                    Value::Date(Date(10_000 + i as i32)),
                    Value::Text(purposes[(i % 4) as usize].to_string()),
                    Value::Int(50 + i),
                ],
            )
            .unwrap();
        }
        (volume, scope, schema, data)
    }

    fn build() -> (HiddenStore, LoadEncoders, RamScope) {
        let (volume, scope, schema, data) = setup();
        let (store, enc) = HiddenStore::build(&volume, &scope, &schema, &data).unwrap();
        (store, enc, scope)
    }

    #[test]
    fn fixed_values_roundtrip() {
        let (store, _, scope) = build();
        let v = store
            .value(&scope, TableId(0), ColumnId(1), RowId(42))
            .unwrap();
        assert_eq!(v, Value::Date(Date(10_042)));
    }

    #[test]
    fn dict_values_roundtrip() {
        let (store, _, scope) = build();
        for (row, expect) in [(0u32, "Checkup"), (1, "Diabetes"), (3, "Sclerosis")] {
            let v = store
                .value(&scope, TableId(0), ColumnId(2), RowId(row))
                .unwrap();
            assert_eq!(v, Value::Text(expect.into()));
        }
    }

    #[test]
    fn visible_columns_not_on_device() {
        let (store, _, scope) = build();
        assert!(!store.has_column(TableId(0), ColumnId(3)));
        assert!(store
            .value(&scope, TableId(0), ColumnId(3), RowId(0))
            .is_err());
    }

    #[test]
    fn key_ranges_fixed() {
        let (store, _, _) = build();
        let r = store
            .key_range(
                TableId(0),
                ColumnId(1),
                ScalarOp::Gt,
                &Value::Date(Date(10_050)),
            )
            .unwrap()
            .unwrap();
        let k51 = Value::Date(Date(10_051)).order_key().unwrap();
        assert_eq!(r.lo, k51);
        // Type mismatch rejected.
        assert!(store
            .key_range(TableId(0), ColumnId(1), ScalarOp::Eq, &Value::Int(1))
            .is_err());
    }

    #[test]
    fn key_ranges_dict() {
        let (store, _, _) = build();
        let t = TableId(0);
        let c = ColumnId(2);
        // Codes: Checkup=0, Diabetes=1, Flu=2, Sclerosis=3.
        let eq = store
            .key_range(t, c, ScalarOp::Eq, &Value::Text("Flu".into()))
            .unwrap()
            .unwrap();
        assert_eq!((eq.lo, eq.hi), (2, 2));
        assert!(store
            .key_range(t, c, ScalarOp::Eq, &Value::Text("Malaria".into()))
            .unwrap()
            .is_none());
        let lt = store
            .key_range(t, c, ScalarOp::Lt, &Value::Text("Flu".into()))
            .unwrap()
            .unwrap();
        assert_eq!((lt.lo, lt.hi), (0, 1));
        let ge = store
            .key_range(t, c, ScalarOp::Ge, &Value::Text("Emu".into()))
            .unwrap()
            .unwrap();
        assert_eq!((ge.lo, ge.hi), (2, 3));
        assert!(store
            .key_range(t, c, ScalarOp::Gt, &Value::Text("Sclerosis".into()))
            .unwrap()
            .is_none());
        let le = store
            .key_range(t, c, ScalarOp::Le, &Value::Text("Aardvark".into()))
            .unwrap();
        assert!(le.is_none());
    }

    #[test]
    fn filter_scan_matches_reference() {
        let (store, _, scope) = build();
        let range = store
            .key_range(
                TableId(0),
                ColumnId(2),
                ScalarOp::Eq,
                &Value::Text("Sclerosis".into()),
            )
            .unwrap()
            .unwrap();
        let scan = store
            .filter_scan(&scope, TableId(0), ColumnId(2), range)
            .unwrap();
        let got: Vec<u32> = scan.map(|r| r.unwrap().0).collect();
        let expect: Vec<u32> = (0..100).filter(|i| i % 4 == 3).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn filter_scan_counts_tuples() {
        let (store, _, scope) = build();
        let range = KeyRange { lo: 0, hi: 0 };
        let mut scan = store
            .filter_scan(&scope, TableId(0), ColumnId(2), range)
            .unwrap();
        while scan.next_id().unwrap().is_some() {}
        assert_eq!(scan.scanned(), 100);
    }

    #[test]
    fn encoders_match_store_keys() {
        let (store, enc, _) = build();
        let k = enc
            .key_of(TableId(0), ColumnId(2), &Value::Text("Flu".into()))
            .unwrap();
        assert_eq!(k, 2);
        let k = enc
            .key_of(TableId(0), ColumnId(1), &Value::Date(Date(10_007)))
            .unwrap();
        assert_eq!(store.key_at(TableId(0), ColumnId(1), RowId(7)).unwrap(), k);
        assert!(enc
            .key_of(TableId(0), ColumnId(2), &Value::Text("Nope".into()))
            .is_err());
    }

    #[test]
    fn key_range_helper_edges() {
        assert!(key_range_for(ScalarOp::Lt, 0, u64::MAX).is_none());
        assert!(key_range_for(ScalarOp::Gt, u64::MAX, u64::MAX).is_none());
        let r = key_range_for(ScalarOp::Le, 5, u64::MAX).unwrap();
        assert_eq!((r.lo, r.hi), (0, 5));
        assert!(r.contains(0) && r.contains(5) && !r.contains(6));
    }
}
