//! The PC-resident visible store.
//!
//! The PC (and/or public server) holds every **visible** column in plain
//! host memory — it is untrusted but resource-rich, so GhostDB delegates
//! visible selections and projections to it (paper §3: "delegate as much
//! work as possible to the PC and the server as long as this processing
//! does not compromise hidden data").
//!
//! By construction this type never sees a hidden value:
//! [`VisibleStore::build`] copies only columns declared visible. The
//! leak-freedom tests double-check by scanning its responses for hidden
//! sentinels.

use std::collections::BTreeSet;

use ghostdb_catalog::{ColumnRole, Schema};
use ghostdb_types::{ColumnId, GhostError, Result, RowId, ScalarOp, TableId, Value, Wire};

use crate::dataset::Dataset;

/// Visible columns of one table (index = column id; `None` = hidden,
/// stored on the device instead). `dead` mirrors the device's tombstone
/// set: the device announces deleted row ids (public information — row
/// identities, never hidden values) and the PC stops serving them until
/// the next compaction drops them physically.
#[derive(Debug, Default, Clone)]
struct VisibleTable {
    rows: u32,
    columns: Vec<Option<Vec<Value>>>,
    dead: BTreeSet<u32>,
}

/// The visible half of the database, held by the untrusted PC.
#[derive(Debug, Clone)]
pub struct VisibleStore {
    tables: Vec<VisibleTable>,
}

impl VisibleStore {
    /// Copy the visible columns out of `data`.
    pub fn build(schema: &Schema, data: &Dataset) -> Result<VisibleStore> {
        let mut tables = Vec::with_capacity(schema.table_count());
        for (ti, tdef) in schema.tables().iter().enumerate() {
            let tdata = &data.tables[ti];
            let mut columns = Vec::with_capacity(tdef.columns.len());
            for (ci, cdef) in tdef.columns.iter().enumerate() {
                if cdef.visibility.is_hidden() {
                    columns.push(None);
                } else {
                    columns.push(Some(tdata.columns[ci].clone()));
                }
            }
            tables.push(VisibleTable {
                rows: tdata.rows() as u32,
                columns,
                dead: BTreeSet::new(),
            });
        }
        Ok(VisibleStore { tables })
    }

    /// Rows in `table`.
    pub fn row_count(&self, table: TableId) -> u32 {
        self.tables.get(table.index()).map(|t| t.rows).unwrap_or(0)
    }

    /// Append the visible half of one inserted row. `values` holds
    /// `(column, value)` pairs for the visible columns; `row` must be
    /// the next dense row id (the PC tracks cardinality for its
    /// predicate evaluation, so the id sequence is checked).
    pub fn push_row(
        &mut self,
        table: TableId,
        row: RowId,
        values: &[(ColumnId, Value)],
    ) -> Result<()> {
        let t = self
            .tables
            .get_mut(table.index())
            .ok_or_else(|| GhostError::exec(format!("PC has no table {table}")))?;
        if row.0 != t.rows {
            return Err(GhostError::exec(format!(
                "append out of order: row {row}, PC holds {} rows",
                t.rows
            )));
        }
        for (c, v) in values {
            let col = t
                .columns
                .get_mut(c.index())
                .and_then(|c| c.as_mut())
                .ok_or_else(|| {
                    GhostError::exec(format!("PC does not hold column {table}.{c} (hidden?)"))
                })?;
            col.push(v.clone());
        }
        t.rows += 1;
        // Every visible column must have received a value (ragged
        // columns would desynchronize row ids).
        for (ci, col) in t.columns.iter().enumerate() {
            if let Some(col) = col {
                if col.len() != t.rows as usize {
                    return Err(GhostError::exec(format!(
                        "append missing value for visible column {table}.c{ci}"
                    )));
                }
            }
        }
        Ok(())
    }

    fn column(&self, table: TableId, column: ColumnId) -> Result<&[Value]> {
        self.tables
            .get(table.index())
            .and_then(|t| t.columns.get(column.index()))
            .and_then(|c| c.as_deref())
            .ok_or_else(|| {
                GhostError::exec(format!(
                    "PC does not hold column {table}.{column} (hidden?)"
                ))
            })
    }

    /// True if the PC holds this column.
    pub fn has_column(&self, table: TableId, column: ColumnId) -> bool {
        self.column(table, column).is_ok()
    }

    /// Evaluate a visible selection; returns matching **live** row ids
    /// ascending (rows announced dead via the delete protocol are
    /// skipped — they are no longer part of the public database).
    pub fn eval_predicate(
        &self,
        table: TableId,
        column: ColumnId,
        op: ScalarOp,
        value: &Value,
    ) -> Result<Vec<RowId>> {
        let col = self.column(table, column)?;
        let dead = &self.tables[table.index()].dead;
        let mut out = Vec::new();
        for (i, v) in col.iter().enumerate() {
            if dead.contains(&(i as u32)) {
                continue;
            }
            if op.matches(v, value)? {
                out.push(RowId(i as u32));
            }
        }
        Ok(out)
    }

    /// Fetch `(row id, value)` pairs of a visible column, ascending by
    /// row id, optionally restricted by a visible predicate on the same
    /// table. Dead rows are skipped. This answers the projection
    /// protocol's `FetchColumn`.
    pub fn fetch_column(
        &self,
        table: TableId,
        column: ColumnId,
        predicate: Option<(ColumnId, ScalarOp, &Value)>,
    ) -> Result<Vec<(RowId, Value)>> {
        let col = self.column(table, column)?;
        let filter_col = match &predicate {
            Some((c, _, _)) => Some(self.column(table, *c)?),
            None => None,
        };
        let dead = &self.tables[table.index()].dead;
        let mut out = Vec::new();
        for (i, v) in col.iter().enumerate() {
            if dead.contains(&(i as u32)) {
                continue;
            }
            if let (Some(fcol), Some((_, op, pv))) = (filter_col, &predicate) {
                if !op.matches(&fcol[i], pv)? {
                    continue;
                }
            }
            out.push((RowId(i as u32), v.clone()));
        }
        Ok(out)
    }

    /// Mark rows dead (the PC side of the delete protocol). Ids are the
    /// device's physical row ids; double deletes and out-of-range ids
    /// are protocol errors.
    pub fn delete_rows(&mut self, table: TableId, rows: &[RowId]) -> Result<()> {
        let t = self
            .tables
            .get_mut(table.index())
            .ok_or_else(|| GhostError::exec(format!("PC has no table {table}")))?;
        for r in rows {
            if r.0 >= t.rows || !t.dead.insert(r.0) {
                return Err(GhostError::exec(format!(
                    "delete of {table} row {r} is out of range or repeated"
                )));
            }
        }
        Ok(())
    }

    /// Overwrite the visible half of one updated row (the PC side of
    /// `UPDATE`). The row must be live.
    pub fn update_row(
        &mut self,
        table: TableId,
        row: RowId,
        values: &[(ColumnId, Value)],
    ) -> Result<()> {
        let t = self
            .tables
            .get_mut(table.index())
            .ok_or_else(|| GhostError::exec(format!("PC has no table {table}")))?;
        if row.0 >= t.rows || t.dead.contains(&row.0) {
            return Err(GhostError::exec(format!(
                "update of {table} row {row}: row is not live"
            )));
        }
        for (c, v) in values {
            let col = t
                .columns
                .get_mut(c.index())
                .and_then(|c| c.as_mut())
                .ok_or_else(|| {
                    GhostError::exec(format!("PC does not hold column {table}.{c} (hidden?)"))
                })?;
            col[row.index()] = v.clone();
        }
        Ok(())
    }

    /// Mirror the device's flush-time compaction: drop every dead row,
    /// renumber the survivors dense, and rewrite primary-key and
    /// foreign-key *values* to the new id space (the remaps are derived
    /// from the dead sets the delete protocol already announced — no new
    /// information crosses). Returns the compacted table ids.
    pub fn compact(&mut self, schema: &Schema) -> Result<Vec<TableId>> {
        let remaps: Vec<Option<Vec<u32>>> = self
            .tables
            .iter()
            .map(|t| {
                if t.dead.is_empty() {
                    return None;
                }
                let mut map = Vec::with_capacity(t.rows as usize);
                let mut next = 0u32;
                for i in 0..t.rows {
                    if t.dead.contains(&i) {
                        map.push(u32::MAX);
                    } else {
                        map.push(next);
                        next += 1;
                    }
                }
                Some(map)
            })
            .collect();
        let mut compacted = Vec::new();
        for (ti, tdef) in schema.tables().iter().enumerate() {
            let own = remaps[ti].as_ref();
            if own.is_some() {
                compacted.push(TableId(ti as u16));
            }
            for (ci, cdef) in tdef.columns.iter().enumerate() {
                let key_remap = match cdef.role {
                    ColumnRole::PrimaryKey => remaps[ti].as_ref(),
                    ColumnRole::ForeignKey(target) => remaps[target.index()].as_ref(),
                    ColumnRole::Attribute => None,
                };
                let table = &mut self.tables[ti];
                let Some(col) = table.columns[ci].as_mut() else {
                    continue;
                };
                let dead = &table.dead;
                let mut out = Vec::with_capacity(col.len() - dead.len());
                for (r, v) in col.iter().enumerate() {
                    if own.is_some() && dead.contains(&(r as u32)) {
                        continue;
                    }
                    out.push(match (key_remap, v.as_int()) {
                        (Some(m), Some(id)) => {
                            let n = m.get(id as usize).copied().filter(|&n| n != u32::MAX);
                            Value::Int(n.ok_or_else(|| {
                                GhostError::corrupt("live row references a deleted key")
                            })? as i64)
                        }
                        _ => v.clone(),
                    });
                }
                *col = out;
            }
            let t = &mut self.tables[ti];
            t.rows -= t.dead.len() as u32;
            t.dead.clear();
        }
        Ok(compacted)
    }
}

// --- durable-image codec -------------------------------------------------
//
// The PC's visible database persists on the PC's own storage in the
// paper's deployment — it is public data on a resource-rich host, so its
// durability is trivial there. The reproduction co-locates a snapshot of
// it inside the sealed device image so `GhostDb::mount(nand, config)`
// can rebuild the *whole* Figure 1 from the key alone. Encoding it with
// [`Wire`] is safe by construction: this store only ever holds columns
// declared visible (spy-observable anyway).

impl Wire for VisibleTable {
    fn encode(&self, out: &mut Vec<u8>) {
        self.rows.encode(out);
        self.columns.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let t = VisibleTable {
            rows: u32::decode(buf)?,
            columns: Vec::<Option<Vec<Value>>>::decode(buf)?,
            // Dead sets are transient: a seal always compacts first, so
            // the snapshot is all-live by construction.
            dead: BTreeSet::new(),
        };
        for c in t.columns.iter().flatten() {
            if c.len() != t.rows as usize {
                return Err(GhostError::corrupt(
                    "visible snapshot column length disagrees with row count",
                ));
            }
        }
        Ok(t)
    }
}

impl Wire for VisibleStore {
    fn encode(&self, out: &mut Vec<u8>) {
        self.tables.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok(VisibleStore {
            tables: Vec::<VisibleTable>::decode(buf)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_catalog::{SchemaBuilder, Visibility};
    use ghostdb_types::DataType;

    fn setup() -> VisibleStore {
        let mut b = SchemaBuilder::new();
        b.table("Medicine", "MedID")
            .column("Name", DataType::Char(20), Visibility::Visible)
            .column("Type", DataType::Char(20), Visibility::Visible)
            .column("Formula", DataType::Char(20), Visibility::Hidden);
        let schema = b.build().unwrap();
        let mut data = Dataset::empty(&schema);
        let types = ["Antibiotic", "Placebo"];
        for i in 0..10i64 {
            data.push_row(
                TableId(0),
                vec![
                    Value::Int(i),
                    Value::Text(format!("med{i}")),
                    Value::Text(types[(i % 2) as usize].into()),
                    Value::Text(format!("secret{i}")),
                ],
            )
            .unwrap();
        }
        VisibleStore::build(&schema, &data).unwrap()
    }

    #[test]
    fn predicate_evaluation() {
        let store = setup();
        let ids = store
            .eval_predicate(
                TableId(0),
                ColumnId(2),
                ScalarOp::Eq,
                &Value::Text("Antibiotic".into()),
            )
            .unwrap();
        assert_eq!(ids, (0..10).step_by(2).map(RowId).collect::<Vec<_>>());
    }

    #[test]
    fn hidden_columns_absent() {
        let store = setup();
        assert!(!store.has_column(TableId(0), ColumnId(3)));
        assert!(store
            .eval_predicate(
                TableId(0),
                ColumnId(3),
                ScalarOp::Eq,
                &Value::Text("secret1".into())
            )
            .is_err());
    }

    #[test]
    fn fetch_plain_and_filtered() {
        let store = setup();
        let all = store.fetch_column(TableId(0), ColumnId(1), None).unwrap();
        assert_eq!(all.len(), 10);
        assert_eq!(all[3], (RowId(3), Value::Text("med3".into())));
        let anti = Value::Text("Antibiotic".into());
        let filtered = store
            .fetch_column(
                TableId(0),
                ColumnId(1),
                Some((ColumnId(2), ScalarOp::Eq, &anti)),
            )
            .unwrap();
        assert_eq!(filtered.len(), 5);
        assert!(filtered.iter().all(|(id, _)| id.0 % 2 == 0));
        // Sorted ascending by row id.
        assert!(filtered.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn row_counts() {
        let store = setup();
        assert_eq!(store.row_count(TableId(0)), 10);
        assert_eq!(store.row_count(TableId(9)), 0);
    }
}
