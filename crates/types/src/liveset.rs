//! Row liveness: the per-table tombstone set behind `DELETE`/`UPDATE`.
//!
//! Every mutable structure in GhostDB addresses rows by **physical** id —
//! the dense position a row was given when it entered the store. Deletes
//! never renumber those ids in place (flash segments, SKTs and posting
//! lists are direct-addressed by them); instead each table keeps a
//! [`LiveSet`], a bitmap over its physical id space, and a delete simply
//! clears a bit. The **logical** id space the user sees — dense primary
//! keys over the *surviving* rows — is the rank space of this bitmap:
//!
//! * [`LiveSet::rank`] maps a physical id to its logical id (the number
//!   of live rows below it);
//! * [`LiveSet::select`] maps a logical id back to the physical row.
//!
//! Both are the identity while nothing is dead, so the insert-only fast
//! paths are untouched. A delta flush physically compacts the store
//! (dead rows dropped, survivors renumbered) and resets the set to
//! all-live over the new, smaller universe.
//!
//! [`LiveFilter`] is the stream face of the set: it drops dead ids out
//! of any ascending [`IdStream`] block-at-a-time, so the executor's
//! galloping merge pipeline stays vectorized while tombstones are
//! resident.

use crate::error::{GhostError, Result};
use crate::ids::RowId;
use crate::stream::{IdBlock, IdStream};
use crate::wire::Wire;

/// A liveness bitmap over a table's physical row ids, with rank/select
/// between the physical and logical (live-rank) id spaces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveSet {
    /// One bit per physical row; 1 = live.
    words: Vec<u64>,
    /// Physical universe size (live + dead).
    len: u32,
    /// Dead rows.
    dead: u32,
    /// `prefix[w]` = live rows in words `0..w` (kept fresh by mutators,
    /// so `rank`/`select` are O(1)-ish on `&self`).
    prefix: Vec<u32>,
}

impl Default for LiveSet {
    fn default() -> Self {
        LiveSet::new_full(0)
    }
}

impl LiveSet {
    /// An all-live set over `n` physical rows.
    pub fn new_full(n: u32) -> LiveSet {
        let words = n.div_ceil(64) as usize;
        let mut s = LiveSet {
            words: vec![u64::MAX; words],
            len: n,
            dead: 0,
            prefix: Vec::new(),
        };
        // Mask the tail word so popcounts stay exact.
        if !n.is_multiple_of(64) {
            if let Some(last) = s.words.last_mut() {
                *last = (1u64 << (n % 64)) - 1;
            }
        }
        s.rebuild_prefix();
        s
    }

    fn rebuild_prefix(&mut self) {
        self.prefix.clear();
        self.prefix.reserve(self.words.len() + 1);
        self.prefix.push(0);
        let mut acc = 0u32;
        for w in &self.words {
            acc += w.count_ones();
            self.prefix.push(acc);
        }
    }

    /// Physical universe size (live + dead rows).
    pub fn universe(&self) -> u32 {
        self.len
    }

    /// Live rows.
    pub fn live_count(&self) -> u32 {
        self.len - self.dead
    }

    /// Dead rows.
    pub fn dead_count(&self) -> u32 {
        self.dead
    }

    /// True when no row has been deleted (rank/select are the identity).
    pub fn all_live(&self) -> bool {
        self.dead == 0
    }

    /// Grow the universe by one live row (an insert); returns its
    /// physical id.
    pub fn push_live(&mut self) -> u32 {
        let id = self.len;
        self.len += 1;
        if id.is_multiple_of(64) {
            self.words.push(1);
            self.prefix
                .push(self.prefix.last().copied().unwrap_or(0) + 1);
        } else {
            *self.words.last_mut().expect("non-empty") |= 1u64 << (id % 64);
            *self.prefix.last_mut().expect("non-empty") += 1;
        }
        id
    }

    /// Is physical row `id` live? Out-of-range ids are dead.
    #[inline]
    pub fn is_live(&self, id: u32) -> bool {
        id < self.len && (self.words[(id / 64) as usize] >> (id % 64)) & 1 == 1
    }

    /// Kill a batch of physical rows. Errors if any id is out of range,
    /// already dead, or repeated in the batch (the callers validate
    /// against the live view, so a double kill is a bug upstream) —
    /// validated *before* any bit flips, so a failed call leaves the
    /// set untouched.
    pub fn kill_many(&mut self, ids: &[u32]) -> Result<()> {
        for (i, &id) in ids.iter().enumerate() {
            if !self.is_live(id) || ids[..i].contains(&id) {
                return Err(GhostError::exec(format!(
                    "row #{id} is not live (universe {}, {} dead)",
                    self.len, self.dead
                )));
            }
        }
        for &id in ids {
            self.words[(id / 64) as usize] &= !(1u64 << (id % 64));
            self.dead += 1;
        }
        self.rebuild_prefix();
        Ok(())
    }

    /// Logical id of physical row `id`: the number of live rows strictly
    /// below it. (Only meaningful for live rows, but defined for all.)
    #[inline]
    pub fn rank(&self, id: u32) -> u32 {
        if self.dead == 0 {
            return id.min(self.len);
        }
        let id = id.min(self.len);
        let w = (id / 64) as usize;
        let below = if id.is_multiple_of(64) {
            0
        } else {
            (self.words[w] & ((1u64 << (id % 64)) - 1)).count_ones()
        };
        self.prefix[w] + below
    }

    /// Physical id of the live row with logical id `rank`
    /// (`rank < live_count`).
    pub fn select(&self, rank: u32) -> Result<u32> {
        if rank >= self.live_count() {
            return Err(GhostError::exec(format!(
                "logical row #{rank} out of range ({} live rows)",
                self.live_count()
            )));
        }
        if self.dead == 0 {
            return Ok(rank);
        }
        // Find the word holding the (rank+1)-th live bit, then scan it.
        let w = self.prefix.partition_point(|&p| p <= rank) - 1;
        let mut remaining = rank - self.prefix[w];
        let mut word = self.words[w];
        loop {
            let bit = word.trailing_zeros();
            if remaining == 0 {
                return Ok(w as u32 * 64 + bit);
            }
            word &= word - 1;
            remaining -= 1;
        }
    }

    /// The physical→new-dense remap a compaction applies: live rows map
    /// to their rank, dead rows to `u32::MAX`.
    pub fn compaction_remap(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len as usize);
        let mut next = 0u32;
        for id in 0..self.len {
            if self.is_live(id) {
                out.push(next);
                next += 1;
            } else {
                out.push(u32::MAX);
            }
        }
        out
    }

    /// Iterate the live physical ids ascending.
    pub fn iter_live(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.len).filter(move |&i| self.is_live(i))
    }
}

impl Wire for LiveSet {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len.encode(out);
        self.words.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let len = u32::decode(buf)?;
        let words = Vec::<u64>::decode(buf)?;
        if words.len() != len.div_ceil(64) as usize {
            return Err(GhostError::corrupt("liveness bitmap length mismatch"));
        }
        if !len.is_multiple_of(64) {
            if let Some(last) = words.last() {
                if last & !((1u64 << (len % 64)) - 1) != 0 {
                    return Err(GhostError::corrupt("liveness bitmap tail bits set"));
                }
            }
        }
        let live: u32 = words.iter().map(|w| w.count_ones()).sum();
        let mut s = LiveSet {
            words,
            len,
            dead: len - live,
            prefix: Vec::new(),
        };
        s.rebuild_prefix();
        Ok(s)
    }
}

/// Drops dead ids out of an ascending [`IdStream`], block-at-a-time.
///
/// `next_block` pulls whole blocks from the inner stream and compacts
/// the live ids in place, so the batched pipeline above (Bloom probes,
/// SKT batches) keeps its per-block amortization; `seek_at_least`
/// forwards to the inner stream's galloping seek and only falls back to
/// scalar pulls across a (rare) run of dead ids.
#[derive(Debug)]
pub struct LiveFilter<'a, S> {
    inner: S,
    live: &'a LiveSet,
    scratch: IdBlock,
}

impl<'a, S: IdStream> LiveFilter<'a, S> {
    /// Filter `inner` through `live`.
    pub fn new(inner: S, live: &'a LiveSet) -> Self {
        LiveFilter {
            inner,
            live,
            scratch: IdBlock::new(),
        }
    }
}

impl<S: IdStream> IdStream for LiveFilter<'_, S> {
    fn next_id(&mut self) -> Result<Option<RowId>> {
        while let Some(id) = self.inner.next_id()? {
            if self.live.is_live(id.0) {
                return Ok(Some(id));
            }
        }
        Ok(None)
    }

    fn next_block(&mut self, block: &mut IdBlock) -> Result<()> {
        block.clear();
        loop {
            self.inner.next_block(&mut self.scratch)?;
            if self.scratch.is_empty() {
                return Ok(());
            }
            for &id in self.scratch.as_slice() {
                if self.live.is_live(id.0) {
                    block.push(id);
                }
            }
            if !block.is_empty() {
                return Ok(());
            }
        }
    }

    fn seek_at_least(&mut self, target: RowId) -> Result<Option<RowId>> {
        match self.inner.seek_at_least(target)? {
            None => Ok(None),
            Some(id) if self.live.is_live(id.0) => Ok(Some(id)),
            Some(_) => self.next_id(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, self.inner.size_hint().1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{collect_ids, VecIdStream};

    #[test]
    fn full_set_is_identity() {
        let s = LiveSet::new_full(100);
        assert!(s.all_live());
        assert_eq!(s.rank(42), 42);
        assert_eq!(s.select(42).unwrap(), 42);
        assert_eq!(s.live_count(), 100);
        assert!(s.is_live(99) && !s.is_live(100));
    }

    #[test]
    fn kill_rank_select_roundtrip() {
        let mut s = LiveSet::new_full(10);
        s.kill_many(&[0, 3, 7]).unwrap();
        assert_eq!(s.live_count(), 7);
        assert!(!s.is_live(3) && s.is_live(4));
        // Live physicals: 1,2,4,5,6,8,9 → logical 0..7.
        let live: Vec<u32> = s.iter_live().collect();
        assert_eq!(live, vec![1, 2, 4, 5, 6, 8, 9]);
        for (logical, &phys) in live.iter().enumerate() {
            assert_eq!(s.rank(phys), logical as u32, "rank of {phys}");
            assert_eq!(s.select(logical as u32).unwrap(), phys);
        }
        assert!(s.select(7).is_err());
        // Double kill is a caller bug.
        assert!(s.kill_many(&[3]).is_err());
        assert!(s.kill_many(&[10]).is_err());
    }

    #[test]
    fn push_live_extends_universe() {
        let mut s = LiveSet::new_full(63);
        s.kill_many(&[5]).unwrap();
        assert_eq!(s.push_live(), 63);
        assert_eq!(s.push_live(), 64); // crosses a word boundary
        assert_eq!(s.universe(), 65);
        assert_eq!(s.live_count(), 64);
        assert_eq!(s.rank(64), 63);
        assert_eq!(s.select(63).unwrap(), 64);
    }

    #[test]
    fn compaction_remap_matches_rank() {
        let mut s = LiveSet::new_full(6);
        s.kill_many(&[1, 4]).unwrap();
        assert_eq!(s.compaction_remap(), vec![0, u32::MAX, 1, 2, u32::MAX, 3]);
    }

    #[test]
    fn wire_roundtrip() {
        let mut s = LiveSet::new_full(130);
        s.kill_many(&[0, 64, 129]).unwrap();
        let bytes = s.to_bytes();
        let back: LiveSet = crate::wire::decode_all(&bytes).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.rank(129), 127);
    }

    #[test]
    fn live_filter_blocks_and_seeks() {
        let mut s = LiveSet::new_full(3000);
        let dead: Vec<u32> = (0..3000).filter(|i| i % 3 == 1).collect();
        s.kill_many(&dead).unwrap();
        let all: Vec<RowId> = (0..3000).map(RowId).collect();
        let mut f = LiveFilter::new(VecIdStream::new(all.clone()), &s);
        let got = collect_ids(&mut f).unwrap();
        let expect: Vec<RowId> = (0..3000).filter(|i| i % 3 != 1).map(RowId).collect();
        assert_eq!(got, expect);

        // Seek lands on the first live id >= target.
        let mut f = LiveFilter::new(VecIdStream::new(all), &s);
        assert_eq!(f.seek_at_least(RowId(4)).unwrap(), Some(RowId(5)));
        assert_eq!(f.next_id().unwrap(), Some(RowId(6)));
    }
}
