//! Streaming id-list abstraction.
//!
//! GhostDB's device-side operators exchange **ascending streams of row
//! ids** (climbing-index postings, delegated visible selections, merge
//! results). Streams keep RAM usage O(1): only the operators that
//! genuinely need materialization (Bloom build, external sort runs) hold
//! buffers, and those are charged to the RAM budget.
//!
//! Two pull granularities coexist:
//!
//! * **scalar** — [`IdStream::next_id`], one id per virtual call. Always
//!   available; simple operators and tests use it directly.
//! * **block-at-a-time** — [`IdStream::next_block`] fills an [`IdBlock`]
//!   (up to [`BLOCK_CAP`] ids) per virtual call, and
//!   [`IdStream::seek_at_least`] lets consumers skip runs of ids without
//!   touching them. The executor's hot merge → Bloom → SKT path runs on
//!   these; the default implementations fall back to `next_id` loops so
//!   scalar-only streams keep working unchanged.

use crate::error::Result;
use crate::ids::RowId;

/// Ids per [`IdBlock`]: 4 KiB of ids — big enough to amortize virtual
/// dispatch and per-block accounting to noise, small enough that a block
/// plus its consumers' state stays well inside the device RAM budget
/// (64 KB class hardware).
pub const BLOCK_CAP: usize = 1024;

/// A fixed-capacity buffer of ascending row ids, the unit of exchange of
/// the batched pipeline.
#[derive(Debug, Default, Clone)]
pub struct IdBlock {
    ids: Vec<RowId>,
}

impl IdBlock {
    /// An empty block with its full capacity preallocated.
    pub fn new() -> IdBlock {
        IdBlock {
            ids: Vec::with_capacity(BLOCK_CAP),
        }
    }

    /// Ids currently held.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when no ids are held.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// True when another [`push`](Self::push) would exceed [`BLOCK_CAP`].
    #[inline]
    pub fn is_full(&self) -> bool {
        self.ids.len() >= BLOCK_CAP
    }

    /// Drop all ids (capacity is retained).
    #[inline]
    pub fn clear(&mut self) {
        self.ids.clear();
    }

    /// Append an id. Capacity is debug-checked; ordering is the
    /// producing stream's contract (untrusted producers are validated by
    /// the consumers that persist their ids, so a violation surfaces as
    /// an error there rather than a panic here).
    #[inline]
    pub fn push(&mut self, id: RowId) {
        debug_assert!(self.ids.len() < BLOCK_CAP, "IdBlock overflow");
        self.ids.push(id);
    }

    /// Bulk-append from an ascending slice, up to capacity; returns how
    /// many ids were taken.
    #[inline]
    pub fn extend_from_slice(&mut self, ids: &[RowId]) -> usize {
        let take = ids.len().min(BLOCK_CAP - self.ids.len());
        debug_assert!(ids[..take].windows(2).all(|w| w[0] < w[1]));
        debug_assert!(
            take == 0 || self.ids.last().is_none_or(|&last| last < ids[0]),
            "IdBlock ids must ascend"
        );
        self.ids.extend_from_slice(&ids[..take]);
        take
    }

    /// The held ids, ascending.
    #[inline]
    pub fn as_slice(&self) -> &[RowId] {
        &self.ids
    }

    /// Keep only the ids the predicate accepts (in place, order
    /// preserved) — the primitive block-level filters compact with.
    #[inline]
    pub fn retain(&mut self, mut f: impl FnMut(RowId) -> bool) {
        self.ids.retain(|&id| f(id));
    }
}

/// A pull-based stream of row ids.
///
/// **Contract:** ids are yielded in **strictly ascending** order — no
/// duplicates — unless an implementation documents otherwise. Producers
/// that may see equal neighbours (posting unions, translations) must
/// deduplicate before yielding. All three pull methods share one cursor:
/// after `seek_at_least(t)` returns `Some(id)`, the ids below `id` are
/// gone and the next pull continues after `id`.
pub trait IdStream {
    /// The next id, or `None` at end of stream.
    fn next_id(&mut self) -> Result<Option<RowId>>;

    /// Fill `block` (cleared first) with up to [`BLOCK_CAP`] ids. An
    /// empty block afterwards means end of stream.
    ///
    /// The default loops [`next_id`](Self::next_id); implementations on
    /// the hot path override it with bulk copies/reads so the per-id
    /// virtual call, `Result` wrap, and bounds checks amortize across
    /// the block.
    fn next_block(&mut self, block: &mut IdBlock) -> Result<()> {
        block.clear();
        while !block.is_full() {
            match self.next_id()? {
                Some(id) => block.push(id),
                None => break,
            }
        }
        Ok(())
    }

    /// Discard ids `< target` and return the first id `>= target` (or
    /// `None` if the stream ends first).
    ///
    /// The default scans with [`next_id`](Self::next_id); seekable
    /// streams (in-memory vectors, flash posting lists) override it with
    /// galloping/binary search so a merge can skip whole pages.
    fn seek_at_least(&mut self, target: RowId) -> Result<Option<RowId>> {
        while let Some(id) = self.next_id()? {
            if id >= target {
                return Ok(Some(id));
            }
        }
        Ok(None)
    }

    /// `(lower, upper)` bounds on the ids still to come, mirroring
    /// [`Iterator::size_hint`]. Used as a capacity hint by
    /// [`collect_ids`].
    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, None)
    }
}

/// Boxed streams forward every method, so specialized `next_block` /
/// `seek_at_least` implementations survive type erasure.
impl<S: IdStream + ?Sized> IdStream for Box<S> {
    fn next_id(&mut self) -> Result<Option<RowId>> {
        (**self).next_id()
    }

    fn next_block(&mut self, block: &mut IdBlock) -> Result<()> {
        (**self).next_block(block)
    }

    fn seek_at_least(&mut self, target: RowId) -> Result<Option<RowId>> {
        (**self).seek_at_least(target)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (**self).size_hint()
    }
}

/// Forwards **only** [`IdStream::next_id`], forcing the default
/// (scalar) `next_block`/`seek_at_least` code paths. This is the
/// batched pipeline's correctness foil: wrapping any stream in
/// `ScalarFallback` must never change the id sequence.
#[derive(Debug)]
pub struct ScalarFallback<S>(pub S);

impl<S: IdStream> IdStream for ScalarFallback<S> {
    fn next_id(&mut self) -> Result<Option<RowId>> {
        self.0.next_id()
    }
}

/// Galloping (exponential) search: offset within `rest` of the first id
/// `>= target`. O(log distance) comparisons wherever the cursor lands.
#[inline]
fn gallop_offset(rest: &[RowId], target: RowId) -> usize {
    let mut hi = 1usize;
    while hi < rest.len() && rest[hi - 1] < target {
        hi *= 2;
    }
    let lo = hi / 2;
    let hi = hi.min(rest.len());
    lo + rest[lo..hi].partition_point(|&id| id < target)
}

/// A stream over an in-memory sorted vector (used for small lists and in
/// tests).
#[derive(Debug)]
pub struct VecIdStream {
    ids: Vec<RowId>,
    pos: usize,
}

impl VecIdStream {
    /// Wrap an ascending vector. Equal adjacent ids are tolerated and
    /// deduplicated here; descending pairs are a caller bug
    /// (debug-checked).
    pub fn new(mut ids: Vec<RowId>) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] <= w[1]), "ids must ascend");
        ids.dedup();
        VecIdStream { ids, pos: 0 }
    }
}

impl IdStream for VecIdStream {
    fn next_id(&mut self) -> Result<Option<RowId>> {
        let id = self.ids.get(self.pos).copied();
        if id.is_some() {
            self.pos += 1;
        }
        Ok(id)
    }

    fn next_block(&mut self, block: &mut IdBlock) -> Result<()> {
        block.clear();
        self.pos += block.extend_from_slice(&self.ids[self.pos..]);
        Ok(())
    }

    fn seek_at_least(&mut self, target: RowId) -> Result<Option<RowId>> {
        self.pos += gallop_offset(&self.ids[self.pos..], target);
        self.next_id()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.ids.len() - self.pos;
        (rest, Some(rest))
    }
}

/// A borrowed twin of [`VecIdStream`]: streams a strictly-ascending
/// slice without cloning it. O(1) to construct, so benchmarks (and any
/// caller re-running a merge over the same lists) pay for merging, not
/// for fixture copies.
#[derive(Debug)]
pub struct SliceIdStream<'a> {
    ids: &'a [RowId],
    pos: usize,
}

impl<'a> SliceIdStream<'a> {
    /// Wrap a strictly-ascending slice (debug-checked; unlike
    /// [`VecIdStream::new`] this cannot dedup, so equal neighbours are
    /// rejected too).
    pub fn new(ids: &'a [RowId]) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must ascend");
        SliceIdStream { ids, pos: 0 }
    }
}

impl IdStream for SliceIdStream<'_> {
    fn next_id(&mut self) -> Result<Option<RowId>> {
        let id = self.ids.get(self.pos).copied();
        if id.is_some() {
            self.pos += 1;
        }
        Ok(id)
    }

    fn next_block(&mut self, block: &mut IdBlock) -> Result<()> {
        block.clear();
        self.pos += block.extend_from_slice(&self.ids[self.pos..]);
        Ok(())
    }

    fn seek_at_least(&mut self, target: RowId) -> Result<Option<RowId>> {
        self.pos += gallop_offset(&self.ids[self.pos..], target);
        self.next_id()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.ids.len() - self.pos;
        (rest, Some(rest))
    }
}

/// Drain a stream into a vector (tests and small-list paths).
pub fn collect_ids(stream: &mut dyn IdStream) -> Result<Vec<RowId>> {
    let mut out = Vec::with_capacity(stream.size_hint().0);
    let mut block = IdBlock::new();
    loop {
        stream.next_block(&mut block)?;
        if block.is_empty() {
            return Ok(out);
        }
        out.extend_from_slice(block.as_slice());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<RowId> {
        v.iter().copied().map(RowId).collect()
    }

    #[test]
    fn vec_stream_yields_all() {
        let mut s = VecIdStream::new(ids(&[1, 5, 9]));
        let got = collect_ids(&mut s).unwrap();
        assert_eq!(got, ids(&[1, 5, 9]));
        assert!(s.next_id().unwrap().is_none());
    }

    #[test]
    fn empty_stream() {
        let mut s = VecIdStream::new(vec![]);
        assert!(s.next_id().unwrap().is_none());
        let mut b = IdBlock::new();
        s.next_block(&mut b).unwrap();
        assert!(b.is_empty());
    }

    #[test]
    fn equal_adjacent_ids_are_deduped() {
        let mut s = VecIdStream::new(ids(&[1, 1, 2, 5, 5, 5, 9]));
        assert_eq!(collect_ids(&mut s).unwrap(), ids(&[1, 2, 5, 9]));
    }

    #[test]
    fn blocks_split_long_streams() {
        let all: Vec<RowId> = (0..2_500u32).map(RowId).collect();
        let mut s = VecIdStream::new(all.clone());
        let mut b = IdBlock::new();
        s.next_block(&mut b).unwrap();
        assert_eq!(b.len(), BLOCK_CAP);
        assert_eq!(b.as_slice()[0], RowId(0));
        s.next_block(&mut b).unwrap();
        assert_eq!(b.len(), BLOCK_CAP);
        assert_eq!(b.as_slice()[0], RowId(BLOCK_CAP as u32));
        s.next_block(&mut b).unwrap();
        assert_eq!(b.len(), 2_500 - 2 * BLOCK_CAP);
        s.next_block(&mut b).unwrap();
        assert!(b.is_empty());
    }

    #[test]
    fn seek_at_least_edge_cases() {
        // Empty stream.
        let mut s = VecIdStream::new(vec![]);
        assert_eq!(s.seek_at_least(RowId(5)).unwrap(), None);

        // Seek past the end.
        let mut s = VecIdStream::new(ids(&[1, 2, 3]));
        assert_eq!(s.seek_at_least(RowId(10)).unwrap(), None);
        assert_eq!(s.next_id().unwrap(), None);

        // Seek to the current position is a plain pull.
        let mut s = VecIdStream::new(ids(&[4, 7, 9]));
        assert_eq!(s.seek_at_least(RowId(4)).unwrap(), Some(RowId(4)));
        assert_eq!(s.next_id().unwrap(), Some(RowId(7)));

        // Seek below the current position is also a plain pull.
        let mut s = VecIdStream::new(ids(&[4, 7, 9]));
        assert_eq!(s.seek_at_least(RowId(0)).unwrap(), Some(RowId(4)));

        // Seek between ids lands on the next one, consuming the skipped.
        let mut s = VecIdStream::new(ids(&[1, 3, 8, 12]));
        assert_eq!(s.seek_at_least(RowId(4)).unwrap(), Some(RowId(8)));
        assert_eq!(s.next_id().unwrap(), Some(RowId(12)));
    }

    #[test]
    fn seek_matches_scalar_fallback() {
        let v: Vec<RowId> = (0..800u32).map(|i| RowId(i * 3)).collect();
        for target in [0u32, 1, 2, 3, 500, 2_396, 2_397, 2_398, 5_000] {
            let mut fast = VecIdStream::new(v.clone());
            let mut slow = ScalarFallback(VecIdStream::new(v.clone()));
            assert_eq!(
                fast.seek_at_least(RowId(target)).unwrap(),
                slow.seek_at_least(RowId(target)).unwrap(),
                "seek {target}"
            );
            assert_eq!(fast.next_id().unwrap(), slow.next_id().unwrap());
        }
    }

    #[test]
    fn scalar_fallback_same_sequence() {
        let v: Vec<RowId> = (0..3_000u32).map(|i| RowId(i * 2)).collect();
        let mut fast = VecIdStream::new(v.clone());
        let mut slow = ScalarFallback(VecIdStream::new(v));
        assert_eq!(
            collect_ids(&mut fast).unwrap(),
            collect_ids(&mut slow).unwrap()
        );
    }

    #[test]
    fn collect_uses_size_hint() {
        let mut s = VecIdStream::new((0..100u32).map(RowId).collect());
        assert_eq!(s.size_hint(), (100, Some(100)));
        let _ = s.next_id().unwrap();
        assert_eq!(s.size_hint(), (99, Some(99)));
    }
}
