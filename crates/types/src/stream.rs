//! Streaming id-list abstraction.
//!
//! GhostDB's device-side operators exchange **ascending streams of row
//! ids** (climbing-index postings, delegated visible selections, merge
//! results). Streams keep RAM usage O(1): only the operators that
//! genuinely need materialization (Bloom build, external sort runs) hold
//! buffers, and those are charged to the RAM budget.

use crate::error::Result;
use crate::ids::RowId;

/// A pull-based stream of ascending row ids.
pub trait IdStream {
    /// The next id, or `None` at end of stream. Implementations yield ids
    /// in strictly ascending order unless documented otherwise.
    fn next_id(&mut self) -> Result<Option<RowId>>;
}

/// A stream over an in-memory sorted vector (used for small lists and in
/// tests).
#[derive(Debug)]
pub struct VecIdStream {
    ids: Vec<RowId>,
    pos: usize,
}

impl VecIdStream {
    /// Wrap a sorted vector.
    pub fn new(ids: Vec<RowId>) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must ascend");
        VecIdStream { ids, pos: 0 }
    }
}

impl IdStream for VecIdStream {
    fn next_id(&mut self) -> Result<Option<RowId>> {
        let id = self.ids.get(self.pos).copied();
        self.pos += 1;
        Ok(id)
    }
}

/// Drain a stream into a vector (tests and small-list paths).
pub fn collect_ids(stream: &mut dyn IdStream) -> Result<Vec<RowId>> {
    let mut out = Vec::new();
    while let Some(id) = stream.next_id()? {
        out.push(id);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_stream_yields_all() {
        let mut s = VecIdStream::new(vec![RowId(1), RowId(5), RowId(9)]);
        let got = collect_ids(&mut s).unwrap();
        assert_eq!(got, vec![RowId(1), RowId(5), RowId(9)]);
        assert!(s.next_id().unwrap().is_none());
    }

    #[test]
    fn empty_stream() {
        let mut s = VecIdStream::new(vec![]);
        assert!(s.next_id().unwrap().is_none());
    }
}
