//! Unified error type for the workspace.

use std::fmt;

/// Convenience alias used across every GhostDB crate.
pub type Result<T> = std::result::Result<T, GhostError>;

/// Errors surfaced by the GhostDB engine and its substrates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GhostError {
    /// The secure chip's RAM budget would be exceeded.
    OutOfDeviceRam {
        /// Bytes the operator asked for.
        requested: usize,
        /// Bytes still available under the budget.
        available: usize,
        /// Total budget, for context in messages.
        budget: usize,
    },
    /// NAND flash protocol violation or exhaustion (e.g. programming a
    /// non-erased page, address out of range, no free blocks).
    Flash(String),
    /// Malformed or inconsistent schema / catalog operation.
    Catalog(String),
    /// SQL lexing/parsing/binding failure, with a byte offset into the
    /// statement when known.
    Sql {
        /// Human-readable description.
        msg: String,
        /// Byte offset of the offending token, if known.
        pos: Option<usize>,
    },
    /// Query planning or execution failure.
    Exec(String),
    /// Channel protocol violation (unexpected message, oversized frame…).
    Bus(String),
    /// Value-level failure (type mismatch, malformed literal…).
    Value(String),
    /// Decoded bytes did not form a valid structure.
    Corrupt(String),
    /// Feature intentionally outside the reproduced SQL subset.
    Unsupported(String),
}

impl GhostError {
    /// Shorthand constructor for [`GhostError::Flash`].
    pub fn flash(msg: impl Into<String>) -> Self {
        GhostError::Flash(msg.into())
    }

    /// Shorthand constructor for [`GhostError::Catalog`].
    pub fn catalog(msg: impl Into<String>) -> Self {
        GhostError::Catalog(msg.into())
    }

    /// Shorthand constructor for [`GhostError::Exec`].
    pub fn exec(msg: impl Into<String>) -> Self {
        GhostError::Exec(msg.into())
    }

    /// Shorthand constructor for [`GhostError::Bus`].
    pub fn bus(msg: impl Into<String>) -> Self {
        GhostError::Bus(msg.into())
    }

    /// Shorthand constructor for [`GhostError::Value`].
    pub fn value(msg: impl Into<String>) -> Self {
        GhostError::Value(msg.into())
    }

    /// Shorthand constructor for [`GhostError::Corrupt`].
    pub fn corrupt(msg: impl Into<String>) -> Self {
        GhostError::Corrupt(msg.into())
    }

    /// Shorthand constructor for [`GhostError::Sql`] without a position.
    pub fn sql(msg: impl Into<String>) -> Self {
        GhostError::Sql {
            msg: msg.into(),
            pos: None,
        }
    }

    /// Shorthand constructor for [`GhostError::Sql`] with a byte offset.
    pub fn sql_at(msg: impl Into<String>, pos: usize) -> Self {
        GhostError::Sql {
            msg: msg.into(),
            pos: Some(pos),
        }
    }

    /// Shorthand constructor for [`GhostError::Unsupported`].
    pub fn unsupported(msg: impl Into<String>) -> Self {
        GhostError::Unsupported(msg.into())
    }
}

impl fmt::Display for GhostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GhostError::OutOfDeviceRam {
                requested,
                available,
                budget,
            } => write!(
                f,
                "out of device RAM: requested {requested} B, {available} B free of {budget} B budget"
            ),
            GhostError::Flash(m) => write!(f, "flash: {m}"),
            GhostError::Catalog(m) => write!(f, "catalog: {m}"),
            GhostError::Sql { msg, pos: Some(p) } => write!(f, "sql (at byte {p}): {msg}"),
            GhostError::Sql { msg, pos: None } => write!(f, "sql: {msg}"),
            GhostError::Exec(m) => write!(f, "exec: {m}"),
            GhostError::Bus(m) => write!(f, "bus: {m}"),
            GhostError::Value(m) => write!(f, "value: {m}"),
            GhostError::Corrupt(m) => write!(f, "corrupt data: {m}"),
            GhostError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for GhostError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = GhostError::OutOfDeviceRam {
            requested: 4096,
            available: 100,
            budget: 65536,
        };
        let s = e.to_string();
        assert!(s.contains("4096"));
        assert!(s.contains("65536"));

        let e = GhostError::sql_at("unexpected token", 17);
        assert!(e.to_string().contains("byte 17"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&GhostError::flash("x"));
    }
}
