//! Scalar values and data types of the SQL subset.
//!
//! The demo schema (paper Figure 3) uses three column types: `INTEGER`,
//! `DATE` and `CHAR(n)`. Values are self-describing so that the PC-side
//! visible store, the SQL binder and the result set can all share them;
//! on the device, string values are dictionary-encoded into fixed-width
//! codes before they ever reach flash (see `ghostdb-storage`).

use std::cmp::Ordering;
use std::fmt;

use crate::error::{GhostError, Result};

/// Column data types of the SQL subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (`INTEGER`).
    Integer,
    /// Calendar date (`DATE`), stored as days since 1970-01-01.
    Date,
    /// Fixed-capacity character string (`CHAR(n)`).
    Char(u16),
}

impl DataType {
    /// Whether a [`Value`] conforms to this type.
    pub fn admits(&self, v: &Value) -> bool {
        matches!(
            (self, v),
            (DataType::Integer, Value::Int(_))
                | (DataType::Date, Value::Date(_))
                | (DataType::Char(_), Value::Text(_))
        )
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Integer => write!(f, "INTEGER"),
            DataType::Date => write!(f, "DATE"),
            DataType::Char(n) => write!(f, "CHAR({n})"),
        }
    }
}

/// A calendar date, stored as days since the Unix epoch (1970-01-01).
///
/// The civil-calendar conversions use Howard Hinnant's `days_from_civil`
/// algorithm, valid across the proleptic Gregorian calendar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Date(pub i32);

impl Date {
    /// Build a date from a civil year/month/day triple.
    ///
    /// Returns an error if the month or day is out of range for the given
    /// year (leap years are handled).
    pub fn from_ymd(y: i32, m: u32, d: u32) -> Result<Date> {
        if !(1..=12).contains(&m) {
            return Err(GhostError::value(format!("month {m} out of range")));
        }
        let leap = (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
        let dim = [
            31,
            if leap { 29 } else { 28 },
            31,
            30,
            31,
            30,
            31,
            31,
            30,
            31,
            30,
            31,
        ][(m - 1) as usize];
        if d == 0 || d > dim {
            return Err(GhostError::value(format!(
                "day {d} out of range for {y}-{m:02}"
            )));
        }
        // days_from_civil (Howard Hinnant).
        let y = if m <= 2 { y - 1 } else { y } as i64;
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let mp = ((m as i64) + 9) % 12;
        let doy = (153 * mp + 2) / 5 + (d as i64) - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        Ok(Date((era * 146_097 + doe - 719_468) as i32))
    }

    /// Decompose into the civil (year, month, day) triple.
    pub fn to_ymd(self) -> (i32, u32, u32) {
        // civil_from_days (Howard Hinnant).
        let z = self.0 as i64 + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097;
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
        let y = if m <= 2 { y + 1 } else { y } as i32;
        (y, m, d)
    }

    /// Parse a date literal.
    ///
    /// Accepts ISO `YYYY-MM-DD` and the paper's `DD-MM-YYYY` form (the §4
    /// example query uses `05-11-2006`). A leading four-digit field selects
    /// the ISO interpretation.
    pub fn parse(s: &str) -> Result<Date> {
        let parts: Vec<&str> = s.split('-').collect();
        if parts.len() != 3 {
            return Err(GhostError::value(format!("malformed date literal {s:?}")));
        }
        let nums: Vec<i64> = parts
            .iter()
            .map(|p| {
                p.parse::<i64>()
                    .map_err(|_| GhostError::value(format!("malformed date literal {s:?}")))
            })
            .collect::<Result<_>>()?;
        if parts[0].len() == 4 {
            Date::from_ymd(nums[0] as i32, nums[1] as u32, nums[2] as u32)
        } else {
            Date::from_ymd(nums[2] as i32, nums[1] as u32, nums[0] as u32)
        }
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.to_ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

/// A scalar value of the SQL subset.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// Calendar date.
    Date(Date),
    /// Character string.
    Text(String),
}

impl Value {
    /// The data type this value conforms to (`Char` width is the string's
    /// own length; the catalog checks capacity separately).
    pub fn type_of(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Integer,
            Value::Date(_) => DataType::Date,
            Value::Text(s) => DataType::Char(s.len().min(u16::MAX as usize) as u16),
        }
    }

    /// Compare two values of the same type.
    ///
    /// Returns an error on a type mismatch — predicates are type-checked
    /// by the binder, so a mismatch here indicates a planner bug.
    pub fn cmp_same_type(&self, other: &Value) -> Result<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Ok(a.cmp(b)),
            (Value::Date(a), Value::Date(b)) => Ok(a.cmp(b)),
            (Value::Text(a), Value::Text(b)) => Ok(a.cmp(b)),
            _ => Err(GhostError::value(format!(
                "type mismatch comparing {self} with {other}"
            ))),
        }
    }

    /// Borrow the text payload, if this is a `Text` value.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Extract the integer payload, if this is an `Int` value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Extract the date payload, if this is a `Date` value.
    pub fn as_date(&self) -> Option<Date> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// A 64-bit order-preserving key for fixed-width device encodings.
    ///
    /// Integers and dates map onto their sign-flipped two's-complement
    /// representation so that unsigned comparison of keys equals value
    /// comparison; text values have no numeric key (they go through the
    /// dictionary) and return `None`.
    pub fn order_key(&self) -> Option<u64> {
        match self {
            Value::Int(v) => Some((*v as u64) ^ (1 << 63)),
            Value::Date(d) => Some(((d.0 as i64) as u64) ^ (1 << 63)),
            Value::Text(_) => None,
        }
    }

    /// Inverse of [`Value::order_key`] for a given type.
    pub fn from_order_key(ty: DataType, key: u64) -> Result<Value> {
        match ty {
            DataType::Integer => Ok(Value::Int((key ^ (1 << 63)) as i64)),
            DataType::Date => Ok(Value::Date(Date((key ^ (1 << 63)) as i64 as i32))),
            DataType::Char(_) => Err(GhostError::value(
                "CHAR values have no order key; use the dictionary".to_string(),
            )),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Date(d) => write!(f, "{d}"),
            Value::Text(s) => write!(f, "'{s}'"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_roundtrip_epoch() {
        let d = Date::from_ymd(1970, 1, 1).unwrap();
        assert_eq!(d.0, 0);
        assert_eq!(d.to_ymd(), (1970, 1, 1));
    }

    #[test]
    fn date_roundtrip_paper_literal() {
        // The §4 example query: Vis.Date > 05-11-2006 (DD-MM-YYYY).
        let d = Date::parse("05-11-2006").unwrap();
        assert_eq!(d.to_ymd(), (2006, 11, 5));
        let iso = Date::parse("2006-11-05").unwrap();
        assert_eq!(d, iso);
        assert_eq!(d.to_string(), "2006-11-05");
    }

    #[test]
    fn date_rejects_bad_components() {
        assert!(Date::from_ymd(2001, 13, 1).is_err());
        assert!(Date::from_ymd(2001, 2, 29).is_err());
        assert!(Date::from_ymd(2000, 2, 29).is_ok()); // leap year
        assert!(Date::parse("2001/01/01").is_err());
        assert!(Date::parse("01-01").is_err());
    }

    #[test]
    fn date_ordering_matches_calendar() {
        let a = Date::from_ymd(1999, 12, 31).unwrap();
        let b = Date::from_ymd(2000, 1, 1).unwrap();
        assert!(a < b);
        assert_eq!(b.0 - a.0, 1);
    }

    #[test]
    fn value_comparison_same_type() {
        assert_eq!(
            Value::Int(1).cmp_same_type(&Value::Int(2)).unwrap(),
            Ordering::Less
        );
        assert!(Value::Int(1)
            .cmp_same_type(&Value::Text("x".into()))
            .is_err());
    }

    #[test]
    fn order_key_preserves_order_for_ints() {
        let vals = [i64::MIN, -5, -1, 0, 1, 42, i64::MAX];
        for w in vals.windows(2) {
            let a = Value::Int(w[0]).order_key().unwrap();
            let b = Value::Int(w[1]).order_key().unwrap();
            assert!(a < b, "{} !< {}", w[0], w[1]);
        }
        for v in vals {
            let k = Value::Int(v).order_key().unwrap();
            assert_eq!(
                Value::from_order_key(DataType::Integer, k).unwrap(),
                Value::Int(v)
            );
        }
    }

    #[test]
    fn order_key_preserves_order_for_dates() {
        let a = Value::Date(Date(-400)).order_key().unwrap();
        let b = Value::Date(Date(0)).order_key().unwrap();
        let c = Value::Date(Date(13_000)).order_key().unwrap();
        assert!(a < b && b < c);
        assert_eq!(
            Value::from_order_key(DataType::Date, a).unwrap(),
            Value::Date(Date(-400))
        );
    }

    #[test]
    fn datatype_admits() {
        assert!(DataType::Integer.admits(&Value::Int(3)));
        assert!(DataType::Char(10).admits(&Value::Text("hi".into())));
        assert!(!DataType::Date.admits(&Value::Int(3)));
    }
}
