//! Deterministic simulated time.
//!
//! The paper's performance numbers come from the authors' software
//! simulator of the (then undelivered) Gemalto hardware. We follow the
//! same methodology: every substrate (flash, bus, CPU cost model) advances
//! a shared nanosecond counter, so "execution time" is a deterministic
//! function of the work performed — independent of the host machine. The
//! Criterion benches additionally report wall time of the simulation
//! itself.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point in simulated time, in nanoseconds since device power-on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Nanoseconds elapsed since `earlier` (saturating).
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

/// Render a nanosecond quantity with a human-friendly unit.
pub fn format_ns(ns: u64) -> String {
    if ns >= 10_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 10_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 10_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Shared simulated clock.
///
/// Cloning the handle shares the underlying counter: the flash simulator,
/// the bus and the executor all hold clones of the same clock so that the
/// total elapsed time reflects their combined (serialized) work. The smart
/// USB device is single-threaded — a 32-bit RISC secure chip — so serial
/// accumulation is the faithful model.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    ns: Arc<AtomicU64>,
}

impl SimClock {
    /// A fresh clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        SimTime(self.ns.load(Ordering::Relaxed))
    }

    /// Advance the clock by `ns` nanoseconds, returning the new time.
    pub fn advance(&self, ns: u64) -> SimTime {
        SimTime(self.ns.fetch_add(ns, Ordering::Relaxed) + ns)
    }

    /// Reset to t = 0 (used between benchmark iterations).
    pub fn reset(&self) {
        self.ns.store(0, Ordering::Relaxed);
    }

    /// True if `other` shares this clock's counter.
    pub fn same_clock(&self, other: &SimClock) -> bool {
        Arc::ptr_eq(&self.ns, &other.ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_time() {
        let c1 = SimClock::new();
        let c2 = c1.clone();
        c1.advance(100);
        c2.advance(50);
        assert_eq!(c1.now(), SimTime(150));
        assert!(c1.same_clock(&c2));
        assert!(!c1.same_clock(&SimClock::new()));
    }

    #[test]
    fn reset_zeroes() {
        let c = SimClock::new();
        c.advance(42);
        c.reset();
        assert_eq!(c.now(), SimTime(0));
    }

    #[test]
    fn formatting_units() {
        assert_eq!(format_ns(500), "500 ns");
        assert_eq!(format_ns(25_000), "25.00 us");
        assert_eq!(format_ns(12_000_000), "12.00 ms");
        assert_eq!(format_ns(25_000_000_000), "25.00 s");
    }

    #[test]
    fn since_saturates() {
        assert_eq!(SimTime(5).since(SimTime(10)), 0);
        assert_eq!(SimTime(10).since(SimTime(4)), 6);
    }
}
