//! Binary wire codec for everything that may legally cross the bus.
//!
//! GhostDB's security argument is structural: the only bytes on the
//! PC ↔ device link are (a) the query text and plan-derived requests going
//! out, and (b) visible data coming in. We enforce this in the type
//! system: bus messages are built exclusively from types implementing
//! [`Wire`], and the [`crate::Sealed`] wrapper around hidden data
//! deliberately does **not** implement it.
//!
//! The codec is little-endian, length-prefixed, and self-contained (no
//! external serialization dependency) — the whole point of reproducing a
//! 2007 embedded system is that the device-side format is fixed-width and
//! trivially parseable by a smartcard-class CPU.

use crate::error::{GhostError, Result};
use crate::ids::{ColumnId, RowId, TableId};
use crate::value::{DataType, Date, Value};

/// Types that can be encoded onto the untrusted PC ↔ device link.
pub trait Wire: Sized {
    /// Append the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decode one value from the front of `buf`, advancing it.
    fn decode(buf: &mut &[u8]) -> Result<Self>;

    /// Encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8]> {
    if buf.len() < n {
        return Err(GhostError::corrupt(format!(
            "wire underrun: need {n} bytes, have {}",
            buf.len()
        )));
    }
    let (head, tail) = buf.split_at(n);
    *buf = tail;
    Ok(head)
}

/// Decode a value and require the buffer to be fully consumed.
pub fn decode_all<T: Wire>(mut buf: &[u8]) -> Result<T> {
    let v = T::decode(&mut buf)?;
    if !buf.is_empty() {
        return Err(GhostError::corrupt(format!(
            "wire trailing garbage: {} bytes left",
            buf.len()
        )));
    }
    Ok(v)
}

macro_rules! wire_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(buf: &mut &[u8]) -> Result<Self> {
                let raw = take(buf, std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(raw.try_into().expect("sized take")))
            }
        }
    )*};
}

wire_int!(u8, u16, u32, u64, i32, i64);

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        match take(buf, 1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(GhostError::corrupt(format!("bool byte {b}"))),
        }
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let len = u32::decode(buf)? as usize;
        let raw = take(buf, len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| GhostError::corrupt("non-utf8 string"))
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        let len = u32::decode(buf)? as usize;
        // Guard against adversarial lengths: cap the pre-allocation.
        let mut v = Vec::with_capacity(len.min(1 << 16));
        for _ in 0..len {
            v.push(T::decode(buf)?);
        }
        Ok(v)
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        match take(buf, 1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(buf)?)),
            b => Err(GhostError::corrupt(format!("option tag {b}"))),
        }
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok((A::decode(buf)?, B::decode(buf)?))
    }
}

impl Wire for RowId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok(RowId(u32::decode(buf)?))
    }
}

impl Wire for TableId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok(TableId(u16::decode(buf)?))
    }
}

impl Wire for ColumnId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok(ColumnId(u16::decode(buf)?))
    }
}

impl Wire for Date {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        Ok(Date(i32::decode(buf)?))
    }
}

impl Wire for Value {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Value::Int(v) => {
                out.push(0);
                v.encode(out);
            }
            Value::Date(d) => {
                out.push(1);
                d.encode(out);
            }
            Value::Text(s) => {
                out.push(2);
                s.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        match take(buf, 1)?[0] {
            0 => Ok(Value::Int(i64::decode(buf)?)),
            1 => Ok(Value::Date(Date::decode(buf)?)),
            2 => Ok(Value::Text(String::decode(buf)?)),
            t => Err(GhostError::corrupt(format!("value tag {t}"))),
        }
    }
}

impl Wire for DataType {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            DataType::Integer => out.push(0),
            DataType::Date => out.push(1),
            DataType::Char(n) => {
                out.push(2);
                n.encode(out);
            }
        }
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        match take(buf, 1)?[0] {
            0 => Ok(DataType::Integer),
            1 => Ok(DataType::Date),
            2 => Ok(DataType::Char(u16::decode(buf)?)),
            t => Err(GhostError::corrupt(format!("datatype tag {t}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        let back: T = decode_all(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn primitive_roundtrips() {
        roundtrip(0u8);
        roundtrip(u16::MAX);
        roundtrip(123_456u32);
        roundtrip(u64::MAX - 1);
        roundtrip(-42i64);
        roundtrip(i32::MIN);
        roundtrip(true);
        roundtrip(String::from("hello ghost"));
        roundtrip(String::new());
    }

    #[test]
    fn composite_roundtrips() {
        roundtrip(vec![RowId(1), RowId(2), RowId(99)]);
        roundtrip(Option::<u32>::None);
        roundtrip(Some(RowId(7)));
        roundtrip((TableId(3), ColumnId(1)));
        roundtrip(vec![
            Value::Int(-9),
            Value::Text("Sclerosis".into()),
            Value::Date(Date(13_456)),
        ]);
        roundtrip(DataType::Char(100));
    }

    #[test]
    fn underrun_is_detected() {
        let bytes = 123_456u32.to_bytes();
        let mut short = &bytes[..2];
        assert!(u32::decode(&mut short).is_err());
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut bytes = 7u32.to_bytes();
        bytes.push(0xFF);
        assert!(decode_all::<u32>(&bytes).is_err());
    }

    #[test]
    fn bad_tags_are_detected() {
        assert!(decode_all::<bool>(&[9]).is_err());
        assert!(decode_all::<Value>(&[9]).is_err());
        assert!(decode_all::<Option<u8>>(&[7]).is_err());
    }

    #[test]
    fn non_utf8_string_rejected() {
        let mut bytes = Vec::new();
        2u32.encode(&mut bytes);
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        assert!(decode_all::<String>(&bytes).is_err());
    }
}
