//! Comparison operators of the SQL subset's predicates.

use std::cmp::Ordering;
use std::fmt;

use crate::error::Result;
use crate::value::Value;
use crate::wire::Wire;
use crate::GhostError;

/// A scalar comparison operator (`col OP constant`).
///
/// The paper's example query uses `=` and `>`; the reproduction supports
/// the full ordered set so range predicates can exercise the climbing
/// index's range probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarOp {
    /// Equality (`=`).
    Eq,
    /// Strictly less (`<`).
    Lt,
    /// Less or equal (`<=`).
    Le,
    /// Strictly greater (`>`).
    Gt,
    /// Greater or equal (`>=`).
    Ge,
}

impl ScalarOp {
    /// Evaluate `lhs OP rhs`; errors on a type mismatch.
    pub fn matches(self, lhs: &Value, rhs: &Value) -> Result<bool> {
        let ord = lhs.cmp_same_type(rhs)?;
        Ok(match self {
            ScalarOp::Eq => ord == Ordering::Equal,
            ScalarOp::Lt => ord == Ordering::Less,
            ScalarOp::Le => ord != Ordering::Greater,
            ScalarOp::Gt => ord == Ordering::Greater,
            ScalarOp::Ge => ord != Ordering::Less,
        })
    }

    /// The SQL spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            ScalarOp::Eq => "=",
            ScalarOp::Lt => "<",
            ScalarOp::Le => "<=",
            ScalarOp::Gt => ">",
            ScalarOp::Ge => ">=",
        }
    }
}

impl fmt::Display for ScalarOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// An aggregate function (`SELECT COUNT(*) / SUM(col) / ...`).
///
/// Aggregates over hidden columns fold entirely on the device: the bus
/// carries the operand rows' *identities* and visible halves only, and the
/// secure display receives group keys plus the folded scalars.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Row count (`COUNT(*)` or `COUNT(col)` — no NULLs in this model,
    /// so the two are identical).
    Count,
    /// Integer sum.
    Sum,
    /// Integer average, truncated toward zero.
    Avg,
    /// Minimum by value ordering.
    Min,
    /// Maximum by value ordering.
    Max,
}

impl AggFunc {
    /// The SQL spelling of the function.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }

    /// Parse a (case-insensitive) function name.
    pub fn parse(name: &str) -> Option<AggFunc> {
        Some(match name.to_ascii_uppercase().as_str() {
            "COUNT" => AggFunc::Count,
            "SUM" => AggFunc::Sum,
            "AVG" => AggFunc::Avg,
            "MIN" => AggFunc::Min,
            "MAX" => AggFunc::Max,
            _ => return None,
        })
    }

    /// True for SUM/AVG, which require an integer-ordered operand.
    pub fn needs_arithmetic(self) -> bool {
        matches!(self, AggFunc::Sum | AggFunc::Avg)
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Wire for ScalarOp {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(match self {
            ScalarOp::Eq => 0,
            ScalarOp::Lt => 1,
            ScalarOp::Le => 2,
            ScalarOp::Gt => 3,
            ScalarOp::Ge => 4,
        });
    }
    fn decode(buf: &mut &[u8]) -> Result<Self> {
        if buf.is_empty() {
            return Err(GhostError::corrupt("scalar op underrun"));
        }
        let tag = buf[0];
        *buf = &buf[1..];
        Ok(match tag {
            0 => ScalarOp::Eq,
            1 => ScalarOp::Lt,
            2 => ScalarOp::Le,
            3 => ScalarOp::Gt,
            4 => ScalarOp::Ge,
            t => return Err(GhostError::corrupt(format!("scalar op tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::decode_all;

    #[test]
    fn semantics() {
        let a = Value::Int(3);
        let b = Value::Int(5);
        assert!(ScalarOp::Lt.matches(&a, &b).unwrap());
        assert!(ScalarOp::Le.matches(&a, &a).unwrap());
        assert!(!ScalarOp::Gt.matches(&a, &b).unwrap());
        assert!(ScalarOp::Ge.matches(&b, &a).unwrap());
        assert!(ScalarOp::Eq.matches(&a, &a).unwrap());
        assert!(ScalarOp::Eq.matches(&a, &Value::Text("x".into())).is_err());
    }

    #[test]
    fn wire_roundtrip() {
        for op in [
            ScalarOp::Eq,
            ScalarOp::Lt,
            ScalarOp::Le,
            ScalarOp::Gt,
            ScalarOp::Ge,
        ] {
            let back: ScalarOp = decode_all(&op.to_bytes()).unwrap();
            assert_eq!(back, op);
        }
        assert!(decode_all::<ScalarOp>(&[9]).is_err());
    }

    #[test]
    fn symbols() {
        assert_eq!(ScalarOp::Ge.to_string(), ">=");
        assert_eq!(ScalarOp::Eq.symbol(), "=");
    }
}
