//! Common vocabulary types for the GhostDB reproduction.
//!
//! This crate defines the identifiers, scalar values, error type, hardware
//! cost model and wire codec shared by every other crate in the workspace.
//! It deliberately has **no dependencies**: everything above it (flash
//! simulator, bus, indexes, executor) speaks in terms of these types.
//!
//! The paper models a *smart USB device*: a tamper-resistant secure chip
//! (32-bit RISC, tens of KB of RAM) driving gigabytes of external NAND
//! flash, attached to an untrusted PC over USB 2.0 full speed. The
//! [`DeviceConfig`] in this crate captures exactly those constants so that
//! every experiment can sweep them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod config;
mod error;
mod ids;
mod liveset;
mod scalar;
mod sealed;
mod stream;
mod value;
mod wire;

pub use clock::{format_ns, SimClock, SimTime};
pub use config::{BusConfig, CpuConfig, DeviceConfig, FlashConfig};
pub use error::{GhostError, Result};
pub use ids::{ColumnId, RowId, TableId};
pub use liveset::{LiveFilter, LiveSet};
pub use scalar::{AggFunc, ScalarOp};
pub use sealed::{DisplayTicket, Sealed};
pub use stream::{
    collect_ids, IdBlock, IdStream, ScalarFallback, SliceIdStream, VecIdStream, BLOCK_CAP,
};
pub use value::{DataType, Date, Value};
pub use wire::{decode_all, Wire};
