//! Dense integer identifiers for tables, columns and rows.
//!
//! GhostDB replicates the primary keys of **all** tables on the secure
//! device so that queries combining visible and hidden data can be joined
//! on-device. We model primary keys as dense surrogate row identifiers
//! (`RowId`): row *i* of a table has id *i*. Dense ids make the Subtree Key
//! Tables directly addressable on flash (row id → byte offset), which is
//! the property the paper's index layout relies on.

use std::fmt;

/// Identifier of a table inside a schema (index into the catalog's table
/// list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TableId(pub u16);

/// Identifier of a column within its table (index into the table's column
/// list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnId(pub u16);

/// Dense per-table row identifier; doubles as the table's surrogate
/// primary key, replicated on the secure device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct RowId(pub u32);

impl TableId {
    /// The table id as a `usize`, for indexing catalog vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ColumnId {
    /// The column id as a `usize`, for indexing column vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl RowId {
    /// The row id as a `usize`, for direct-addressed lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Successor row id; used when iterating dense key ranges.
    #[inline]
    pub fn next(self) -> RowId {
        RowId(self.0 + 1)
    }
}

impl fmt::Display for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for ColumnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<u32> for RowId {
    fn from(v: u32) -> Self {
        RowId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_id_ordering_is_numeric() {
        assert!(RowId(3) < RowId(10));
        assert_eq!(RowId(4).next(), RowId(5));
        assert_eq!(RowId(7).index(), 7);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TableId(2).to_string(), "t2");
        assert_eq!(ColumnId(5).to_string(), "c5");
        assert_eq!(RowId(9).to_string(), "#9");
    }
}
