//! The anti-leak wrapper for hidden data.
//!
//! Anything read from a hidden column on the device is wrapped in
//! [`Sealed`]. `Sealed<T>` intentionally does **not** implement
//! [`crate::Wire`], so it is a *compile-time* error to place hidden data
//! inside a bus message — the Rust encoding of the paper's invariant that
//! "neither hidden data nor intermediate results ever leave the device".
//!
//! Results still have to reach the user: the device hands sealed values to
//! the *secure display* channel (paper §2 lists a device LCD, a trusted
//! palm screen, or a secure socket), which is modelled as a separate
//! endpoint excluded from the spy trace. Opening a sealed value requires a
//! [`DisplayTicket`], which only the secure-display endpoint mints.

use std::fmt;

/// Capability to open sealed values; minted only by the secure display
/// endpoint (see `ghostdb-bus`).
#[derive(Debug, Clone, Copy)]
pub struct DisplayTicket(());

impl DisplayTicket {
    /// Mint a ticket. Named loudly on purpose: calling this anywhere but a
    /// secure rendering path is a threat-model violation that code review
    /// (and the leak tests) will catch.
    pub fn secure_display_only() -> Self {
        DisplayTicket(())
    }
}

/// A value derived from hidden data. Cannot cross the untrusted bus.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Sealed<T>(T);

impl<T> Sealed<T> {
    /// Seal a hidden value on the device.
    pub fn new(value: T) -> Self {
        Sealed(value)
    }

    /// Open the value for secure rendering.
    pub fn open(self, _ticket: DisplayTicket) -> T {
        self.0
    }

    /// Borrow the value for on-device computation (never leaves the
    /// trusted boundary because the borrow cannot be encoded either).
    pub fn peek_on_device(&self) -> &T {
        &self.0
    }

    /// Map over the sealed value without unsealing it.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Sealed<U> {
        Sealed(f(self.0))
    }
}

/// Debug-printing a sealed value redacts its contents, so accidental
/// `{:?}` logging of hidden data cannot leak it either.
impl<T> fmt::Debug for Sealed<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sealed(<redacted>)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sealed_redacts_debug() {
        let s = Sealed::new("Sclerosis".to_string());
        assert_eq!(format!("{s:?}"), "Sealed(<redacted>)");
    }

    #[test]
    fn open_requires_ticket() {
        let s = Sealed::new(42);
        let t = DisplayTicket::secure_display_only();
        assert_eq!(s.open(t), 42);
    }

    #[test]
    fn map_keeps_seal() {
        let s = Sealed::new(21).map(|v| v * 2);
        assert_eq!(*s.peek_on_device(), 42);
    }
}
