//! Hardware cost model of the smart USB device (paper §3, Figure 2).
//!
//! The constants default to the platform the paper describes:
//!
//! * secure chip: 32-bit RISC, **64 KB** static RAM ("e.g., 64 KB"),
//! * external NAND flash, gigabyte-sized, with **writes 3–10× slower than
//!   reads** and no in-place writes (erase-before-program),
//! * **USB 2.0 full speed**: 12 Mb/s, with 480 Mb/s "envisioned for future
//!   platforms".
//!
//! Every figure-regeneration bench sweeps these knobs (experiment
//! `EXP-S3`), so they live here rather than being buried in the
//! substrates.

/// Geometry and timing of the simulated NAND flash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlashConfig {
    /// Bytes per flash page (unit of read/program).
    pub page_size: usize,
    /// Pages per erase block.
    pub pages_per_block: usize,
    /// Number of erase blocks in the part.
    pub num_blocks: usize,
    /// Fixed latency to open a page for reading (array-to-register), ns.
    pub read_latency_ns: u64,
    /// Serial transfer cost per byte read out of the page register, ns.
    /// This models the paper's observation that reading a single word is
    /// cheaper than a full page.
    pub read_byte_ns: u64,
    /// Fixed latency to program a page, ns.
    pub program_latency_ns: u64,
    /// Serial transfer cost per byte programmed, ns.
    pub program_byte_ns: u64,
    /// Cost of erasing one block, ns.
    pub erase_block_ns: u64,
    /// Garbage-collection trigger: when a segment writer needs a fresh
    /// erase block and the free list holds at most this many blocks, the
    /// volume runs a GC pass before allocating. `0` disables the
    /// allocation-time trigger (explicit `Volume::gc` calls still work).
    pub gc_low_watermark_blocks: usize,
    /// Upper bound on victim blocks migrated per GC pass, bounding the
    /// latency a single allocation can absorb.
    pub gc_max_victims_per_pass: usize,
    /// Erase blocks reserved per **metadata slot** at the head of the
    /// part. The durability layer keeps two slots (written alternately,
    /// so a power cut during one seal leaves the other intact); each
    /// slot must hold one serialized device image (superblock page +
    /// metadata segments + l2p table). `0` disables durability:
    /// `GhostDb::seal` fails cleanly and no blocks are reserved.
    pub meta_slot_blocks: usize,
    /// Erase blocks reserved for the flash-resident write-ahead log
    /// right after the two metadata slots. Each post-seal insert batch
    /// appends one WAL record; the region is erased when a delta flush
    /// seals a fresh image. `0` disables durability together with
    /// `meta_slot_blocks`.
    pub wal_blocks: usize,
    /// Store an out-of-band error-control codeword (CRC-32 detection +
    /// single-bit correction) in the tail of every programmed page. The
    /// usable page payload shrinks by the codeword size; every page
    /// fault verifies (and corrects) before data is served.
    pub ecc_enabled: bool,
    /// Cost of computing/checking the codeword, ns per byte covered
    /// (models a small hardware ECC engine on the secure chip).
    pub ecc_byte_ns: u64,
    /// Scrub trigger: once a physical page has needed this many
    /// corrected reads since it was programmed, the GC's scrub pass
    /// rewrites it to a fresh location before it rots past the
    /// single-bit correction budget. `0` disables scrubbing.
    pub scrub_threshold: u32,
    /// Grown-bad-block budget: how many blocks may be retired to the
    /// bad-block table before the volume reports the part worn out.
    pub spare_blocks: usize,
    /// Capacity, in raw flash pages, of the device-RAM page cache that
    /// mirrors recently faulted NAND pages. The engine charges the
    /// mirror's bytes (`page_cache_pages × raw page size`) to the
    /// device `RamBudget` when it opens the volume, so the secure
    /// chip's 64 KB invariant still binds — and clamps the capacity so
    /// the mirror never claims more than half of `ram_bytes` and the
    /// query operators keep at least 12 KiB of working space (tiny-RAM
    /// sweep configurations degrade instead of failing).
    /// `0` disables the cache and every page fault pays the full NAND
    /// transfer.
    pub page_cache_pages: usize,
}

impl FlashConfig {
    /// A 2007-era 1 Gbit-class NAND part: 2 KB pages, 64 pages/block.
    /// Full-page program ≈ 8.8× full-page read, inside the paper's 3–10×
    /// envelope.
    pub fn default_2007() -> Self {
        FlashConfig {
            page_size: 2048,
            pages_per_block: 64,
            num_blocks: 8192, // 1 GiB part
            read_latency_ns: 25_000,
            read_byte_ns: 30,
            program_latency_ns: 600_000,
            program_byte_ns: 30,
            erase_block_ns: 2_000_000,
            gc_low_watermark_blocks: 16,
            gc_max_victims_per_pass: 8,
            meta_slot_blocks: 8,
            wal_blocks: 8,
            ecc_enabled: true,
            ecc_byte_ns: 2,
            scrub_threshold: 2,
            spare_blocks: 64,
            // 16 raw pages ≈ 32 KiB of mirror: half the 64 KB device
            // RAM. A paper-scale point probe touches ~11 pages (index
            // climb + clustered matches), so a smaller mirror thrashes
            // on its own footprint; the query operators' sort/bloom/
            // batch buffers adapt to the remaining half.
            page_cache_pages: 16,
        }
    }

    /// Cost of computing or checking one page codeword covering `bytes`
    /// of payload, ns. Zero when ECC is disabled.
    pub fn ecc_cost_ns(&self, bytes: usize) -> u64 {
        if !self.ecc_enabled {
            return 0;
        }
        self.ecc_byte_ns * bytes as u64
    }

    /// Erase blocks the durability layer claims at the head of the part
    /// (two metadata slots plus the WAL region); the volume's
    /// log-structured store owns everything above. Zero when either
    /// knob disables durability.
    pub fn reserved_blocks(&self) -> usize {
        if self.meta_slot_blocks == 0 || self.wal_blocks == 0 {
            return 0;
        }
        2 * self.meta_slot_blocks + self.wal_blocks
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.page_size * self.pages_per_block * self.num_blocks
    }

    /// Cost of reading `bytes` from one page, ns.
    pub fn read_cost_ns(&self, bytes: usize) -> u64 {
        self.read_latency_ns + self.read_byte_ns * bytes as u64
    }

    /// Cost of programming `bytes` into one page, ns.
    pub fn program_cost_ns(&self, bytes: usize) -> u64 {
        self.program_latency_ns + self.program_byte_ns * bytes as u64
    }

    /// The full-page write/read cost ratio this configuration realizes.
    pub fn write_read_ratio(&self) -> f64 {
        self.program_cost_ns(self.page_size) as f64 / self.read_cost_ns(self.page_size) as f64
    }

    /// Derive a configuration with the given full-page write/read ratio
    /// (the paper quotes 3–10×), holding read costs fixed. Used by the
    /// `EXP-S3` hardware sweep.
    pub fn with_write_read_ratio(mut self, ratio: f64) -> Self {
        let read_full = self.read_cost_ns(self.page_size) as f64;
        let target_program = read_full * ratio;
        let byte_part = self.program_byte_ns * self.page_size as u64;
        self.program_latency_ns = (target_program as u64).saturating_sub(byte_part).max(1);
        self
    }
}

impl Default for FlashConfig {
    fn default() -> Self {
        Self::default_2007()
    }
}

/// Timing of the PC ↔ device link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusConfig {
    /// Raw link throughput in bits per second.
    pub bits_per_sec: u64,
    /// Maximum payload carried by one frame, bytes.
    pub frame_payload: usize,
    /// Fixed per-frame overhead (scheduling, handshake), ns.
    pub frame_overhead_ns: u64,
}

impl BusConfig {
    /// USB 2.0 full speed: 12 Mb/s, ~1 ms frame period amortized over
    /// bulk transfers.
    pub fn usb_full_speed() -> Self {
        BusConfig {
            bits_per_sec: 12_000_000,
            frame_payload: 4096,
            frame_overhead_ns: 50_000,
        }
    }

    /// USB 2.0 high speed: 480 Mb/s ("envisioned for future platforms").
    pub fn usb_high_speed() -> Self {
        BusConfig {
            bits_per_sec: 480_000_000,
            frame_payload: 16 * 1024,
            frame_overhead_ns: 10_000,
        }
    }

    /// Time to move `bytes` across the link, ns.
    pub fn transfer_cost_ns(&self, bytes: usize) -> u64 {
        if bytes == 0 {
            return 0;
        }
        let frames = bytes.div_ceil(self.frame_payload) as u64;
        let wire_ns = (bytes as u64 * 8).saturating_mul(1_000_000_000) / self.bits_per_sec;
        frames * self.frame_overhead_ns + wire_ns
    }
}

impl Default for BusConfig {
    fn default() -> Self {
        Self::usb_full_speed()
    }
}

/// CPU cost constants of the secure chip (32-bit RISC, ~50 MHz class).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuConfig {
    /// Cost of one per-tuple operation (comparison, move, id merge step), ns.
    pub tuple_op_ns: u64,
    /// Cost of one hash evaluation (Bloom filter probe/insert uses two), ns.
    pub hash_ns: u64,
}

impl CpuConfig {
    /// Defaults matching a ~50 MHz smartcard-class RISC core.
    pub fn default_2007() -> Self {
        CpuConfig {
            tuple_op_ns: 200,
            hash_ns: 400,
        }
    }
}

impl Default for CpuConfig {
    fn default() -> Self {
        Self::default_2007()
    }
}

/// Full device configuration: the tuple every experiment parameterizes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceConfig {
    /// Secure-chip RAM available to query operators, bytes.
    pub ram_bytes: usize,
    /// NAND flash geometry and timing.
    pub flash: FlashConfig,
    /// PC ↔ device link timing.
    pub bus: BusConfig,
    /// Secure-chip CPU cost constants.
    pub cpu: CpuConfig,
    /// Post-load write path: once the RAM-resident delta (rows inserted
    /// since the last flush, summed over all tables) reaches this many
    /// rows, the engine merges the deltas into rebuilt flash segments
    /// (the LSM-style flush). `0` disables the automatic trigger;
    /// explicit `flush_deltas` calls still work.
    pub delta_flush_rows: usize,
}

impl DeviceConfig {
    /// The paper's platform: 64 KB RAM, 2007 NAND, USB full speed.
    pub fn default_2007() -> Self {
        DeviceConfig {
            ram_bytes: 64 * 1024,
            flash: FlashConfig::default_2007(),
            bus: BusConfig::usb_full_speed(),
            cpu: CpuConfig::default_2007(),
            delta_flush_rows: 4096,
        }
    }

    /// Override the delta flush threshold (builder style).
    pub fn with_delta_flush_rows(mut self, rows: usize) -> Self {
        self.delta_flush_rows = rows;
        self
    }

    /// Override the RAM budget (builder style).
    pub fn with_ram(mut self, bytes: usize) -> Self {
        self.ram_bytes = bytes;
        self
    }

    /// Override the bus configuration (builder style).
    pub fn with_bus(mut self, bus: BusConfig) -> Self {
        self.bus = bus;
        self
    }

    /// Override the flash configuration (builder style).
    pub fn with_flash(mut self, flash: FlashConfig) -> Self {
        self.flash = flash;
        self
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        Self::default_2007()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flash_ratio_in_paper_envelope() {
        let f = FlashConfig::default_2007();
        let r = f.write_read_ratio();
        assert!((3.0..=10.0).contains(&r), "ratio {r} outside 3-10x");
    }

    #[test]
    fn flash_ratio_override() {
        for target in [3.0, 5.0, 10.0] {
            let f = FlashConfig::default_2007().with_write_read_ratio(target);
            let got = f.write_read_ratio();
            assert!(
                (got - target).abs() / target < 0.05,
                "target {target}, got {got}"
            );
        }
    }

    #[test]
    fn partial_page_read_is_cheaper() {
        let f = FlashConfig::default_2007();
        assert!(f.read_cost_ns(4) < f.read_cost_ns(f.page_size));
    }

    #[test]
    fn bus_full_speed_throughput() {
        let b = BusConfig::usb_full_speed();
        // 1.5 MB at 12 Mb/s is 1 s of wire time, plus frame overheads.
        let ns = b.transfer_cost_ns(1_500_000);
        assert!(ns >= 1_000_000_000);
        assert!(ns < 1_100_000_000);
        assert_eq!(b.transfer_cost_ns(0), 0);
    }

    #[test]
    fn high_speed_is_faster() {
        let full = BusConfig::usb_full_speed();
        let high = BusConfig::usb_high_speed();
        assert!(high.transfer_cost_ns(1 << 20) < full.transfer_cost_ns(1 << 20) / 10);
    }

    #[test]
    fn capacity_is_gigabyte_class() {
        let f = FlashConfig::default_2007();
        assert_eq!(f.capacity(), 1 << 30);
    }

    #[test]
    fn device_builders() {
        let d = DeviceConfig::default_2007()
            .with_ram(128 * 1024)
            .with_bus(BusConfig::usb_high_speed());
        assert_eq!(d.ram_bytes, 128 * 1024);
        assert_eq!(d.bus.bits_per_sec, 480_000_000);
    }
}
