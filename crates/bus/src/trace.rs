//! The transfer trace: everything a Trojan horse on the PC would capture.

use std::sync::{Arc, Mutex};

use ghostdb_types::{SimTime, Value, Wire};

use crate::message::Endpoint;

/// One frame observed on a link.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Monotonic sequence number (assigned by the trace).
    pub seq: u64,
    /// Simulated time at which the transfer completed.
    pub at: SimTime,
    /// Sender.
    pub from: Endpoint,
    /// Receiver.
    pub to: Endpoint,
    /// Message kind.
    pub kind: &'static str,
    /// One-line description.
    pub summary: String,
    /// Payload size in bytes.
    pub bytes: usize,
    /// Raw payload — present only for spy-visible (PC ↔ device) frames;
    /// `None` for secure-display deliveries.
    pub payload: Option<Vec<u8>>,
}

impl TraceEvent {
    /// Whether a spy on the PC can observe this frame's payload.
    pub fn spy_visible(&self) -> bool {
        self.payload.is_some()
    }
}

/// Shared, append-only log of bus activity.
#[derive(Debug, Clone, Default)]
pub struct BusTrace {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl BusTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record(&self, mut ev: TraceEvent) {
        let mut log = self.events.lock().expect("trace poisoned");
        ev.seq = log.len() as u64;
        log.push(ev);
    }

    /// Snapshot of every event (including secure-display deliveries).
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace poisoned").clone()
    }

    /// Snapshot of the frames a spy can capture (PC ↔ device only).
    pub fn spy_frames(&self) -> Vec<TraceEvent> {
        self.events()
            .into_iter()
            .filter(TraceEvent::spy_visible)
            .collect()
    }

    /// Forget all recorded events (between experiment phases).
    pub fn clear(&self) {
        self.events.lock().expect("trace poisoned").clear();
    }

    /// Total spy-visible payload bytes.
    pub fn spy_bytes(&self) -> u64 {
        self.spy_frames().iter().map(|e| e.bytes as u64).sum()
    }

    /// Search every spy-visible payload for the byte pattern `needle`.
    ///
    /// This is the primitive behind the leak-freedom tests: hidden-column
    /// sentinels must never match.
    pub fn spy_sees_bytes(&self, needle: &[u8]) -> bool {
        if needle.is_empty() {
            return false;
        }
        self.spy_frames().iter().any(|ev| {
            ev.payload
                .as_ref()
                .map(|p| p.windows(needle.len()).any(|w| w == needle))
                .unwrap_or(false)
        })
    }

    /// Search spy-visible payloads for a value, in both its wire encoding
    /// and (for text) its raw UTF-8 bytes.
    pub fn spy_sees_value(&self, value: &Value) -> bool {
        if self.spy_sees_bytes(&value.to_bytes()) {
            return true;
        }
        match value {
            Value::Text(s) => self.spy_sees_bytes(s.as_bytes()),
            Value::Int(i) => self.spy_sees_bytes(&i.to_le_bytes()),
            Value::Date(d) => self.spy_sees_bytes(&d.0.to_le_bytes()),
        }
    }

    /// Render the spy's view as a table (demo phase 1).
    pub fn spy_report(&self) -> String {
        let mut out =
            String::from("seq  time           dir            kind           bytes  summary\n");
        for ev in self.spy_frames() {
            let dir = format!("{:?} -> {:?}", ev.from, ev.to);
            out.push_str(&format!(
                "{:<4} {:<14} {:<14} {:<14} {:<6} {}\n",
                ev.seq,
                ev.at.to_string(),
                dir,
                ev.kind,
                ev.bytes,
                ev.summary
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(kind: &'static str, payload: Option<Vec<u8>>) -> TraceEvent {
        TraceEvent {
            seq: 0,
            at: SimTime(0),
            from: Endpoint::Pc,
            to: Endpoint::Device,
            kind,
            summary: format!("{kind} event"),
            bytes: payload.as_ref().map(|p| p.len()).unwrap_or(7),
            payload,
        }
    }

    #[test]
    fn sequence_numbers_are_assigned() {
        let t = BusTrace::new();
        t.record(event("A", Some(vec![1])));
        t.record(event("B", Some(vec![2])));
        let evs = t.events();
        assert_eq!(evs[0].seq, 0);
        assert_eq!(evs[1].seq, 1);
    }

    #[test]
    fn spy_filter_excludes_display() {
        let t = BusTrace::new();
        t.record(event("Query", Some(vec![1, 2, 3])));
        t.record(event("Result", None));
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.spy_frames().len(), 1);
        assert_eq!(t.spy_bytes(), 3);
    }

    #[test]
    fn byte_search_finds_patterns() {
        let t = BusTrace::new();
        t.record(event("Query", Some(b"hello Sclerosis world".to_vec())));
        assert!(t.spy_sees_bytes(b"Sclerosis"));
        assert!(!t.spy_sees_bytes(b"Diabetes"));
        assert!(!t.spy_sees_bytes(b""));
    }

    #[test]
    fn value_search_covers_raw_text() {
        let t = BusTrace::new();
        t.record(event("Query", Some(b"...Antibiotic...".to_vec())));
        assert!(t.spy_sees_value(&Value::Text("Antibiotic".into())));
        assert!(!t.spy_sees_value(&Value::Text("Placebo".into())));
    }

    #[test]
    fn hidden_payload_is_unsearchable() {
        let t = BusTrace::new();
        // A display event whose (hypothetical) payload contained a secret
        // is recorded without the payload.
        t.record(event("Result", None));
        assert!(!t.spy_sees_bytes(b"anything"));
    }

    #[test]
    fn clear_resets() {
        let t = BusTrace::new();
        t.record(event("Query", Some(vec![0])));
        t.clear();
        assert!(t.events().is_empty());
    }

    #[test]
    fn report_lists_frames() {
        let t = BusTrace::new();
        t.record(event("Query", Some(vec![1, 2])));
        let rep = t.spy_report();
        assert!(rep.contains("Query"));
        assert!(rep.contains("Query event"));
    }
}
