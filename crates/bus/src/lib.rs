//! The PC ↔ device ↔ display channel, with the spy's-eye trace.
//!
//! GhostDB's privacy guarantee (paper §2): "Bob reveals to a potential spy
//! only the queries he poses and the visible data he accesses." The bus
//! crate makes that guarantee *checkable*:
//!
//! * [`Message`] is the **complete** PC ↔ device protocol. Every variant
//!   carries either query-derived plan requests (device → PC) or visible
//!   data (PC → device). There is deliberately no variant that could carry
//!   hidden values toward the PC, and [`Bus::transmit`] rejects any
//!   message sent in the wrong direction ("data flows in only one
//!   direction: from public to private").
//! * Query results leave through [`Bus::present`], modelling the paper's
//!   *secure rendering platform* (device LCD / trusted screen / secure
//!   socket). Presented bytes never enter the spy-visible trace.
//! * [`BusTrace`] records every frame with its full payload exactly as a
//!   Trojan horse on the PC would capture it — this powers the demo's
//!   phase 1 ("see what is transferred...while running a query, the
//!   interface reveals what a pirate would observe") and the leak-freedom
//!   test suite, which plants sentinel values in hidden columns and greps
//!   the trace for them.
//!
//! Transfer costs follow [`BusConfig`] (USB 2.0 full speed by default)
//! and advance the shared simulated clock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod message;
mod trace;

pub use message::{Endpoint, Message};
pub use trace::{BusTrace, TraceEvent};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use ghostdb_obs::{Counter, Registry};
use ghostdb_types::{BusConfig, DisplayTicket, GhostError, Result, SimClock, Value, Wire};

/// Counters for one direction of the link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames sent.
    pub frames: u64,
    /// Payload bytes sent.
    pub bytes: u64,
}

/// Per-frame-kind registry counters, attached by the engine so every
/// transfer updates `ghostdb_bus_frames_total{kind=...}` and
/// `ghostdb_bus_bytes_total{kind=...}`. Counting frames and sizes is
/// exactly what the spy already measures, so nothing here widens the
/// observable surface.
#[derive(Debug)]
pub struct BusMetrics {
    per_kind: Vec<(&'static str, Counter, Counter)>,
}

impl BusMetrics {
    /// Pre-register counters for every protocol frame kind (plus the
    /// secure-display `Result` frames).
    pub fn new(registry: &Registry) -> Self {
        let per_kind = Message::KINDS
            .iter()
            .chain(&["Result"])
            .map(|&kind| {
                (
                    kind,
                    registry.counter(&format!("ghostdb_bus_frames_total{{kind=\"{kind}\"}}")),
                    registry.counter(&format!("ghostdb_bus_bytes_total{{kind=\"{kind}\"}}")),
                )
            })
            .collect();
        BusMetrics { per_kind }
    }

    fn record(&self, kind: &str, bytes: usize) {
        if let Some((_, frames, byte_ctr)) = self.per_kind.iter().find(|(k, _, _)| *k == kind) {
            frames.inc();
            byte_ctr.add(bytes as u64);
        }
    }
}

/// The simulated USB link plus the secure display path.
///
/// Cheap to clone; clones share the trace, clock and counters.
#[derive(Debug, Clone)]
pub struct Bus {
    config: BusConfig,
    clock: SimClock,
    trace: BusTrace,
    to_device: Arc<(AtomicU64, AtomicU64)>,
    to_pc: Arc<(AtomicU64, AtomicU64)>,
    to_display: Arc<(AtomicU64, AtomicU64)>,
    metrics: Arc<OnceLock<BusMetrics>>,
}

impl Bus {
    /// Create a bus with the given link timing, advancing `clock`.
    pub fn new(config: BusConfig, clock: SimClock) -> Self {
        Bus {
            config,
            clock,
            trace: BusTrace::new(),
            to_device: Arc::new(Default::default()),
            to_pc: Arc::new(Default::default()),
            to_display: Arc::new(Default::default()),
            metrics: Arc::new(OnceLock::new()),
        }
    }

    /// Attach registry-backed per-kind counters. A no-op if metrics are
    /// already attached; clones made before or after share them.
    pub fn attach_metrics(&self, metrics: BusMetrics) {
        let _ = self.metrics.set(metrics);
    }

    /// The link configuration.
    pub fn config(&self) -> &BusConfig {
        &self.config
    }

    /// The shared spy-visible trace.
    pub fn trace(&self) -> &BusTrace {
        &self.trace
    }

    /// Send a protocol message between the PC and the device.
    ///
    /// Returns the encoded payload size. Enforces the one-directional
    /// information-flow rules:
    ///
    /// * `Query`, `IdChunk`, `ColumnChunk` travel PC → device only
    ///   (visible data flowing *into* the trusted zone);
    /// * `EvalPredicate`, `FetchColumn`, `AppendVisible`, `DeleteRows`,
    ///   `UpdateVisible`, `CompactRows` travel device → PC only (plan
    ///   requests derived from the public query text, and the visible
    ///   halves / row-identity effects of post-load mutations);
    /// * nothing else exists, so hidden data has no vehicle.
    pub fn transmit(&self, from: Endpoint, to: Endpoint, msg: &Message) -> Result<usize> {
        let legal = match msg {
            Message::Query { .. } | Message::IdChunk { .. } | Message::ColumnChunk { .. } => {
                from == Endpoint::Pc && to == Endpoint::Device
            }
            Message::EvalPredicate { .. }
            | Message::FetchColumn { .. }
            | Message::AppendVisible { .. }
            | Message::DeleteRows { .. }
            | Message::UpdateVisible { .. }
            | Message::CompactRows { .. } => from == Endpoint::Device && to == Endpoint::Pc,
            Message::Error { .. } => {
                (from == Endpoint::Pc && to == Endpoint::Device)
                    || (from == Endpoint::Device && to == Endpoint::Pc)
            }
        };
        if !legal {
            return Err(GhostError::bus(format!(
                "illegal direction: {} may not travel {from:?} -> {to:?}",
                msg.kind()
            )));
        }
        let payload = msg.to_bytes();
        self.clock
            .advance(self.config.transfer_cost_ns(payload.len()));
        let ctr = if to == Endpoint::Device {
            &self.to_device
        } else {
            &self.to_pc
        };
        ctr.0.fetch_add(1, Ordering::Relaxed);
        ctr.1.fetch_add(payload.len() as u64, Ordering::Relaxed);
        let len = payload.len();
        if let Some(m) = self.metrics.get() {
            m.record(msg.kind(), len);
        }
        self.trace.record(TraceEvent {
            seq: 0, // assigned by the trace
            at: self.clock.now(),
            from,
            to,
            kind: msg.kind(),
            summary: msg.summary(),
            bytes: len,
            payload: Some(payload),
        });
        Ok(len)
    }

    /// Deliver result rows to the secure display.
    ///
    /// This is the only exit for values derived from hidden data. The
    /// trace records *that* a result of some size was rendered (the spy
    /// can see the screen light up, after all) but never the payload —
    /// the secure display is by definition outside the spy's reach.
    ///
    /// Returns the [`DisplayTicket`] that unseals
    /// [`ghostdb_types::Sealed`] values for rendering.
    pub fn present(&self, rows: &[Vec<Value>]) -> DisplayTicket {
        let mut encoded = Vec::new();
        for row in rows {
            for v in row {
                v.encode(&mut encoded);
            }
        }
        self.clock
            .advance(self.config.transfer_cost_ns(encoded.len()));
        self.to_display.0.fetch_add(1, Ordering::Relaxed);
        self.to_display
            .1
            .fetch_add(encoded.len() as u64, Ordering::Relaxed);
        if let Some(m) = self.metrics.get() {
            m.record("Result", encoded.len());
        }
        self.trace.record(TraceEvent {
            seq: 0,
            at: self.clock.now(),
            from: Endpoint::Device,
            to: Endpoint::Display,
            kind: "Result",
            summary: format!("{} row(s) to secure display", rows.len()),
            bytes: encoded.len(),
            payload: None, // never spy-visible
        });
        DisplayTicket::secure_display_only()
    }

    /// (frames, bytes) sent toward the device so far.
    pub fn stats_to_device(&self) -> LinkStats {
        LinkStats {
            frames: self.to_device.0.load(Ordering::Relaxed),
            bytes: self.to_device.1.load(Ordering::Relaxed),
        }
    }

    /// (frames, bytes) sent toward the PC so far.
    pub fn stats_to_pc(&self) -> LinkStats {
        LinkStats {
            frames: self.to_pc.0.load(Ordering::Relaxed),
            bytes: self.to_pc.1.load(Ordering::Relaxed),
        }
    }

    /// (frames, bytes) sent toward the secure display so far.
    pub fn stats_to_display(&self) -> LinkStats {
        LinkStats {
            frames: self.to_display.0.load(Ordering::Relaxed),
            bytes: self.to_display.1.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_types::{ColumnId, RowId, ScalarOp, TableId};

    fn bus() -> Bus {
        Bus::new(BusConfig::usb_full_speed(), SimClock::new())
    }

    #[test]
    fn legal_directions_pass() {
        let b = bus();
        b.transmit(
            Endpoint::Pc,
            Endpoint::Device,
            &Message::Query {
                sql: "SELECT 1".into(),
            },
        )
        .unwrap();
        b.transmit(
            Endpoint::Device,
            Endpoint::Pc,
            &Message::EvalPredicate {
                request: 1,
                table: TableId(0),
                column: ColumnId(1),
                op: ScalarOp::Gt,
                value: Value::Int(5),
            },
        )
        .unwrap();
        b.transmit(
            Endpoint::Pc,
            Endpoint::Device,
            &Message::IdChunk {
                request: 1,
                ids: vec![RowId(1), RowId(2)],
                done: true,
            },
        )
        .unwrap();
        assert_eq!(b.stats_to_device().frames, 2);
        assert_eq!(b.stats_to_pc().frames, 1);
    }

    #[test]
    fn illegal_directions_rejected() {
        let b = bus();
        // Visible data may not flow device -> PC even as an IdChunk.
        let err = b
            .transmit(
                Endpoint::Device,
                Endpoint::Pc,
                &Message::IdChunk {
                    request: 1,
                    ids: vec![RowId(9)],
                    done: true,
                },
            )
            .unwrap_err();
        assert!(err.to_string().contains("illegal direction"));
        // Plan requests may not flow PC -> device.
        assert!(b
            .transmit(
                Endpoint::Pc,
                Endpoint::Device,
                &Message::FetchColumn {
                    request: 2,
                    table: TableId(0),
                    column: ColumnId(0),
                    predicate: None,
                },
            )
            .is_err());
    }

    #[test]
    fn transfers_advance_clock() {
        let clock = SimClock::new();
        let b = Bus::new(BusConfig::usb_full_speed(), clock.clone());
        let big = Message::IdChunk {
            request: 0,
            ids: (0..10_000).map(RowId).collect(),
            done: true,
        };
        b.transmit(Endpoint::Pc, Endpoint::Device, &big).unwrap();
        // 40 KB over 12 Mb/s is ≥ 26 ms of wire time.
        assert!(clock.now().0 > 26_000_000, "clock {:?}", clock.now());
    }

    #[test]
    fn present_is_not_spy_visible() {
        let b = bus();
        let secret = Value::Text("Sclerosis".into());
        b.present(&[vec![secret.clone(), Value::Int(3)]]);
        assert_eq!(b.stats_to_display().frames, 1);
        assert!(b.stats_to_display().bytes > 0);
        assert!(
            !b.trace().spy_sees_value(&secret),
            "display payload leaked into spy trace"
        );
        // But the event itself is in the full trace.
        assert_eq!(b.trace().events().len(), 1);
    }

    #[test]
    fn spy_sees_visible_payloads() {
        let b = bus();
        let visible = Value::Text("Antibiotic".into());
        b.transmit(
            Endpoint::Device,
            Endpoint::Pc,
            &Message::EvalPredicate {
                request: 7,
                table: TableId(4),
                column: ColumnId(3),
                op: ScalarOp::Eq,
                value: visible.clone(),
            },
        )
        .unwrap();
        assert!(b.trace().spy_sees_value(&visible));
    }

    #[test]
    fn attached_metrics_count_frames_by_kind() {
        let b = bus();
        let registry = Registry::new();
        b.attach_metrics(BusMetrics::new(&registry));
        b.transmit(
            Endpoint::Pc,
            Endpoint::Device,
            &Message::Query {
                sql: "SELECT 1".into(),
            },
        )
        .unwrap();
        let clone = b.clone(); // clones share the attached metrics
        clone.present(&[vec![Value::Int(1)]]);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("ghostdb_bus_frames_total{kind=\"Query\"}"), 1);
        assert!(snap.counter("ghostdb_bus_bytes_total{kind=\"Query\"}") > 0);
        assert_eq!(snap.counter("ghostdb_bus_frames_total{kind=\"Result\"}"), 1);
        assert_eq!(
            snap.counter("ghostdb_bus_frames_total{kind=\"IdChunk\"}"),
            0
        );
    }

    #[test]
    fn error_messages_flow_both_ways() {
        let b = bus();
        let e = Message::Error {
            message: "no such column".into(),
        };
        b.transmit(Endpoint::Pc, Endpoint::Device, &e).unwrap();
        b.transmit(Endpoint::Device, Endpoint::Pc, &e).unwrap();
        assert!(b.transmit(Endpoint::Device, Endpoint::Display, &e).is_err());
    }
}
