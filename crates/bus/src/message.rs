//! The complete PC ↔ device wire protocol.

use ghostdb_types::{ColumnId, GhostError, Result, RowId, ScalarOp, TableId, Value, Wire};

/// The three parties of Figure 1: the untrusted PC/server, the smart USB
/// device, and the secure display.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// Untrusted terminal + public server (spy-observable).
    Pc,
    /// The tamper-resistant smart USB device.
    Device,
    /// The secure rendering platform (device LCD / trusted screen).
    Display,
}

/// A protocol message. Every variant is spy-readable by design — the
/// protocol *is* the paper's disclosure set: query text, plan-derived
/// requests, and visible data.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// The SQL text as posed by the user (PC → device).
    Query {
        /// Statement text.
        sql: String,
    },
    /// Ask the PC to evaluate a *visible* selection and stream back the
    /// matching row ids in ascending order (device → PC).
    EvalPredicate {
        /// Correlates the response chunks.
        request: u32,
        /// Table owning the visible column.
        table: TableId,
        /// The visible column.
        column: ColumnId,
        /// Comparison operator (from the query text).
        op: ScalarOp,
        /// Comparison constant (from the query text).
        value: Value,
    },
    /// A chunk of sorted row ids answering an [`Message::EvalPredicate`]
    /// (PC → device).
    IdChunk {
        /// Correlates with the request.
        request: u32,
        /// Ascending row ids.
        ids: Vec<RowId>,
        /// True on the final chunk.
        done: bool,
    },
    /// Ask the PC for `(row id, value)` pairs of a visible column, sorted
    /// by row id, optionally restricted to rows matching a visible
    /// predicate on the same table (device → PC). Used by the final
    /// projection.
    FetchColumn {
        /// Correlates the response chunks.
        request: u32,
        /// Table owning the visible column.
        table: TableId,
        /// The visible column to fetch.
        column: ColumnId,
        /// Optional visible restriction `(column, op, value)`.
        predicate: Option<(ColumnId, ScalarOp, Value)>,
    },
    /// A chunk of `(row id, value)` pairs answering a
    /// [`Message::FetchColumn`] (PC → device).
    ColumnChunk {
        /// Correlates with the request.
        request: u32,
        /// Pairs sorted by ascending row id.
        pairs: Vec<(RowId, Value)>,
        /// True on the final chunk.
        done: bool,
    },
    /// Push the **visible** half of one inserted row to the PC store
    /// (device → PC). Hidden values never ride this message: the insert
    /// itself enters through the device's secure port, and only the
    /// public columns are disclosed — the same visibility contract the
    /// query protocol keeps.
    AppendVisible {
        /// Table receiving the row.
        table: TableId,
        /// The new (public, dense) row id.
        row: RowId,
        /// `(column, value)` pairs for the visible columns only.
        values: Vec<(ColumnId, Value)>,
    },
    /// Announce that rows died (device → PC): the PC marks its visible
    /// halves dead and stops serving them. Only row **identities** cross
    /// — which hidden values (if any) motivated the delete never does,
    /// so the spy learns churn, not content.
    DeleteRows {
        /// Table losing the rows.
        table: TableId,
        /// The dead (physical) row ids.
        rows: Vec<RowId>,
    },
    /// Overwrite the visible half of one updated row on the PC
    /// (device → PC). Hidden-column rewrites never ride this message —
    /// they stay inside the device, exactly like inserted hidden values.
    UpdateVisible {
        /// Table owning the row.
        table: TableId,
        /// The (physical) row id.
        row: RowId,
        /// `(column, new value)` pairs for visible columns only.
        values: Vec<(ColumnId, Value)>,
    },
    /// Tell the PC a delta flush compacted these tables (device → PC):
    /// the PC drops its dead rows and renumbers, mirroring the device's
    /// flash compaction. Carries table ids only — the dead sets were
    /// already public via [`Message::DeleteRows`].
    CompactRows {
        /// The compacted tables.
        tables: Vec<TableId>,
    },
    /// Protocol-level failure notice (either direction).
    Error {
        /// Human-readable description.
        message: String,
    },
}

impl Message {
    /// Every protocol frame kind, in protocol order — the domain of
    /// [`kind`](Message::kind) (the secure-display `Result` pseudo-kind
    /// is separate: it never appears on the PC link).
    pub const KINDS: &'static [&'static str] = &[
        "Query",
        "EvalPredicate",
        "IdChunk",
        "FetchColumn",
        "ColumnChunk",
        "AppendVisible",
        "DeleteRows",
        "UpdateVisible",
        "CompactRows",
        "Error",
    ];

    /// Short stable name for traces and direction rules.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::Query { .. } => "Query",
            Message::EvalPredicate { .. } => "EvalPredicate",
            Message::IdChunk { .. } => "IdChunk",
            Message::FetchColumn { .. } => "FetchColumn",
            Message::ColumnChunk { .. } => "ColumnChunk",
            Message::AppendVisible { .. } => "AppendVisible",
            Message::DeleteRows { .. } => "DeleteRows",
            Message::UpdateVisible { .. } => "UpdateVisible",
            Message::CompactRows { .. } => "CompactRows",
            Message::Error { .. } => "Error",
        }
    }

    /// One-line human description for the spy view.
    pub fn summary(&self) -> String {
        match self {
            Message::Query { sql } => format!("query: {sql}"),
            Message::EvalPredicate {
                table,
                column,
                op,
                value,
                ..
            } => format!("eval {table}.{column} {op} {value}"),
            Message::IdChunk { ids, done, .. } => {
                format!("{} id(s){}", ids.len(), if *done { " (final)" } else { "" })
            }
            Message::FetchColumn {
                table,
                column,
                predicate,
                ..
            } => match predicate {
                Some((c, op, v)) => format!("fetch {table}.{column} where {c} {op} {v}"),
                None => format!("fetch {table}.{column}"),
            },
            Message::ColumnChunk { pairs, done, .. } => format!(
                "{} (id,value) pair(s){}",
                pairs.len(),
                if *done { " (final)" } else { "" }
            ),
            Message::AppendVisible { table, row, values } => {
                let cols: Vec<String> = values.iter().map(|(c, v)| format!("{c} = {v}")).collect();
                format!("append {table} row {row}: {}", cols.join(", "))
            }
            Message::DeleteRows { table, rows } => {
                format!("delete {} row(s) of {table}", rows.len())
            }
            Message::UpdateVisible { table, row, values } => {
                let cols: Vec<String> = values.iter().map(|(c, v)| format!("{c} = {v}")).collect();
                format!("update {table} row {row}: {}", cols.join(", "))
            }
            Message::CompactRows { tables } => {
                let ts: Vec<String> = tables.iter().map(|t| t.to_string()).collect();
                format!("compact table(s) {}", ts.join(", "))
            }
            Message::Error { message } => format!("error: {message}"),
        }
    }
}

impl Wire for Message {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Message::Query { sql } => {
                out.push(0);
                sql.encode(out);
            }
            Message::EvalPredicate {
                request,
                table,
                column,
                op,
                value,
            } => {
                out.push(1);
                request.encode(out);
                table.encode(out);
                column.encode(out);
                op.encode(out);
                value.encode(out);
            }
            Message::IdChunk { request, ids, done } => {
                out.push(2);
                request.encode(out);
                ids.encode(out);
                done.encode(out);
            }
            Message::FetchColumn {
                request,
                table,
                column,
                predicate,
            } => {
                out.push(3);
                request.encode(out);
                table.encode(out);
                column.encode(out);
                match predicate {
                    None => out.push(0),
                    Some((c, op, v)) => {
                        out.push(1);
                        c.encode(out);
                        op.encode(out);
                        v.encode(out);
                    }
                }
            }
            Message::ColumnChunk {
                request,
                pairs,
                done,
            } => {
                out.push(4);
                request.encode(out);
                pairs.encode(out);
                done.encode(out);
            }
            Message::AppendVisible { table, row, values } => {
                out.push(6);
                table.encode(out);
                row.encode(out);
                values.encode(out);
            }
            Message::DeleteRows { table, rows } => {
                out.push(7);
                table.encode(out);
                rows.encode(out);
            }
            Message::UpdateVisible { table, row, values } => {
                out.push(8);
                table.encode(out);
                row.encode(out);
                values.encode(out);
            }
            Message::CompactRows { tables } => {
                out.push(9);
                tables.encode(out);
            }
            Message::Error { message } => {
                out.push(5);
                message.encode(out);
            }
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<Self> {
        if buf.is_empty() {
            return Err(GhostError::corrupt("message underrun"));
        }
        let tag = buf[0];
        *buf = &buf[1..];
        Ok(match tag {
            0 => Message::Query {
                sql: String::decode(buf)?,
            },
            1 => Message::EvalPredicate {
                request: u32::decode(buf)?,
                table: TableId::decode(buf)?,
                column: ColumnId::decode(buf)?,
                op: ScalarOp::decode(buf)?,
                value: Value::decode(buf)?,
            },
            2 => Message::IdChunk {
                request: u32::decode(buf)?,
                ids: Vec::<RowId>::decode(buf)?,
                done: bool::decode(buf)?,
            },
            3 => {
                let request = u32::decode(buf)?;
                let table = TableId::decode(buf)?;
                let column = ColumnId::decode(buf)?;
                let predicate = match u8::decode(buf)? {
                    0 => None,
                    1 => Some((
                        ColumnId::decode(buf)?,
                        ScalarOp::decode(buf)?,
                        Value::decode(buf)?,
                    )),
                    t => return Err(GhostError::corrupt(format!("predicate tag {t}"))),
                };
                Message::FetchColumn {
                    request,
                    table,
                    column,
                    predicate,
                }
            }
            4 => Message::ColumnChunk {
                request: u32::decode(buf)?,
                pairs: Vec::<(RowId, Value)>::decode(buf)?,
                done: bool::decode(buf)?,
            },
            5 => Message::Error {
                message: String::decode(buf)?,
            },
            6 => Message::AppendVisible {
                table: TableId::decode(buf)?,
                row: RowId::decode(buf)?,
                values: Vec::<(ColumnId, Value)>::decode(buf)?,
            },
            7 => Message::DeleteRows {
                table: TableId::decode(buf)?,
                rows: Vec::<RowId>::decode(buf)?,
            },
            8 => Message::UpdateVisible {
                table: TableId::decode(buf)?,
                row: RowId::decode(buf)?,
                values: Vec::<(ColumnId, Value)>::decode(buf)?,
            },
            9 => Message::CompactRows {
                tables: Vec::<TableId>::decode(buf)?,
            },
            t => return Err(GhostError::corrupt(format!("message tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ghostdb_types::decode_all;

    fn roundtrip(m: Message) {
        let bytes = m.to_bytes();
        let back: Message = decode_all(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(Message::Query {
            sql: "SELECT Med.Name FROM Medicine Med".into(),
        });
        roundtrip(Message::EvalPredicate {
            request: 42,
            table: TableId(1),
            column: ColumnId(2),
            op: ScalarOp::Gt,
            value: Value::Int(100),
        });
        roundtrip(Message::IdChunk {
            request: 42,
            ids: vec![RowId(0), RowId(5), RowId(1000)],
            done: false,
        });
        roundtrip(Message::FetchColumn {
            request: 9,
            table: TableId(0),
            column: ColumnId(1),
            predicate: Some((ColumnId(3), ScalarOp::Eq, Value::Text("Antibiotic".into()))),
        });
        roundtrip(Message::FetchColumn {
            request: 9,
            table: TableId(0),
            column: ColumnId(1),
            predicate: None,
        });
        roundtrip(Message::ColumnChunk {
            request: 9,
            pairs: vec![
                (RowId(1), Value::Int(5)),
                (RowId(2), Value::Text("x".into())),
            ],
            done: true,
        });
        roundtrip(Message::Error {
            message: "boom".into(),
        });
        roundtrip(Message::AppendVisible {
            table: TableId(1),
            row: RowId(400),
            values: vec![
                (ColumnId(1), Value::Int(7)),
                (ColumnId(2), Value::Text("public".into())),
            ],
        });
        roundtrip(Message::DeleteRows {
            table: TableId(2),
            rows: vec![RowId(3), RowId(17)],
        });
        roundtrip(Message::UpdateVisible {
            table: TableId(0),
            row: RowId(9),
            values: vec![(ColumnId(1), Value::Int(42))],
        });
        roundtrip(Message::CompactRows {
            tables: vec![TableId(0), TableId(3)],
        });
    }

    #[test]
    fn summaries_are_informative() {
        let m = Message::EvalPredicate {
            request: 1,
            table: TableId(2),
            column: ColumnId(3),
            op: ScalarOp::Eq,
            value: Value::Text("Antibiotic".into()),
        };
        assert!(m.summary().contains("Antibiotic"));
        assert_eq!(m.kind(), "EvalPredicate");
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(decode_all::<Message>(&[99]).is_err());
    }
}
