//! Per-statement execution traces: a span tree behind a recorder that
//! costs one relaxed atomic load when disabled.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// One node of a trace tree. Times are host-side nanoseconds relative
/// to the trace root (the simulated device time a phase consumed rides
/// in `attrs`, e.g. `sim_ns`). Attribute payloads are intentionally
/// numeric only — a span can carry counts, times and sizes, never
/// column values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Span {
    /// Phase or operator name (`parse`, `bind`, `plan`, `execute`,
    /// `merge-intersect`, ...).
    pub name: String,
    /// Free-form qualifier (plan label, predicate rendering, ...).
    pub detail: String,
    /// Start offset from the trace root, host ns.
    pub start_ns: u64,
    /// End offset from the trace root, host ns.
    pub end_ns: u64,
    /// Numeric attributes: `(key, value)` pairs.
    pub attrs: Vec<(&'static str, u64)>,
    /// Child spans, in execution order.
    pub children: Vec<Span>,
}

impl Span {
    /// A span covering `start_ns..end_ns`.
    pub fn new(name: impl Into<String>, start_ns: u64, end_ns: u64) -> Self {
        Span {
            name: name.into(),
            start_ns,
            end_ns,
            ..Span::default()
        }
    }

    /// Wall-clock duration of this span.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Look up a numeric attribute.
    pub fn attr(&self, key: &str) -> Option<u64> {
        self.attrs
            .iter()
            .find_map(|(k, v)| (*k == key).then_some(*v))
    }

    /// Depth-first search for a descendant (or self) by name.
    pub fn find(&self, name: &str) -> Option<&Span> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Render the tree, one line per span with indentation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!("{} [{} ns]", self.name, self.duration_ns()));
        if !self.detail.is_empty() {
            out.push_str(&format!(" {}", self.detail));
        }
        for (k, v) in &self.attrs {
            out.push_str(&format!(" {k}={v}"));
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }
}

/// The flight recorder: holds the last completed statement trace.
///
/// Disabled by default. Instrument sites must guard span construction
/// on [`is_enabled`](TraceRecorder::is_enabled), which is a single
/// relaxed load — the zero-cost-when-off contract. Clones share state,
/// so the engine and its snapshots record into the same slot.
#[derive(Debug, Clone, Default)]
pub struct TraceRecorder {
    enabled: Arc<AtomicBool>,
    last: Arc<Mutex<Option<Span>>>,
}

impl TraceRecorder {
    /// A disabled recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Turn recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether spans should be captured right now.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Store a completed trace (the previous one is replaced).
    pub fn record(&self, root: Span) {
        *self.last.lock().expect("recorder poisoned") = Some(root);
    }

    /// The last completed trace, if any.
    pub fn last(&self) -> Option<Span> {
        self.last.lock().expect("recorder poisoned").clone()
    }

    /// Drop the stored trace.
    pub fn clear(&self) {
        *self.last.lock().expect("recorder poisoned") = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_tree_render_and_lookup() {
        let mut root = Span::new("statement", 0, 1000);
        root.detail = "select".into();
        let mut exec = Span::new("execute", 100, 900);
        exec.attrs.push(("sim_ns", 42));
        exec.children.push(Span::new("merge-intersect", 120, 300));
        root.children.push(exec);
        assert_eq!(root.duration_ns(), 1000);
        assert_eq!(root.find("merge-intersect").unwrap().duration_ns(), 180);
        assert_eq!(root.find("execute").unwrap().attr("sim_ns"), Some(42));
        let text = root.render();
        assert!(text.contains("statement [1000 ns] select"));
        assert!(text.contains("  execute [800 ns] sim_ns=42"));
        assert!(text.contains("    merge-intersect [180 ns]"));
    }

    #[test]
    fn recorder_starts_disabled_and_shares_state() {
        let r = TraceRecorder::new();
        assert!(!r.is_enabled());
        let clone = r.clone();
        clone.set_enabled(true);
        assert!(r.is_enabled());
        clone.record(Span::new("statement", 0, 5));
        assert_eq!(r.last().unwrap().name, "statement");
        r.clear();
        assert!(clone.last().is_none());
    }
}
