//! Observability primitives shared by every GhostDB crate.
//!
//! Two independent surfaces:
//!
//! * **Metrics** — a [`Registry`] of named [`Counter`]s, [`Gauge`]s and
//!   fixed-bucket [`Histogram`]s. Instrument sites hold cheap atomic
//!   handles; readers take a [`MetricsSnapshot`] and render it as
//!   Prometheus-style text or JSON. Metric names may carry one
//!   Prometheus-style label (`name{kind="Query"}`).
//! * **Traces** — a [`Span`] tree per statement (parse → bind → plan →
//!   execute, with one child span per physical operator) captured
//!   behind a [`TraceRecorder`] whose off-state cost is a single
//!   relaxed atomic load.
//!
//! The crate is deliberately leaf-level (no dependencies) so flash, bus,
//! exec and core can all instrument through it without cycles. By
//! design, nothing here ever stores column *values*: attribute payloads
//! are `u64` counts/times/sizes, which keeps the observability surface
//! inside the paper's trust model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricValue, MetricsSnapshot, Registry,
    TIME_BUCKETS_NS,
};
pub use trace::{Span, TraceRecorder};
