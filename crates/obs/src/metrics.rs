//! The metrics registry: counters, gauges, fixed-bucket histograms.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default bucket upper bounds for simulated-time histograms, in
/// nanoseconds: 10 µs up to 100 s, one decade apart. Values above the
/// last bound land in the implicit `+Inf` bucket.
pub const TIME_BUCKETS_NS: &[u64] = &[
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
    100_000_000_000,
];

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move in both directions.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the current value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A histogram over fixed bucket upper bounds (plus an implicit `+Inf`
/// bucket), tracking total sum and observation count.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Arc<Vec<u64>>,
    /// One slot per bound, plus the trailing `+Inf` slot.
    counts: Arc<Vec<AtomicU64>>,
    sum: Arc<AtomicU64>,
    count: Arc<AtomicU64>,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        let mut sorted = bounds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let counts = (0..=sorted.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: Arc::new(sorted),
            counts: Arc::new(counts),
            sum: Arc::new(AtomicU64::new(0)),
            count: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let slot = self.bounds.partition_point(|&b| b < v);
        self.counts[slot].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations so far.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of bounds and per-bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.as_ref().clone(),
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum(),
            count: self.count(),
        }
    }
}

/// A frozen view of one [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (ascending). The final bucket is implicit
    /// `+Inf`, so `counts.len() == bounds.len() + 1`.
    pub bounds: Vec<u64>,
    /// Observations per bucket (non-cumulative).
    pub counts: Vec<u64>,
    /// Sum of all observations.
    pub sum: u64,
    /// Total observations.
    pub count: u64,
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// One named value in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter's current value.
    Counter(u64),
    /// A gauge's current value.
    Gauge(i64),
    /// A histogram's frozen buckets.
    Histogram(HistogramSnapshot),
}

/// The shared metrics registry. Cloning shares the underlying map, so
/// one registry can be handed to every subsystem at construction time.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or register the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.inner.lock().expect("registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name} already registered as {other:?}"),
        }
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.inner.lock().expect("registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name} already registered as {other:?}"),
        }
    }

    /// Get or register the histogram `name` with the given bucket upper
    /// bounds (an implicit `+Inf` bucket is always appended).
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut map = self.inner.lock().expect("registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds)))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {name} already registered as {other:?}"),
        }
    }

    /// Freeze every metric into a structured snapshot, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.inner.lock().expect("registry poisoned");
        MetricsSnapshot {
            entries: map
                .iter()
                .map(|(name, m)| {
                    let v = match m {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    };
                    (name.clone(), v)
                })
                .collect(),
        }
    }
}

/// A point-in-time, structured copy of every registered metric.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, sorted by name.
    pub entries: Vec<(String, MetricValue)>,
}

/// Split `name{label="x"}` into `(name, Some(label-part))`.
fn split_label(name: &str) -> (&str, Option<&str>) {
    match name.find('{') {
        Some(i) => (&name[..i], Some(&name[i..])),
        None => (name, None),
    }
}

impl MetricsSnapshot {
    /// Look up one metric by exact name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find_map(|(n, v)| (n == name).then_some(v))
    }

    /// Counter value by exact name (0 if absent — counters are created
    /// lazily at the first event).
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Gauge value by exact name (0 if absent).
    pub fn gauge(&self, name: &str) -> i64 {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// Render as Prometheus-style exposition text.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{name} {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("{name} {v}\n"));
                }
                MetricValue::Histogram(h) => {
                    let (base, label) = split_label(name);
                    let label = label
                        .map(|l| l.trim_matches(|c| c == '{' || c == '}'))
                        .unwrap_or("");
                    let comma = if label.is_empty() { "" } else { "," };
                    let mut cum = 0u64;
                    for (i, c) in h.counts.iter().enumerate() {
                        cum += c;
                        let le = h
                            .bounds
                            .get(i)
                            .map(|b| b.to_string())
                            .unwrap_or_else(|| "+Inf".into());
                        out.push_str(&format!(
                            "{base}_bucket{{{label}{comma}le=\"{le}\"}} {cum}\n"
                        ));
                    }
                    out.push_str(&format!("{base}_sum{{{label}}} {}\n", h.sum));
                    out.push_str(&format!("{base}_count{{{label}}} {}\n", h.count));
                }
            }
        }
        out
    }

    /// Render as a JSON object keyed by metric name. Histograms become
    /// `{"buckets": [[le, count], ...], "sum": s, "count": n}` with the
    /// final bucket's bound encoded as `null` (`+Inf`).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n  \"{}\": ", name.replace('"', "\\\"")));
            match value {
                MetricValue::Counter(v) => out.push_str(&v.to_string()),
                MetricValue::Gauge(v) => out.push_str(&v.to_string()),
                MetricValue::Histogram(h) => {
                    out.push_str("{\"buckets\": [");
                    for (j, c) in h.counts.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        match h.bounds.get(j) {
                            Some(b) => out.push_str(&format!("[{b}, {c}]")),
                            None => out.push_str(&format!("[null, {c}]")),
                        }
                    }
                    out.push_str(&format!("], \"sum\": {}, \"count\": {}}}", h.sum, h.count));
                }
            }
        }
        out.push_str("\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_state() {
        let reg = Registry::new();
        let c = reg.counter("ghostdb_wal_appends_total");
        c.inc();
        c.add(2);
        assert_eq!(reg.counter("ghostdb_wal_appends_total").get(), 3);
        let g = reg.gauge("ghostdb_epoch");
        g.set(7);
        g.add(-2);
        assert_eq!(reg.gauge("ghostdb_epoch").get(), 5);
    }

    #[test]
    fn histogram_buckets_and_snapshot() {
        let reg = Registry::new();
        let h = reg.histogram("lat", &[10, 100]);
        h.observe(5);
        h.observe(10); // le="10" is inclusive
        h.observe(50);
        h.observe(1000); // +Inf
        let s = h.snapshot();
        assert_eq!(s.bounds, vec![10, 100]);
        assert_eq!(s.counts, vec![2, 1, 1]);
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1065);
    }

    #[test]
    fn prometheus_render_is_cumulative_and_labelled() {
        let reg = Registry::new();
        reg.counter("ghostdb_bus_frames_total{kind=\"Query\"}")
            .inc();
        let h = reg.histogram("ghostdb_statement_latency_ns{kind=\"select\"}", &[100]);
        h.observe(50);
        h.observe(500);
        let text = reg.snapshot().render_prometheus();
        assert!(text.contains("ghostdb_bus_frames_total{kind=\"Query\"} 1"));
        assert!(text.contains("ghostdb_statement_latency_ns_bucket{kind=\"select\",le=\"100\"} 1"));
        assert!(text.contains("ghostdb_statement_latency_ns_bucket{kind=\"select\",le=\"+Inf\"} 2"));
        assert!(text.contains("ghostdb_statement_latency_ns_sum{kind=\"select\"} 550"));
        assert!(text.contains("ghostdb_statement_latency_ns_count{kind=\"select\"} 2"));
    }

    #[test]
    fn json_render_shape() {
        let reg = Registry::new();
        reg.counter("c").add(4);
        reg.gauge("g").set(-1);
        reg.histogram("h", &[10]).observe(3);
        let json = reg.snapshot().render_json();
        assert!(json.contains("\"c\": 4"));
        assert!(json.contains("\"g\": -1"));
        assert!(
            json.contains("\"h\": {\"buckets\": [[10, 1], [null, 0]], \"sum\": 3, \"count\": 1}")
        );
    }

    #[test]
    fn snapshot_lookup_helpers() {
        let reg = Registry::new();
        reg.counter("a").add(2);
        reg.gauge("b").set(9);
        let s = reg.snapshot();
        assert_eq!(s.counter("a"), 2);
        assert_eq!(s.gauge("b"), 9);
        assert_eq!(s.counter("missing"), 0);
        assert!(s.get("missing").is_none());
    }
}
