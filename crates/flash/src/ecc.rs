//! Out-of-band page codeword: CRC-32 detection plus single-bit
//! correction (SECDED-style parity).
//!
//! Every programmed page reserves its last [`TAIL_BYTES`] for a
//! codeword over the data region (everything before the tail, with
//! unwritten bytes at the erased `0xFF` pattern):
//!
//! * bytes 0–3 — CRC-32 of the data region (little-endian);
//! * bytes 4–7 — check word: bit 31 is the overall parity of the data
//!   bits, bits 0–30 the **position syndrome** (XOR of the bit position
//!   of every set data bit).
//!
//! Flipping one data bit at position `q` changes the syndrome by
//! exactly `q` and flips the overall parity — which locates the flip.
//! The CRC arbitrates every decision: a correction is only accepted if
//! the repaired data matches the stored CRC, so a mislocated repair
//! (multi-bit rot) can never be served as clean data. Rot in the tail
//! itself is tolerated: if the data region matches either its CRC or
//! its check word, the data is served (the codeword, not the payload,
//! rotted).
//!
//! The budget is therefore **one flipped bit per page** (anywhere,
//! payload or tail) between programs. Anything past that is reported
//! uncorrectable — detected, never silently corrected.

/// Codeword size appended to every protected page.
pub const TAIL_BYTES: usize = 8;

/// Outcome of verifying one page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Data matched its CRC as read.
    Clean,
    /// One bit error was located and repaired (or the codeword itself
    /// had rotted while the data was intact).
    Corrected,
    /// More errors than the single-bit budget; data must not be served.
    Uncorrectable,
}

/// CRC-32 (IEEE, reflected) slicing-by-16 tables, built at compile
/// time. Table 0 is the classic byte-at-a-time table; table `k`
/// advances a byte through `k` further zero bytes, so sixteen bytes
/// fold in one step whose table lookups are independent — the verify
/// pass runs several times faster than the serial form, which matters
/// because every ECC-protected page read pays one CRC pass.
const SLICES: usize = 16;
const CRC_TABLES: [[u32; 256]; SLICES] = {
    let mut tables = [[0u32; 256]; SLICES];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < SLICES {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
};

/// Per-byte-value (XOR of set-bit indices, popcount parity), built at
/// compile time so the syndrome costs one table lookup per byte.
const BIT_LUT: [(u8, u8); 256] = {
    let mut lut = [(0u8, 0u8); 256];
    let mut v = 0;
    while v < 256 {
        let mut xor = 0u8;
        let mut par = 0u8;
        let mut bit = 0;
        while bit < 8 {
            if v & (1 << bit) != 0 {
                xor ^= bit as u8;
                par ^= 1;
            }
            bit += 1;
        }
        lut[v] = (xor, par);
        v += 1;
    }
    lut
};

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(SLICES);
    for c in chunks.by_ref() {
        let mut folded = 0u32;
        for (w, word) in c.chunks_exact(4).enumerate() {
            let mut v = u32::from_le_bytes(word.try_into().expect("4B"));
            if w == 0 {
                v ^= crc;
            }
            let base = SLICES - 1 - w * 4;
            folded ^= CRC_TABLES[base][(v & 0xFF) as usize]
                ^ CRC_TABLES[base - 1][((v >> 8) & 0xFF) as usize]
                ^ CRC_TABLES[base - 2][((v >> 16) & 0xFF) as usize]
                ^ CRC_TABLES[base - 3][(v >> 24) as usize];
        }
        crc = folded;
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// (position syndrome, overall parity) of `data`. Bit positions are
/// `byte_index * 8 + bit_index`; XORing the positions of all set bits
/// means a single flip at `q` perturbs the syndrome by exactly `q`.
///
/// Computed 64 bits at a time: within a word, bit `k` of the local
/// syndrome is the parity of the set bits whose index has bit `k` set
/// (one masked popcount per index bit), and the word's base position —
/// a multiple of 64, so disjoint from the local bits — folds in once
/// per odd-popcount word. `seal_page` runs this on every programmed
/// page, so it sits on the write path's critical loop.
fn codeword(data: &[u8]) -> (u32, u32) {
    // MASKS[k]: bits of a u64 whose index has bit k set.
    const MASKS: [u64; 6] = [
        0xAAAA_AAAA_AAAA_AAAA,
        0xCCCC_CCCC_CCCC_CCCC,
        0xF0F0_F0F0_F0F0_F0F0,
        0xFF00_FF00_FF00_FF00,
        0xFFFF_0000_FFFF_0000,
        0xFFFF_FFFF_0000_0000,
    ];
    let mut syn = 0u32;
    let mut par = 0u32;
    let mut base = 0u32;
    let mut chunks = data.chunks_exact(8);
    for c in chunks.by_ref() {
        let w = u64::from_le_bytes(c.try_into().expect("8B"));
        let mut local = 0u32;
        for (k, m) in MASKS.iter().enumerate() {
            local |= ((w & m).count_ones() & 1) << k;
        }
        let p = w.count_ones() & 1;
        syn ^= local ^ (base & 0u32.wrapping_sub(p));
        par ^= p;
        base += 64;
    }
    for &b in chunks.remainder() {
        let (xor, p) = BIT_LUT[b as usize];
        if p != 0 {
            syn ^= base;
            par ^= 1;
        }
        syn ^= xor as u32;
        base += 8;
    }
    (syn & 0x7FFF_FFFF, par)
}

/// Compute and store the codeword for `buf`'s data region into its
/// tail. `buf` is a full raw page; the caller has already padded the
/// unwritten data bytes with the erased `0xFF` pattern.
pub fn seal_page(buf: &mut [u8]) {
    let n = buf.len() - TAIL_BYTES;
    let crc = crc32(&buf[..n]);
    let (syn, par) = codeword(&buf[..n]);
    let word = (par << 31) | syn;
    buf[n..n + 4].copy_from_slice(&crc.to_le_bytes());
    buf[n + 4..n + 8].copy_from_slice(&word.to_le_bytes());
}

/// Verify `buf`'s data region against its tail, repairing a single bit
/// flip in place when one is located.
pub fn verify_page(buf: &mut [u8]) -> Verdict {
    let n = buf.len() - TAIL_BYTES;
    let stored_crc = u32::from_le_bytes(buf[n..n + 4].try_into().expect("4B"));
    if crc32(&buf[..n]) == stored_crc {
        return Verdict::Clean;
    }
    let word = u32::from_le_bytes(buf[n + 4..n + 8].try_into().expect("4B"));
    let (stored_syn, stored_par) = (word & 0x7FFF_FFFF, word >> 31);
    let (syn, par) = codeword(&buf[..n]);
    if par != stored_par {
        // Odd number of flips — locate and repair, CRC arbitrates.
        let q = (syn ^ stored_syn) as usize;
        if q < n * 8 {
            buf[q >> 3] ^= 1 << (q & 7);
            if crc32(&buf[..n]) == stored_crc {
                return Verdict::Corrected;
            }
            buf[q >> 3] ^= 1 << (q & 7);
        }
        return Verdict::Uncorrectable;
    }
    if syn == stored_syn {
        // Data is consistent with its check word; the stored CRC itself
        // rotted. Serve the data.
        return Verdict::Corrected;
    }
    Verdict::Uncorrectable
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(fill: impl Fn(usize) -> u8) -> Vec<u8> {
        let mut buf: Vec<u8> = (0..64 - TAIL_BYTES).map(fill).collect();
        buf.resize(64, 0);
        seal_page(&mut buf);
        buf
    }

    #[test]
    fn sliced_crc_matches_the_serial_form() {
        // The check vector every CRC-32 (IEEE, reflected) agrees on.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        // Every length through several 8-byte folds, against the
        // byte-at-a-time recurrence.
        for len in 0..64 {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let mut serial = 0xFFFF_FFFFu32;
            for &b in &data {
                serial = (serial >> 8) ^ CRC_TABLES[0][((serial ^ b as u32) & 0xFF) as usize];
            }
            assert_eq!(crc32(&data), !serial, "len {len}");
        }
    }

    #[test]
    fn folded_codeword_matches_the_per_byte_form() {
        for len in 0..40 {
            let data: Vec<u8> = (0..len).map(|i| (i * 73 + 29) as u8).collect();
            let (mut syn, mut par) = (0u32, 0u32);
            for (i, &b) in data.iter().enumerate() {
                for bit in 0..8 {
                    if b & (1 << bit) != 0 {
                        syn ^= (i as u32) * 8 + bit;
                        par ^= 1;
                    }
                }
            }
            assert_eq!(codeword(&data), (syn & 0x7FFF_FFFF, par), "len {len}");
        }
    }

    #[test]
    fn clean_page_verifies_clean() {
        let mut buf = page(|i| (i * 7) as u8);
        assert_eq!(verify_page(&mut buf), Verdict::Clean);
    }

    #[test]
    fn every_single_data_bit_flip_is_corrected() {
        let reference = page(|i| (i * 13 + 5) as u8);
        let n = reference.len() - TAIL_BYTES;
        for bit in 0..n * 8 {
            let mut buf = reference.clone();
            buf[bit >> 3] ^= 1 << (bit & 7);
            assert_eq!(verify_page(&mut buf), Verdict::Corrected, "bit {bit}");
            assert_eq!(buf, reference, "bit {bit} not repaired in place");
        }
    }

    #[test]
    fn every_single_tail_bit_flip_is_tolerated() {
        let reference = page(|i| (i * 31 + 2) as u8);
        let n = reference.len() - TAIL_BYTES;
        for bit in n * 8..reference.len() * 8 {
            let mut buf = reference.clone();
            buf[bit >> 3] ^= 1 << (bit & 7);
            let verdict = verify_page(&mut buf);
            assert_ne!(verdict, Verdict::Uncorrectable, "tail bit {bit}");
            assert_eq!(&buf[..n], &reference[..n], "data changed, tail bit {bit}");
        }
    }

    #[test]
    fn double_flips_are_detected_not_miscorrected() {
        let reference = page(|i| (i % 251) as u8);
        let n = reference.len() - TAIL_BYTES;
        for (a, b) in [(0, 1), (3, 97), (10, 200), (5, n * 8 - 1)] {
            let mut buf = reference.clone();
            buf[a >> 3] ^= 1 << (a & 7);
            buf[b >> 3] ^= 1 << (b & 7);
            assert_eq!(
                verify_page(&mut buf),
                Verdict::Uncorrectable,
                "bits {a},{b}"
            );
        }
    }

    #[test]
    fn flip_at_position_zero_is_located() {
        // Position 0 perturbs the syndrome by 0 — the parity bit alone
        // must still drive the repair.
        let reference = page(|i| (i + 1) as u8);
        let mut buf = reference.clone();
        buf[0] ^= 1;
        assert_eq!(verify_page(&mut buf), Verdict::Corrected);
        assert_eq!(buf, reference);
    }
}
