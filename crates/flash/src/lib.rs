//! NAND flash simulator for the smart USB device's external store.
//!
//! Paper §3: the device couples a secure chip to "a large external Flash
//! memory (Gigabyte sized)" whose costs are asymmetric — "writes are
//! between 3 to 10 times slower than reads depending on the portion of the
//! page to be read (full page vs. single word) and writes in place are
//! precluded."
//!
//! The simulator enforces real NAND semantics:
//!
//! * reads and programs operate on **pages** (partial reads are cheaper,
//!   matching the quote above),
//! * a page must be **erased before it is programmed**, and erase happens
//!   at **block** granularity,
//! * every operation advances the shared [`SimClock`](ghostdb_types::SimClock) by its cost from
//!   [`ghostdb_types::FlashConfig`] and is tallied in [`FlashStats`].
//!
//! On top of raw NAND, [`Volume`] provides the log-structured segment
//! store the upper layers use: append-only [`SegmentWriter`]s, streaming
//! [`SegmentReader`]s, random [`Volume::read_at`] access, and block
//! reclamation when segments are freed — this is where the "no in-place
//! writes" constraint becomes visible to the query engine (sort runs are
//! written once and never updated).
//!
//! Segments address their pages through a volume-owned **translation
//! table** (logical page numbers, not physical addresses), which lets the
//! [`Volume::gc`] garbage collector compact fragmented blocks — migrating
//! live pages out from under open readers and long-lived datasets — with
//! wear-aware victim and destination selection. See the `volume` module
//! docs for the full design.
//!
//! # Error model (who assumes what)
//!
//! Real USB-key flash dies slowly, and each layer of this crate assumes a
//! precisely bounded slice of that decay:
//!
//! * **[`Nand`]** is the fault *injector*, never a corrector. Armed via
//!   [`Nand::arm_bit_rot`] (per-read retention flips plus read-disturb),
//!   [`Nand::arm_program_failures`] / [`Nand::arm_erase_failures`] (blocks
//!   grow bad mid-operation), and the PR 4 power cut, it delivers raw bits
//!   exactly as stored — rotted or not — and reports program/erase
//!   failures as errors after marking the block grown-bad. The built-in
//!   rot injector self-bounds at **one flip per page per program cycle**;
//!   [`Nand::corrupt_page`] is the unbounded escape hatch for past-budget
//!   tests.
//! * **[`Volume`]** assumes at most one flipped bit per page between
//!   programs (the [`ecc`] codeword's correction budget), that a grown-bad
//!   block's already-programmed pages stay *readable* (the defect is in
//!   program/erase), and that failures are per-block, bounded by
//!   [`spare_blocks`](ghostdb_types::FlashConfig::spare_blocks). Within
//!   those assumptions every read is served corrected, bad blocks are
//!   retired and their live pages evacuated, and pages nearing the rot
//!   budget are scrubbed to fresh cells. Past them, reads fail with a
//!   clean `corrupt` error ("uncorrectable bit errors") and retirement
//!   fails with "flash part worn out" — never silent corruption.
//! * **`ghostdb-persist` and above** assume the volume's usable page
//!   ([`Volume::page_size`]) is reliable-or-error: layers above the volume
//!   never see a flipped bit. The durability layer seals the same
//!   codeword onto its own (reserved-region) meta and WAL pages, so a
//!   rotted superblock falls back to the older epoch slot and a rotted
//!   WAL page ends replay at the last good record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ecc;
mod nand;
mod volume;

pub use nand::{
    BlockId, FlashStats, Nand, PageAddr, PageState, ERASE_FAIL_MSG, POWER_CUT_MSG, PROGRAM_FAIL_MSG,
};
pub use volume::{
    GcStats, PageCacheStats, ReliabilityStats, ScrubReport, Segment, SegmentManifest,
    SegmentReader, SegmentWriter, Volume, VolumeMetrics, VolumeUsage,
};
