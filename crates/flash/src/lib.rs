//! NAND flash simulator for the smart USB device's external store.
//!
//! Paper §3: the device couples a secure chip to "a large external Flash
//! memory (Gigabyte sized)" whose costs are asymmetric — "writes are
//! between 3 to 10 times slower than reads depending on the portion of the
//! page to be read (full page vs. single word) and writes in place are
//! precluded."
//!
//! The simulator enforces real NAND semantics:
//!
//! * reads and programs operate on **pages** (partial reads are cheaper,
//!   matching the quote above),
//! * a page must be **erased before it is programmed**, and erase happens
//!   at **block** granularity,
//! * every operation advances the shared [`SimClock`] by its cost from
//!   [`ghostdb_types::FlashConfig`] and is tallied in [`FlashStats`].
//!
//! On top of raw NAND, [`Volume`] provides the log-structured segment
//! store the upper layers use: append-only [`SegmentWriter`]s, streaming
//! [`SegmentReader`]s, random [`Volume::read_at`] access, and block
//! reclamation when segments are freed — this is where the "no in-place
//! writes" constraint becomes visible to the query engine (sort runs are
//! written once and never updated).
//!
//! Segments address their pages through a volume-owned **translation
//! table** (logical page numbers, not physical addresses), which lets the
//! [`Volume::gc`] garbage collector compact fragmented blocks — migrating
//! live pages out from under open readers and long-lived datasets — with
//! wear-aware victim and destination selection. See the `volume` module
//! docs for the full design.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod nand;
mod volume;

pub use nand::{BlockId, FlashStats, Nand, PageAddr, PageState, POWER_CUT_MSG};
pub use volume::{
    GcStats, Segment, SegmentManifest, SegmentReader, SegmentWriter, Volume, VolumeUsage,
};
